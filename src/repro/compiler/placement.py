"""The FlexNet placement engine (§3.1, §3.3).

Compiles one fungible datapath onto its physical slice — an ordered
device path (host → NIC → switch(es) → NIC → host). Placement must
satisfy, in order of priority:

1. **Admission** — each element lands on a device whose architecture
   can host it at all (a 500-op function never fits an RMT pipeline).
2. **Co-location** — every map lives with all of its accessors, so the
   elements sharing a map form an atomic *cluster* (computed by
   union-find over the certificate's map read/write sets).
3. **Path monotonicity** — apply order maps monotonically onto path
   order, because packets traverse the slice in one direction
   ("resources that lie on the same network path are fungible as
   traffic flow through a sequence of devices").
4. **Architecture fungibility** — per-device feasibility under the
   rules of :mod:`repro.compiler.fungibility` (RMT stage planning,
   tile typing, pooled arithmetic).

On top of feasibility, the engine optimizes an :class:`Objective`
(latency, energy, or balanced) — the "new operating point" runtime
programmability opens for compilers — and, when a placement fails, it
invokes a caller-supplied **garbage-collection hook** to reclaim
removable programs and retries: the paper's iterative
compile → GC → recompile loop.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import PlacementError
from repro.lang.analyzer import Certificate
from repro.lang.ir import Program
from repro.targets.base import FungibilityClass
from repro.targets.resources import ResourceVector

from repro.compiler import fungibility
from repro.compiler.plan import CompilationPlan, DeviceSpec, StagePlan
from repro.compiler.state_encoding import select_encoding


class ObjectiveKind(enum.Enum):
    BALANCED = "balanced"  # first feasible device (fast compile)
    LATENCY = "latency"  # minimize per-packet latency
    ENERGY = "energy"  # minimize dynamic + activation energy


@dataclass(frozen=True)
class Objective:
    kind: ObjectiveKind = ObjectiveKind.BALANCED
    #: Optional hard latency ceiling; plans violating it are rejected.
    latency_sla_ns: float | None = None
    #: Relative weight of idle-power activation in energy scoring.
    activation_weight: float = 1.0


@dataclass
class NetworkSlice:
    """The physical slice a fungible datapath is compiled onto."""

    devices: list[DeviceSpec]

    def device(self, name: str) -> DeviceSpec:
        for spec in self.devices:
            if spec.name == name:
                return spec
        raise PlacementError(f"slice has no device {name!r}")

    @property
    def names(self) -> list[str]:
        return [d.name for d in self.devices]


GcHook = Callable[["NetworkSlice"], bool]


@dataclass
class _Cluster:
    members: list[str]
    order_index: int


class PlacementEngine:
    """Compiles programs onto slices; see module docstring."""

    def __init__(self, objective: Objective | None = None):
        self.objective = objective or Objective()
        #: FlexScope: set by :meth:`repro.observe.Observer.enable`;
        #: compile/placement/binpack phases are charged to it.
        self.profiler = None

    # -- public API ---------------------------------------------------------

    def compile(
        self,
        program: Program,
        certificate: Certificate,
        network_slice: NetworkSlice,
        gc_hook: GcHook | None = None,
        max_iterations: int = 3,
        pinned: dict[str, str] | None = None,
    ) -> CompilationPlan:
        """Place every element of ``program`` onto the slice.

        ``pinned`` maps element names to device names that incremental
        recompilation wants kept in place ("maximally adjacent
        reconfigurations"); a pinned cluster that no longer fits is
        silently unpinned and placed normally.

        Retries after invoking ``gc_hook`` when placement fails, up to
        ``max_iterations`` total attempts; raises
        :class:`~repro.errors.PlacementError` with per-device deficit
        diagnostics when no iteration succeeds.
        """
        if self.profiler is not None:
            with self.profiler.phase("compile"):
                return self._compile(
                    program, certificate, network_slice, gc_hook, max_iterations, pinned
                )
        return self._compile(
            program, certificate, network_slice, gc_hook, max_iterations, pinned
        )

    def _compile(
        self,
        program: Program,
        certificate: Certificate,
        network_slice: NetworkSlice,
        gc_hook: GcHook | None,
        max_iterations: int,
        pinned: dict[str, str] | None,
    ) -> CompilationPlan:
        notes: list[str] = []
        last_error: PlacementError | None = None
        for iteration in range(1, max_iterations + 1):
            try:
                if self.profiler is not None:
                    with self.profiler.phase("placement"):
                        plan = self._attempt(
                            program, certificate, network_slice, notes, pinned or {}
                        )
                else:
                    plan = self._attempt(
                        program, certificate, network_slice, notes, pinned or {}
                    )
                plan.iterations = iteration
                self._check_sla(plan)
                return plan
            except PlacementError as exc:
                last_error = exc
                if gc_hook is None or iteration == max_iterations:
                    break
                freed = gc_hook(network_slice)
                if not freed:
                    notes.append(f"iteration {iteration}: GC reclaimed nothing, giving up")
                    break
                notes.append(f"iteration {iteration}: placement failed, GC freed resources")
        assert last_error is not None
        raise last_error

    # -- one placement attempt ------------------------------------------------

    def _attempt(
        self,
        program: Program,
        certificate: Certificate,
        network_slice: NetworkSlice,
        notes: list[str],
        pinned: dict[str, str],
    ) -> CompilationPlan:
        clusters = self._clusters(program, certificate)
        committed: dict[str, list[str]] = {d.name: [] for d in network_slice.devices}
        committed_demand: dict[str, ResourceVector] = {
            d.name: ResourceVector() for d in network_slice.devices
        }
        placement: dict[str, str] = {}
        floor = 0
        index_by_name = {d.name: i for i, d in enumerate(network_slice.devices)}

        def commit(cluster: _Cluster, device_index: int) -> None:
            spec = network_slice.devices[device_index]
            for member in cluster.members:
                placement[member] = spec.name
                committed[spec.name].append(member)
                committed_demand[spec.name] = committed_demand[
                    spec.name
                ] + spec.target.demand(certificate.profile(member))

        # Phase 1: pre-commit pinned clusters. Honouring pins *first* is
        # what "maximally adjacent" means — new/free clusters get the
        # leftover capacity and must not displace deployed elements.
        placed: set[int] = set()
        for position, cluster in enumerate(clusters):
            device_index = self._pinned_choice(
                cluster, pinned, index_by_name, certificate, program, network_slice, committed
            )
            if device_index is not None:
                commit(cluster, device_index)
                placed.add(position)

        # Phase 2: place the remaining clusters in apply order under the
        # monotone path constraint.
        for position, cluster in enumerate(clusters):
            if position in placed:
                continue
            device_index = self._choose_device(
                cluster, certificate, program, network_slice, committed, floor
            )
            if device_index is None:
                raise self._placement_failure(cluster, certificate, network_slice, committed)
            commit(cluster, device_index)
            floor = device_index

        stage_plans = self._stage_plans(program, certificate, network_slice, committed)
        encodings = {
            map_def.name: select_encoding(
                map_def, network_slice.device(placement[map_def.name]).target
            )
            for map_def in program.maps
        }
        plan = CompilationPlan(
            program=program,
            certificate=certificate,
            placement=placement,
            encodings=encodings,
            device_demand=committed_demand,
            stage_plans=stage_plans,
            notes=list(notes),
        )
        self._estimate(plan, network_slice)
        return plan

    # -- clustering ---------------------------------------------------------

    def _clusters(self, program: Program, certificate: Certificate) -> list[_Cluster]:
        order = fungibility.ordered_elements(program)
        index_of = {name: i for i, name in enumerate(order)}
        parent: dict[str, str] = {name: name for name in order}

        def find(name: str) -> str:
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        def union(a: str, b: str) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_b] = root_a

        for name in order:
            profile = certificate.profiles.get(name)
            if profile is None or profile.kind not in ("table", "function"):
                continue
            for map_name in (*profile.map_reads, *profile.map_writes):
                if map_name in parent:
                    union(name, map_name)

        groups: dict[str, list[str]] = {}
        for name in order:
            groups.setdefault(find(name), []).append(name)
        clusters = [
            _Cluster(members=members, order_index=min(index_of[m] for m in members))
            for members in groups.values()
        ]
        clusters.sort(key=lambda c: c.order_index)
        return clusters

    # -- device choice ---------------------------------------------------------

    def _pinned_choice(
        self,
        cluster: _Cluster,
        pinned: dict[str, str],
        index_by_name: dict[str, int],
        certificate: Certificate,
        program: Program,
        network_slice: NetworkSlice,
        committed: dict[str, list[str]],
    ) -> int | None:
        """Honour a pin when the whole cluster agrees and still fits."""
        pinned_devices = {pinned[m] for m in cluster.members if m in pinned}
        if len(pinned_devices) != 1:
            return None
        device_name = pinned_devices.pop()
        if device_name not in index_by_name:
            return None
        index = index_by_name[device_name]
        spec = network_slice.devices[index]
        resident = committed[spec.name] + cluster.members
        result = fungibility.device_feasible(
            spec.target, resident, certificate, program, already_used=spec.used
        )
        if result is False or result is None:
            return None
        return index

    def _choose_device(
        self,
        cluster: _Cluster,
        certificate: Certificate,
        program: Program,
        network_slice: NetworkSlice,
        committed: dict[str, list[str]],
        floor: int,
    ) -> int | None:
        feasible: list[int] = []
        for index in range(floor, len(network_slice.devices)):
            spec = network_slice.devices[index]
            resident = committed[spec.name] + cluster.members
            result = fungibility.device_feasible(
                spec.target, resident, certificate, program, already_used=spec.used
            )
            if result is not False and result is not None:
                feasible.append(index)
        if not feasible:
            return None
        if self.objective.kind is ObjectiveKind.BALANCED:
            # Prefer offloading into the network (switch > NIC > host),
            # tie-breaking on path order — the "one big switch" default.
            tier_rank = {"switch": 0, "nic": 1, "host": 2}
            return min(
                feasible,
                key=lambda i: (
                    tier_rank.get(network_slice.devices[i].target.tier, 3),
                    i,
                ),
            )
        if self.objective.kind is ObjectiveKind.LATENCY:
            return min(
                feasible,
                key=lambda i: self._cluster_latency_ns(cluster, certificate, network_slice, i),
            )
        # ENERGY: prefer low per-op energy, charge idle activation for
        # devices not yet hosting anything.
        return min(
            feasible,
            key=lambda i: self._cluster_energy_score(
                cluster, certificate, network_slice, committed, i
            ),
        )

    def _cluster_ops(self, cluster: _Cluster, certificate: Certificate) -> int:
        return sum(certificate.profile(m).max_ops for m in cluster.members)

    def _cluster_latency_ns(
        self,
        cluster: _Cluster,
        certificate: Certificate,
        network_slice: NetworkSlice,
        index: int,
    ) -> float:
        performance = network_slice.devices[index].target.performance
        return self._cluster_ops(cluster, certificate) * performance.per_op_ns

    def _cluster_energy_score(
        self,
        cluster: _Cluster,
        certificate: Certificate,
        network_slice: NetworkSlice,
        committed: dict[str, list[str]],
        index: int,
    ) -> float:
        spec = network_slice.devices[index]
        performance = spec.target.performance
        dynamic = self._cluster_ops(cluster, certificate) * performance.per_op_nj
        activation = 0.0
        if not committed[spec.name] and spec.used.is_zero():
            activation = performance.idle_power_w * self.objective.activation_weight
        return dynamic + activation

    # -- RMT stage plans ----------------------------------------------------------

    def _stage_plans(
        self,
        program: Program,
        certificate: Certificate,
        network_slice: NetworkSlice,
        committed: dict[str, list[str]],
    ) -> dict[str, StagePlan]:
        plans: dict[str, StagePlan] = {}
        for spec in network_slice.devices:
            if spec.target.fungibility is not FungibilityClass.STAGE_LOCAL:
                continue
            members = committed[spec.name]
            if not members:
                continue
            if self.profiler is not None:
                with self.profiler.phase("binpack"):
                    result = fungibility.device_feasible(
                        spec.target, members, certificate, program, already_used=spec.used
                    )
            else:
                result = fungibility.device_feasible(
                    spec.target, members, certificate, program, already_used=spec.used
                )
            if isinstance(result, StagePlan):
                plans[spec.name] = result
        return plans

    # -- estimation & diagnostics -----------------------------------------------

    def _estimate(self, plan: CompilationPlan, network_slice: NetworkSlice) -> None:
        latency = 0.0
        energy = 0.0
        idle = 0.0
        ops_per_device: dict[str, int] = {}
        for element, device_name in plan.placement.items():
            profile = plan.certificate.profile(element)
            ops_per_device[device_name] = ops_per_device.get(device_name, 0) + profile.max_ops
        for spec in network_slice.devices:
            latency += spec.ingress_link_ns + spec.target.performance.base_latency_ns
            ops = ops_per_device.get(spec.name, 0)
            latency += ops * spec.target.performance.per_op_ns
            energy += ops * spec.target.performance.per_op_nj
            if ops:
                idle += spec.target.performance.idle_power_w
        plan.estimated_latency_ns = latency
        plan.estimated_energy_nj = energy
        plan.estimated_idle_power_w = idle

    def _check_sla(self, plan: CompilationPlan) -> None:
        sla = self.objective.latency_sla_ns
        if sla is not None and plan.estimated_latency_ns > sla:
            raise PlacementError(
                f"plan latency {plan.estimated_latency_ns:.0f} ns violates SLA {sla:.0f} ns"
            )

    def _placement_failure(
        self,
        cluster: _Cluster,
        certificate: Certificate,
        network_slice: NetworkSlice,
        committed: dict[str, list[str]],
    ) -> PlacementError:
        lines = [f"cannot place cluster {cluster.members}"]
        for spec in network_slice.devices:
            demand = ResourceVector()
            admitted = True
            for member in cluster.members:
                profile = certificate.profile(member)
                if not spec.target.admits(profile):
                    admitted = False
                demand = demand + spec.target.demand(profile)
            deficit = demand.deficit_against(spec.free)
            reason = "not admitted" if not admitted else (f"deficit {deficit}" if deficit else "ok alone; conflicts with residents or path order")
            lines.append(f"  {spec.name} ({spec.target.arch}): {reason}")
        return PlacementError("\n".join(lines))
