"""Bin-packing primitives used by the placement engine.

Classic network compilers treat bin-packing program elements into
resource-constrained devices as their primary job (§3.3). FlexNet still
needs that machinery as its feasibility core — the new degrees of
freedom (GC, reallocation, objectives) are layered on top by
:mod:`repro.compiler.placement`.

Two packers are provided:

* :func:`first_fit` — respects a fixed bin order (used for path-ordered
  placement, where apply order must be monotone along the slice).
* :func:`best_fit_decreasing` — classic BFD for unordered pools (used
  when packing co-location clusters into a single device tier).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ResourceError
from repro.targets.resources import ResourceVector


@dataclass
class Bin:
    """One capacity-bounded bin (a device or an RMT stage)."""

    name: str
    capacity: ResourceVector
    used: ResourceVector = field(default_factory=ResourceVector)
    items: list[str] = field(default_factory=list)

    @property
    def free(self) -> ResourceVector:
        try:
            return self.capacity - self.used
        except ResourceError:
            # An over-packed bin has no free capacity in some kind;
            # report zero headroom rather than a negative vector. Other
            # exception types indicate real bugs and must propagate.
            return ResourceVector()

    def fits(self, demand: ResourceVector) -> bool:
        return (self.used + demand).fits_within(self.capacity)

    def add(self, item: str, demand: ResourceVector) -> None:
        self.used = self.used + demand
        self.items.append(item)


def first_fit(
    items: list[tuple[str, ResourceVector]],
    bins: list[Bin],
    monotone: bool = False,
) -> dict[str, str] | None:
    """Assign each item to the first bin with room, in bin order.

    With ``monotone=True``, once an item lands in bin *i*, later items
    only consider bins >= *i* (path-order preservation). Returns the
    item -> bin-name assignment, or None if any item cannot be placed.
    """
    assignment: dict[str, str] = {}
    floor = 0
    for item, demand in items:
        placed = False
        for index in range(floor if monotone else 0, len(bins)):
            if bins[index].fits(demand):
                bins[index].add(item, demand)
                assignment[item] = bins[index].name
                if monotone:
                    floor = index
                placed = True
                break
        if not placed:
            return None
    return assignment


def best_fit_decreasing(
    items: list[tuple[str, ResourceVector]],
    bins: list[Bin],
    weight_kind: str | None = None,
) -> dict[str, str] | None:
    """BFD: sort items by descending weight, place each in the feasible
    bin with the least remaining slack.

    ``weight_kind`` selects which resource kind orders the items; None
    uses the max utilization across kinds against the first bin's
    capacity (a reasonable scalarization when kinds are heterogeneous).
    """
    if not bins:
        return None if items else {}
    reference = bins[0].capacity

    def weight(entry: tuple[str, ResourceVector]) -> float:
        _, demand = entry
        if weight_kind is not None:
            return demand[weight_kind]
        return demand.utilization_of(reference)

    assignment: dict[str, str] = {}
    for item, demand in sorted(items, key=weight, reverse=True):
        best_bin: Bin | None = None
        best_slack = float("inf")
        for candidate in bins:
            if not candidate.fits(demand):
                continue
            slack = (candidate.free - demand).utilization_of(candidate.capacity)
            if slack < best_slack:
                best_slack = slack
                best_bin = candidate
        if best_bin is None:
            return None
        best_bin.add(item, demand)
        assignment[item] = best_bin.name
    return assignment
