"""Per-target selection and conversion of map state encodings (§3.1).

"Individual devices have drastically different ways of implementing
this state": P4 registers, PoF flow-instruction state, Spectrum
stateful tables, eBPF kernel maps. If a program assumed one encoding,
migration would be hard — so FlexBPF keeps maps logical and this module
picks the physical encoding per (map, target) pair, and converts state
between encodings through the logical :class:`~repro.lang.maps.MapSnapshot`
representation when an element migrates across architectures.

The physical encodings are modelled faithfully enough for the E13
experiment: a register encoding is a dense indexed array (the key is
hashed to an index, so it can alias under load); stateful tables and
kernel maps are associative; flow-instruction state is associative with
per-flow metadata. Conversions go *through the logical form* and are
lossless for associative encodings; register encodings are lossy above
their index capacity, which the converter reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompilationError, MigrationError
from repro.lang.ir import MapDef
from repro.lang.maps import MapSnapshot
from repro.targets.base import StateEncoding, Target

#: Preference order per architecture — the compiler picks the first
#: supported encoding with sufficient capacity semantics.
_PREFERENCES: dict[str, tuple[StateEncoding, ...]] = {
    "rmt": (StateEncoding.REGISTER,),
    "drmt": (StateEncoding.STATEFUL_TABLE, StateEncoding.FLOW_INSTRUCTION),
    "tiles": (StateEncoding.STATEFUL_TABLE,),
    "smartnic": (StateEncoding.SOC_MEMORY, StateEncoding.KERNEL_MAP),
    "fpga": (StateEncoding.REGISTER, StateEncoding.SOC_MEMORY),
    "host": (StateEncoding.KERNEL_MAP,),
}

#: Encodings that store entries associatively (exact key -> value, no
#: aliasing). Register arrays are index-addressed instead.
ASSOCIATIVE = frozenset(
    {
        StateEncoding.STATEFUL_TABLE,
        StateEncoding.FLOW_INSTRUCTION,
        StateEncoding.KERNEL_MAP,
        StateEncoding.SOC_MEMORY,
    }
)


def select_encoding(map_def: MapDef, target: Target) -> StateEncoding:
    """Choose the physical encoding for ``map_def`` on ``target``."""
    for preference in _PREFERENCES.get(target.arch, ()):
        if preference in target.encodings:
            return preference
    if target.encodings:
        return target.encodings[0]
    raise CompilationError(f"target {target.name!r} supports no state encoding")


@dataclass(frozen=True)
class EncodedState:
    """Map state in one physical encoding.

    ``entries`` semantics depend on the encoding:

    * associative encodings: ``(key tuple) -> value``, exact.
    * REGISTER: ``(index,) -> value`` where index = hash(key) % slots;
      the original keys are *not* recoverable, so decoding back to the
      logical form keeps index-keys and flags the representation.
    """

    map_name: str
    encoding: StateEncoding
    entries: tuple[tuple[tuple[int, ...], int], ...]
    register_slots: int | None = None
    #: keys dropped because of register-index collisions (lossy encode).
    collisions: int = 0

    def __len__(self) -> int:
        return len(self.entries)


def encode(snapshot: MapSnapshot, encoding: StateEncoding, register_slots: int = 4096) -> EncodedState:
    """Encode a logical snapshot into a physical representation."""
    if encoding in ASSOCIATIVE:
        return EncodedState(
            map_name=snapshot.map_name, encoding=encoding, entries=snapshot.entries
        )
    if encoding is StateEncoding.REGISTER:
        slots: dict[tuple[int, ...], int] = {}
        collisions = 0
        for key, value in snapshot.entries:
            index = (_stable_hash(key) % register_slots,)
            if index in slots:
                collisions += 1
                # Register semantics: last writer to an index wins; the
                # ALU cannot disambiguate aliased flows.
            slots[index] = value
        return EncodedState(
            map_name=snapshot.map_name,
            encoding=encoding,
            entries=tuple(sorted(slots.items())),
            register_slots=register_slots,
            collisions=collisions,
        )
    raise CompilationError(f"unknown encoding {encoding!r}")


def decode(state: EncodedState, version: int = 0) -> MapSnapshot:
    """Decode physical state back to the logical representation.

    Associative encodings round-trip losslessly. Register state decodes
    to index-keyed entries — the logical layer treats those as the best
    available approximation and :func:`convert` counts the information
    loss for E13.
    """
    return MapSnapshot(map_name=state.map_name, entries=state.entries, version=version)


@dataclass(frozen=True)
class ConversionReport:
    map_name: str
    source: StateEncoding
    destination: StateEncoding
    entries_in: int
    entries_out: int
    lossless: bool


def convert(
    snapshot: MapSnapshot,
    source: StateEncoding,
    destination: StateEncoding,
    register_slots: int = 4096,
) -> tuple[MapSnapshot, ConversionReport]:
    """Convert logical state between two encodings via the logical form.

    This is the §3.1 migration path: encode on the source device,
    carry the logical representation, re-encode on the destination.
    Returns the state as it will exist on the destination plus a report.
    """
    source_encoded = encode(snapshot, source, register_slots)
    if source is StateEncoding.REGISTER and destination in ASSOCIATIVE:
        # Keys were already lost at the source; carry index-keys forward.
        carried = decode(source_encoded, snapshot.version)
    else:
        carried = snapshot if source in ASSOCIATIVE else decode(source_encoded, snapshot.version)

    destination_encoded = encode(carried, destination, register_slots)
    arrived = decode(destination_encoded, snapshot.version)

    lossless = len(arrived.entries) == len(snapshot.entries) and (
        source in ASSOCIATIVE and destination in ASSOCIATIVE
    )
    report = ConversionReport(
        map_name=snapshot.map_name,
        source=source,
        destination=destination,
        entries_in=len(snapshot.entries),
        entries_out=len(arrived.entries),
        lossless=lossless,
    )
    if destination is StateEncoding.REGISTER and len(snapshot.entries) > register_slots:
        raise MigrationError(
            f"map {snapshot.map_name!r}: {len(snapshot.entries)} entries cannot fit "
            f"{register_slots} register slots without unbounded aliasing"
        )
    return arrived, report


def _stable_hash(key: tuple[int, ...]) -> int:
    """Deterministic FNV-1a over the key tuple (hash() is salted)."""
    value = 0xCBF29CE484222325
    for part in key:
        for byte in int(part).to_bytes(16, "little", signed=False):
            value ^= byte
            value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value
