"""FlexScale placement: vet-driven partitioning of devices onto shards.

A :class:`ShardPlan` assigns every simulated device to exactly one OS
worker process (shard). The partitioner is *admission-gated by FlexVet*
(PR 6): the static parallelism classification of the live composed
program decides what may be split and what must stay together.

Constraints, in order of application:

1. **Affinity groups** — maps co-accessed by one element must live on
   one shard, so every device the compiler placed an element of one
   :class:`~repro.analysis.vet.AffinityGroup` on is fused. Groups whose
   accesses run in apply-if conditions (``<apply>``) execute on every
   device of the slice, which fuses the whole slice.
2. **Cross-flow state** — a ``cross_flow`` map admits no partitioning
   at all, so every device hosting a *stateful* element of a program
   with cross-flow state is fused onto one shard (its stateless slices
   — replicated control state — may still shard freely).
3. **Fast links** — the handoff protocol advances shards in windows of
   the minimum cross-shard link latency, so devices joined by a link
   faster than ``colocate_below_s`` are fused; only rack/pod-boundary
   links become shard boundaries.

The fused units are then balanced greedily (largest first, onto the
least-loaded shard, all ties broken lexicographically) — deterministic
by construction. Per-flow traffic is spread with
``stable_digest(flow-key fields)`` (:meth:`ShardPlan.shard_for_flow`),
the exact fields FlexVet proved safe to hash on, and each shard draws
from an independent seeded RNG stream (:meth:`ShardPlan.shard_seed`,
the FlexFault per-category-stream pattern) so no shard's randomness
depends on another's schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ControlPlaneError, SimulationError
from repro.limits import COLOCATE_LINK_LATENCY_S
from repro.util import stable_digest


class _UnionFind:
    def __init__(self, items):
        self._parent = {item: item for item in items}

    def find(self, item: str) -> str:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            # Deterministic root choice: the lexicographically smaller
            # name wins, so component identity never depends on union
            # order.
            if root_b < root_a:
                root_a, root_b = root_b, root_a
            self._parent[root_b] = root_a

    def components(self) -> list[tuple[str, ...]]:
        groups: dict[str, list[str]] = {}
        for item in sorted(self._parent):
            groups.setdefault(self.find(item), []).append(item)
        return [tuple(groups[root]) for root in sorted(groups)]


@dataclass(frozen=True)
class ShardPlan:
    """Device-to-shard assignment plus the derived protocol parameters.

    Implements the FlexScope Reportable protocol (``summary()`` /
    ``to_dict()``) so ``flexnet scale`` renders it through the shared
    ``emit()`` path.
    """

    shards: int
    seed: int
    assignment: dict[str, int]
    #: fused placement units (each lands on one shard), sorted.
    units: tuple[tuple[str, ...], ...]
    #: human-readable co-location constraints that were applied.
    constraints: tuple[str, ...]
    #: FlexVet's program-level partition fields ("" when no program).
    flow_key: tuple[str, ...]
    #: min cross-shard link latency per directed shard pair — the
    #: conservative lookahead the handoff protocol advances by.
    lookahead_s: dict[tuple[int, int], float] = field(default_factory=dict)

    def shard_of(self, device: str) -> int:
        if device not in self.assignment:
            raise SimulationError(f"device {device!r} not in shard plan")
        return self.assignment[device]

    def devices_on(self, shard: int) -> tuple[str, ...]:
        return tuple(
            name for name in sorted(self.assignment) if self.assignment[name] == shard
        )

    @property
    def populated_shards(self) -> tuple[int, ...]:
        """Shard ids that actually own devices (constraints can fuse
        everything onto fewer shards than requested)."""
        return tuple(sorted({shard for shard in self.assignment.values()}))

    def shard_seed(self, shard: int) -> int:
        """Independent per-shard RNG stream seed (FlexFault pattern)."""
        return stable_digest("flexscale-rng", self.seed, shard)

    def shard_for_flow(self, *flow_values: int) -> int:
        """Deterministically spread per-flow work across shards by
        hashing the FlexVet-approved flow-key field values."""
        return stable_digest("flexscale-flow", *flow_values) % self.shards

    def in_neighbors(self, shard: int) -> tuple[int, ...]:
        return tuple(
            sorted({src for (src, dst) in self.lookahead_s if dst == shard})
        )

    def out_neighbors(self, shard: int) -> tuple[int, ...]:
        return tuple(
            sorted({dst for (src, dst) in self.lookahead_s if src == shard})
        )

    # -- Reportable ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "seed": self.seed,
            "assignment": dict(sorted(self.assignment.items())),
            "units": [list(unit) for unit in self.units],
            "constraints": list(self.constraints),
            "flow_key": list(self.flow_key),
            "lookahead_s": {
                f"{src}->{dst}": latency
                for (src, dst), latency in sorted(self.lookahead_s.items())
            },
        }

    def summary(self) -> str:
        lines = [
            f"flexscale plan: {len(self.assignment)} device(s) on "
            f"{len(self.populated_shards)}/{self.shards} shard(s)"
            + (f", flow_key=({', '.join(self.flow_key)})" if self.flow_key else "")
        ]
        for shard in self.populated_shards:
            lines.append(f"  shard {shard}: {', '.join(self.devices_on(shard))}")
        for constraint in self.constraints:
            lines.append(f"  co-located: {constraint}")
        return "\n".join(lines)


def _vet_constraints(controller, fused: _UnionFind, devices: list[str]) -> list[str]:
    """Apply FlexVet co-location constraints; returns description lines."""
    from repro.analysis.vet import APPLY_ELEMENT, StateClass, vet

    try:
        program = controller.program
        placement = dict(controller.plan.placement)
    except ControlPlaneError:  # no program installed yet: nothing to constrain
        return []
    report = vet(program)
    slice_devices = sorted({d for d in placement.values() if d in set(devices)})
    constraints: list[str] = []

    for group in report.groups:
        members = sorted(
            {
                placement[element]
                for element in group.elements
                if element in placement
            }
            | (set(slice_devices) if APPLY_ELEMENT in group.elements else set())
        )
        members = [m for m in members if m in fused._parent]
        if len(members) > 1:
            for other in members[1:]:
                fused.union(members[0], other)
            reason = "pinned" if not group.shardable else "affinity"
            constraints.append(
                f"{', '.join(members)} ({reason} group: {', '.join(group.maps)})"
            )

    if report.maps_of_class(StateClass.CROSS_FLOW):
        stateful_devices = sorted(
            {
                placement[verdict.name]
                for verdict in report.elements
                if verdict.stateful_maps and verdict.name in placement
            }
        )
        stateful_devices = [d for d in stateful_devices if d in fused._parent]
        if len(stateful_devices) > 1:
            for other in stateful_devices[1:]:
                fused.union(stateful_devices[0], other)
            constraints.append(
                f"{', '.join(stateful_devices)} (cross-flow program "
                f"{program.name!r} stays on one shard)"
            )
    return constraints


def plan_shards(
    controller,
    shards: int,
    *,
    seed: int = 2024,
    colocate_below_s: float = COLOCATE_LINK_LATENCY_S,
) -> ShardPlan:
    """Partition the controller's devices onto ``shards`` shards.

    See the module docstring for the constraint order. Deterministic:
    same topology, same program, same arguments → identical plan.
    """
    if shards < 1:
        raise SimulationError(f"need at least 1 shard, got {shards}")
    devices = sorted(controller.devices)
    if not devices:
        raise SimulationError("no devices to shard")

    fused = _UnionFind(devices)
    constraints = _vet_constraints(controller, fused, devices)

    network = controller.network
    for (a, b), link in sorted(network._links.items()):  # noqa: SLF001 - planner reads topology
        if a < b and link.latency_s < colocate_below_s:
            fused.union(a, b)

    units = sorted(fused.components(), key=lambda unit: (-len(unit), unit))
    assignment: dict[str, int] = {}
    load = [0] * shards
    for unit in units:
        shard = min(range(shards), key=lambda s: (load[s], s))
        load[shard] += len(unit)
        for device in unit:
            assignment[device] = shard

    lookahead: dict[tuple[int, int], float] = {}
    for (a, b), link in sorted(network._links.items()):  # noqa: SLF001 - planner reads topology
        src, dst = assignment[a], assignment[b]
        if src == dst:
            continue
        key = (src, dst)
        if key not in lookahead or link.latency_s < lookahead[key]:
            lookahead[key] = link.latency_s

    flow_key: tuple[str, ...] = ()
    try:
        from repro.analysis.vet import vet

        flow_key = vet(controller.program).flow_key
    except ControlPlaneError:  # no program installed yet
        flow_key = ()

    return ShardPlan(
        shards=shards,
        seed=seed,
        assignment=assignment,
        units=tuple(sorted(units)),
        constraints=tuple(constraints),
        flow_key=flow_key,
        lookahead_s=lookahead,
    )
