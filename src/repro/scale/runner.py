"""FlexScale coordinator: run a FlexNet's traffic across shards.

Two backends drive the same :class:`~repro.scale.shard.ShardEngine`
protocol:

* ``inline`` — every shard lives in this process and windows are
  stepped round-robin. Zero IPC; used by tests and property
  instrumentation (map-access recorders need to see the worker state).
* ``process`` — one OS worker per populated shard, forked so device
  objects and FlexPath closures are inherited without pickling;
  handoffs and guarantees flow over per-shard ``multiprocessing``
  queues (sequenced by the FlexMend transport), results come back on a
  shared result queue as picklable
  :class:`~repro.scale.shard.ShardResult` snapshots. The coordinator
  side is the FlexMend :class:`~repro.scale.mend.Supervisor`: it
  watches process sentinels and heartbeats and — when chaos is armed
  or checkpointing enabled — respawns dead workers from their last
  windowed checkpoint (see :mod:`repro.scale.mend`).

Either way the coordinator merges per-shard :class:`RunMetrics`,
telemetry digest counts, and frozen FlexScope registries into one
:class:`ScaleReport` whose ``traffic`` section is byte-identical to the
``TrafficReport`` of a same-seed single-process run (E20's differential
acceptance check — and E23's, which holds it *through* injected worker
crashes). The variable parts — windows, handoff counts, per-shard
breakdowns, supervision outcomes — live in separate report sections so
the identity check can compare the invariant part exactly.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.faults.plan import FaultPlan
from repro.observe.metrics import MetricsRegistry
from repro.scale.mend import MendReport, Supervisor
from repro.scale.plan import ShardPlan, plan_shards
from repro.scale.shard import ShardEngine, ShardResult, run_inline
from repro.simulator.flowgen import TimedPacket
from repro.simulator.metrics import RunMetrics


@dataclass
class ScaleReport:
    """Outcome of a sharded run (FlexScope Reportable protocol).

    ``traffic`` (via :meth:`traffic_dict`) is the byte-identical
    section; ``sharding`` carries the protocol/shape diagnostics that
    legitimately vary with the shard count.
    """

    plan: ShardPlan
    backend: str
    end_time_s: float
    metrics: RunMetrics
    total_digests: int
    registry: MetricsRegistry
    shard_results: list[ShardResult] = field(default_factory=list)
    #: FlexMend supervision outcome (process backend only).
    mend: MendReport | None = None

    @property
    def windows(self) -> int:
        return sum(result.windows for result in self.shard_results)

    @property
    def handoffs(self) -> int:
        return sum(result.handoffs_out for result in self.shard_results)

    @property
    def max_shard_cpu_s(self) -> float | None:
        """Slowest shard's CPU seconds (process backend only) — the
        denominator of the E20 capacity metric. Measurement-only:
        deliberately absent from :meth:`to_dict` so exports stay
        deterministic."""
        values = [
            result.cpu_s
            for result in self.shard_results
            if result.cpu_s is not None
        ]
        return max(values) if values else None

    def traffic_dict(self) -> dict:
        """Exactly the shape ``TrafficReport.to_dict()`` produces for
        the same workload on the single-process engine."""
        return {
            "metrics": self.metrics.to_dict(),
            "telemetry": {"total_digests": self.total_digests, "total_events": 0},
        }

    def to_dict(self) -> dict:
        out = {
            "traffic": self.traffic_dict(),
            "sharding": {
                "backend": self.backend,
                "shards": self.plan.shards,
                "populated_shards": list(self.plan.populated_shards),
                "end_time_s": self.end_time_s,
                "plan": self.plan.to_dict(),
                "per_shard": [
                    {
                        "shard": result.shard_id,
                        "sent": result.metrics.sent,
                        "delivered": result.metrics.delivered,
                        "windows": result.windows,
                        "handoffs_in": result.handoffs_in,
                        "handoffs_out": result.handoffs_out,
                        "events": result.events_executed,
                    }
                    for result in self.shard_results
                ],
            },
        }
        if self.mend is not None:
            out["mend"] = self.mend.to_dict()
        return out

    def summary(self) -> str:
        lines = [
            f"flexscale [{self.backend}] {len(self.plan.populated_shards)} shard(s): "
            + self.metrics.summary().splitlines()[0],
            f"  windows {self.windows}, cross-shard handoffs {self.handoffs}, "
            f"digests {self.total_digests}",
        ]
        for result in self.shard_results:
            lines.append(
                f"  shard {result.shard_id}: sent {result.metrics.sent}, "
                f"delivered {result.metrics.delivered}, "
                f"windows {result.windows}, "
                f"handoffs {result.handoffs_in} in / {result.handoffs_out} out"
            )
        if self.mend is not None:
            lines.append(self.mend.summary())
        return "\n".join(lines)


def reference_run(net, injections: list[TimedPacket], drain_s: float = 1.0):
    """The single-process control arm of the differential check: the
    plain engine, the same digest accounting, no consistency checker —
    returns the :class:`~repro.core.flexnet.TrafficReport` whose
    ``to_dict()`` a sharded run's ``traffic_dict()`` must reproduce
    byte-for-byte. Mutates device state; build a fresh net per arm."""
    return net.run_traffic(packets=list(injections), extra_time_s=drain_s)


def _assign_injections(
    net, plan: ShardPlan, injections: list[TimedPacket]
) -> dict[int, list[tuple]]:
    """Resolve each injection's hop list and hand it to the shard that
    owns the first hop."""
    network = net.controller.network
    per_shard: dict[int, list[tuple]] = {shard: [] for shard in plan.populated_shards}
    hops = network.path("datapath")
    first_shard = plan.shard_of(hops[0])
    for timed in injections:
        per_shard[first_shard].append((timed.packet, hops, timed.time))
    return per_shard


def _end_time(injections: list[TimedPacket], drain_s: float) -> float:
    last = max((timed.time for timed in injections), default=0.0)
    return last + drain_s


def _merge_results(
    plan: ShardPlan,
    backend: str,
    end_time: float,
    results: list[ShardResult],
    mend: MendReport | None = None,
    extra_registry: MetricsRegistry | None = None,
) -> ScaleReport:
    results = sorted(results, key=lambda result: result.shard_id)
    metrics_parts = [result.metrics for result in results]
    merged = (
        metrics_parts[0].merge(*metrics_parts[1:])
        if len(metrics_parts) > 1
        else metrics_parts[0]
    )
    registry = MetricsRegistry()
    for result in results:
        if result.registry is not None:
            registry.merge(result.registry)
    if extra_registry is not None:
        registry.merge(extra_registry)
    return ScaleReport(
        plan=plan,
        backend=backend,
        end_time_s=end_time,
        metrics=merged,
        total_digests=sum(result.digest_count for result in results),
        registry=registry,
        shard_results=results,
        mend=mend,
    )


# -- inline backend ---------------------------------------------------------


def build_engines(
    net, plan: ShardPlan, injections: list[TimedPacket], drain_s: float = 1.0
) -> dict[int, ShardEngine]:
    """Instantiate one engine per populated shard over the net's live
    device objects (inline backend; also used directly by tests that
    need to instrument worker state before driving the protocol)."""
    end_time = _end_time(injections, drain_s)
    devices = net.controller.devices
    engines = {
        shard: ShardEngine(
            shard, plan, devices, end_time, topology=net.controller.network
        )
        for shard in plan.populated_shards
    }
    for shard, items in _assign_injections(net, plan, injections).items():
        for packet, hops, at_time in items:
            engines[shard].inject(packet, hops, at_time)
    return engines


def _run_inline_backend(
    net, plan: ShardPlan, injections: list[TimedPacket], drain_s: float
) -> ScaleReport:
    engines = build_engines(net, plan, injections, drain_s=drain_s)
    run_inline(engines)
    results = [engine.result() for engine in engines.values()]
    return _merge_results(plan, "inline", _end_time(injections, drain_s), results)


# -- process backend --------------------------------------------------------


def _run_process_backend(
    net,
    plan: ShardPlan,
    injections: list[TimedPacket],
    drain_s: float,
    chaos: FaultPlan | None,
    checkpoint_every: int | None,
) -> ScaleReport:
    """Spawn one worker per populated shard under the FlexMend
    supervisor (:mod:`repro.scale.mend`), which owns fault injection,
    windowed checkpoints, and deterministic restart."""
    end_time = _end_time(injections, drain_s)
    supervisor = Supervisor(
        net,
        plan,
        _assign_injections(net, plan, injections),
        end_time,
        chaos=chaos,
        checkpoint_every=checkpoint_every,
    )
    results, mend, registry = supervisor.run()
    return _merge_results(
        plan, "process", end_time, results, mend=mend, extra_registry=registry
    )


# -- entry point ------------------------------------------------------------


def run_sharded(
    net,
    injections: list[TimedPacket],
    shards: int,
    *,
    backend: str = "process",
    seed: int = 2024,
    drain_s: float = 1.0,
    colocate_below_s: float | None = None,
    plan: ShardPlan | None = None,
    chaos: FaultPlan | None = None,
    checkpoint_every: int | None = None,
) -> ScaleReport:
    """Partition ``net`` and run ``injections`` across shards.

    ``drain_s`` sets the quiet horizon after the last injection; every
    packet must finish inside it or the run fails loudly (no silent
    truncation). Like ``run_traffic``, the run mutates device state.
    Consistency checking is not supported under sharding (the checker
    is an observer of the single loop); use ``run_traffic`` for
    consistency experiments.

    ``chaos`` arms FlexMend worker-fault injection (``WorkerCrash`` /
    ``WorkerStall`` / ``HandoffDrop`` / ``HandoffDup`` specs from a
    :class:`~repro.faults.plan.FaultPlan`); process backend only.
    ``checkpoint_every`` sets the checkpoint cadence in protocol
    windows — ``None`` means "``limits.MEND_CHECKPOINT_EVERY_WINDOWS``
    when chaos is armed, off otherwise" (checkpoints cost a deep copy
    per shard per cadence, so fault-free capacity runs skip them), and
    ``0`` forces checkpointing off (worker death is then fatal).
    """
    if plan is None:
        kwargs: dict = {"seed": seed}
        if colocate_below_s is not None:
            kwargs["colocate_below_s"] = colocate_below_s
        plan = plan_shards(net.controller, shards, **kwargs)
    if backend == "inline":
        if chaos is not None:
            raise SimulationError(
                "flexmend chaos requires the process backend (worker "
                "crashes have no analogue inside one process)"
            )
        return _run_inline_backend(net, plan, injections, drain_s)
    if backend == "process":
        if multiprocessing.get_start_method(allow_none=False) != "fork" and (
            "fork" not in multiprocessing.get_all_start_methods()
        ):
            raise SimulationError(
                "flexscale process backend requires the fork start method "
                "(device closures are inherited, not pickled); "
                "use backend='inline' on this platform"
            )
        return _run_process_backend(
            net, plan, injections, drain_s, chaos, checkpoint_every
        )
    raise SimulationError(f"unknown flexscale backend {backend!r}")
