"""FlexScale: sharded multi-process data-plane simulation.

Partitions a FlexNet's simulated fabric across OS worker processes —
one shard owns a subset of devices plus their event loop — with
cross-shard packet handoff under a conservative virtual-clock lookahead
protocol, so same-seed sharded runs are bit-identical to the
single-process engine. Placement is admission-gated by FlexVet's
parallelism classification. See DESIGN.md §4i.

FlexMend (:mod:`repro.scale.mend`, DESIGN.md §4l) makes the process
backend fault-tolerant: windowed shard checkpoints, a sequenced
replayable transport, and a supervisor that restarts dead workers from
their last checkpoint — deterministically, so the traffic report stays
byte-identical even under injected worker crashes (experiment E23).
"""

from repro.scale.mend import (
    MendCheckpoint,
    MendReport,
    MendTransport,
    ScaleChaosReport,
    Supervisor,
    WorkerFaultInjector,
    checkpoint_engine,
    restore_engine,
    run_scale_chaos,
)
from repro.scale.plan import ShardPlan, plan_shards
from repro.scale.runner import ScaleReport, reference_run, run_sharded
from repro.scale.shard import Guarantee, Handoff, ShardEngine, ShardResult
from repro.scale.workload import e20_net, e20_workload, pod_fabric

__all__ = [
    "Guarantee",
    "Handoff",
    "MendCheckpoint",
    "MendReport",
    "MendTransport",
    "ScaleChaosReport",
    "ScaleReport",
    "ShardEngine",
    "ShardPlan",
    "ShardResult",
    "Supervisor",
    "WorkerFaultInjector",
    "checkpoint_engine",
    "e20_net",
    "e20_workload",
    "plan_shards",
    "pod_fabric",
    "reference_run",
    "restore_engine",
    "run_scale_chaos",
    "run_sharded",
]
