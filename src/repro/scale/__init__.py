"""FlexScale: sharded multi-process data-plane simulation.

Partitions a FlexNet's simulated fabric across OS worker processes —
one shard owns a subset of devices plus their event loop — with
cross-shard packet handoff under a conservative virtual-clock lookahead
protocol, so same-seed sharded runs are bit-identical to the
single-process engine. Placement is admission-gated by FlexVet's
parallelism classification. See DESIGN.md §4i.
"""

from repro.scale.plan import ShardPlan, plan_shards
from repro.scale.runner import ScaleReport, reference_run, run_sharded
from repro.scale.shard import Guarantee, Handoff, ShardEngine, ShardResult
from repro.scale.workload import e20_net, e20_workload, pod_fabric

__all__ = [
    "Guarantee",
    "Handoff",
    "ScaleReport",
    "ShardEngine",
    "ShardPlan",
    "ShardResult",
    "e20_net",
    "e20_workload",
    "plan_shards",
    "pod_fabric",
    "reference_run",
    "run_sharded",
]
