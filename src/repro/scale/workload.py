"""E20 fabric and workload builders.

The benchmark needs a topology whose link-latency structure gives the
planner real shard boundaries: *pods* of microsecond-linked devices
(fused by the co-location rule) joined by sub-millisecond inter-pod
links (the shard boundaries, and therefore the protocol lookahead).
The datapath runs h1 → pod 0 → pod 1 → … → h2, so a sharded run
pipelines: while pod 0's shard processes packet *k*, pod 1's shard is
already carrying packet *k−1*.

Workloads come from the seeded flow generators — distinct arrival
timestamps per packet (strictly increasing Poisson arrivals), which
keeps per-device event times unique and the single-process comparison
exact (see the tie-breaking note in :mod:`repro.simulator.engine`).
"""

from __future__ import annotations

from repro.simulator.flowgen import TimedPacket, poisson_flows

#: Intra-pod link latency (fused by the planner's co-location rule).
INTRA_POD_LATENCY_S = 2e-6
#: Inter-pod link latency — the shard boundary and protocol lookahead.
INTER_POD_LATENCY_S = 5e-4


def pod_fabric(pods: int = 4, switch_arch: str = "drmt"):
    """A FlexNet of ``pods`` pods: ``h1 - [na - s - nb] x pods - h2``.

    Each pod is NIC → switch → NIC on intra-pod links; pods chain over
    inter-pod links. Returns the net with the datapath built h1 → h2
    (no program installed yet)."""
    from repro.core.flexnet import FlexNet

    if pods < 1:
        raise ValueError("need at least one pod")
    net = FlexNet()
    net.add_host("h1")
    net.add_host("h2")
    previous = "h1"
    for pod in range(pods):
        na, sw, nb = f"n{pod}a", f"s{pod}", f"n{pod}b"
        net.add_smartnic(na)
        net.add_switch(sw, arch=switch_arch)
        net.add_smartnic(nb)
        net.connect(
            previous,
            na,
            INTRA_POD_LATENCY_S if previous == "h1" else INTER_POD_LATENCY_S,
        )
        net.connect(na, sw, INTRA_POD_LATENCY_S)
        net.connect(sw, nb, INTRA_POD_LATENCY_S)
        previous = nb
    net.connect(previous, "h2", INTRA_POD_LATENCY_S)
    net.build_datapath("h1", "h2")
    return net


def composed_program():
    """The E20 program: the base pipeline with the firewall, INT probe,
    count-min sketch, and rate-limiter deltas composed on top — a
    realistically heavy per-packet workload with per-flow, sketch, and
    telemetry state."""
    from repro import apps
    from repro.lang.delta import apply_delta

    program = apps.base_infrastructure()
    for delta in (
        apps.firewall_delta(),
        apps.int_probe_delta(),
        apps.count_min_delta(),
        apps.rate_limit_delta(),
    ):
        program, _ = apply_delta(program, delta)
    return program


def e20_net(pods: int = 4, switch_arch: str = "drmt"):
    """The complete E20 scenario net: the pod fabric with the composed
    program installed through the controller (which concentrates the
    datapath slice on the first switch) *plus* a fleet-wide install of
    the same program on every other pod switch — each pod applies the
    full middlebox pipeline against its own private state, the pattern
    that makes the fabric's work genuinely pipeline-parallel."""
    net = pod_fabric(pods, switch_arch=switch_arch)
    program = composed_program()
    net.install(program)
    placed = set(net.controller.plan.placement.values())
    for pod in range(pods):
        switch = f"s{pod}"
        if switch not in placed:
            net.controller.devices[switch].install(program)
    return net


def e20_workload(
    packets: int, rate_pps: float = 20_000.0, flows: int = 64, seed: int = 2024
) -> list[TimedPacket]:
    """Seeded Poisson multi-flow workload, truncated to ``packets``."""
    workload: list[TimedPacket] = []
    # Poisson duration is open-ended; generate generously and truncate.
    duration_s = (packets / rate_pps) * 4 + 1.0
    for timed in poisson_flows(rate_pps, duration_s, flow_count=flows, seed=seed):
        workload.append(timed)
        if len(workload) >= packets:
            break
    return workload
