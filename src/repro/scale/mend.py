"""FlexMend: fault-tolerant sharded execution.

The FlexScale process backend survives worker-process death without
giving up determinism. Three mechanisms compose (DESIGN.md §4l):

* **Windowed checkpoints** — at window boundaries a worker snapshots
  its shard as plain data: device/map/table state, the event loop's
  contents (every shard-loop event is a packet arrival, so the queue
  serializes as ``(time, seq, packet, hops, index)`` tuples), the
  clock, pending handoffs, and the transport's in/out watermarks.
* **Sequenced transport with retention** — every handoff batch between
  a shard pair carries a per-edge sequence number. Receivers deliver
  in order, dedup by sequence (a batch seq identifies the producer
  window; handoffs inside it are identified by ``(packet_id,
  hop_index)`` — so the effective dedup key is
  ``(packet_id, hop_index, window)``), and NACK gaps. Senders retain
  batches past the receiver's last *committed* (checkpointed)
  watermark, so a restarted shard can replay its inbound stream
  exactly; the coordinator trims retention as checkpoints commit.
* **A supervisor** — the coordinator detects death via process
  sentinels and per-window heartbeats, respawns the shard from its
  last checkpoint with bounded retries and exponential backoff
  (:mod:`repro.limits`), asks in-neighbors to replay, and broadcasts a
  poison pill for sub-second fail-fast teardown when a run cannot be
  saved.

Why replay is exact: a checkpoint at window *W* captures the shard
*after* window *W*'s outbound flush, together with the transport's
``expected`` watermark per in-edge. Everything the shard consumed
through *W* is inside the snapshot; everything after is a batch with
seq > ``expected``-1, which the sender still retains (trims never pass
a committed watermark). Re-execution from *W* is deterministic — the
event loop's ``(time, seq)`` contract is preserved by re-scheduling
saved arrivals in canonical order — so the restarted shard re-sends
byte-identical batches under the *same* seqs, which neighbors that
already saw them drop as duplicates. The merged ``traffic`` section is
therefore byte-identical to the fault-free run (experiment E23).
"""

from __future__ import annotations

import copy
import os
import queue as queue_mod
import random
import time
import traceback
from dataclasses import dataclass, field

from repro import limits
from repro.errors import SimulationError
from repro.faults.plan import FaultPlan
from repro.observe.metrics import MetricsRegistry
from repro.scale.shard import Guarantee, Handoff, ShardEngine, ShardResult
from repro.simulator.packet import (
    packet_id_state,
    reset_packet_ids,
    set_packet_id_state,
)
from repro.util import stable_hash

#: Exit code a worker uses for an *injected* crash (``os._exit`` at a
#: window boundary — a controlled death that leaves the mp queues
#: uncorrupted, unlike killing mid-pickle). The supervisor treats any
#: non-zero death the same way; the code only aids diagnostics.
MEND_CRASH_EXIT_CODE = 73


# -- fault injection --------------------------------------------------------


class WorkerFaultInjector:
    """Deterministic per-shard decision oracle for the FlexMend fault
    categories (the sharded sibling of
    :class:`repro.faults.plan.FaultInjector`).

    Crash/stall specs fire once globally: ``fired`` carries the specs
    already consumed across previous incarnations (the supervisor owns
    that set — it must survive the very process death it describes).
    Probabilistic draws use per-shard RNG streams seeded from
    ``stable_hash((seed, category, shard))`` so one shard's draws never
    depend on another's, and the RNG state is checkpointed so a
    restarted worker re-draws identically.
    """

    def __init__(self, plan: FaultPlan, shard_id: int, fired: frozenset = frozenset()):
        self.plan = plan
        self.shard_id = shard_id
        self.fired = set(fired)
        self._crashes = [
            (index, spec)
            for index, spec in enumerate(plan.worker_crashes)
            if spec.shard == shard_id
        ]
        self._stalls = [
            (index, spec)
            for index, spec in enumerate(plan.worker_stalls)
            if spec.shard == shard_id
        ]
        self.drop_p = max(
            (spec.probability for spec in plan.handoff_drops if spec.shard == shard_id),
            default=0.0,
        )
        self.dup_p = max(
            (spec.probability for spec in plan.handoff_dups if spec.shard == shard_id),
            default=0.0,
        )
        self._drop_rng = self._stream("mend-drop")
        self._dup_rng = self._stream("mend-dup")

    def _stream(self, category: str) -> random.Random:
        return random.Random(
            stable_hash((self.plan.seed, *category.encode(), self.shard_id))
        )

    def crash_at(self, window: int) -> int | None:
        """Index of an unfired crash spec due at this window, if any."""
        for index, spec in self._crashes:
            if spec.window == window and ("crash", index) not in self.fired:
                self.fired.add(("crash", index))
                return index
        return None

    def stall_at(self, window: int) -> tuple[int, float] | None:
        for index, spec in self._stalls:
            if spec.window == window and ("stall", index) not in self.fired:
                self.fired.add(("stall", index))
                return index, spec.stall_s
        return None

    def drop_batch(self) -> bool:
        return bool(self.drop_p) and self._drop_rng.random() < self.drop_p

    def dup_batch(self) -> bool:
        return bool(self.dup_p) and self._dup_rng.random() < self.dup_p

    def getstate(self) -> tuple:
        return (self._drop_rng.getstate(), self._dup_rng.getstate())

    def setstate(self, state: tuple) -> None:
        self._drop_rng.setstate(state[0])
        self._dup_rng.setstate(state[1])


# -- sequenced transport ----------------------------------------------------


@dataclass
class MendTransportStats:
    """Per-shard transport accounting, split by determinism.

    ``deterministic_dict`` fields are provably identical across
    same-seed runs (and equal to the fault-free run where applicable);
    recovery-path counters (dups dropped, NACKs, retransmits, replays)
    depend on wall-clock races between trims, replays, and in-flight
    sends, so like ``cpu_s`` they are measurement-only and excluded
    from every deterministic export.
    """

    batches_delivered: int = 0
    fault_drops: int = 0
    fault_dups: int = 0
    duplicates_dropped: int = 0
    nacks_sent: int = 0
    retransmits_served: int = 0
    replays_served: int = 0

    def deterministic_dict(self) -> dict:
        return {
            "batches_delivered": self.batches_delivered,
            "fault_drops": self.fault_drops,
            "fault_dups": self.fault_dups,
        }

    def measured_dict(self) -> dict:
        return {
            "duplicates_dropped": self.duplicates_dropped,
            "nacks_sent": self.nacks_sent,
            "retransmits_served": self.retransmits_served,
            "replays_served": self.replays_served,
        }


@dataclass
class TransportCheckpoint:
    """The transport half of a shard checkpoint: watermarks in both
    directions plus the retention buffer (a restarted *sender* must
    still be able to serve replays for seqs it sent before its own
    checkpoint — re-execution only regenerates seqs after it)."""

    sent_seq: dict[int, int]
    expected: dict[int, int]
    buffered: dict[int, dict[int, tuple]]
    nacked: dict[int, frozenset]
    retained: dict[int, dict[int, tuple]]
    stats: MendTransportStats


class MendTransport:
    """Per-edge sequenced, deduping, replayable framing over the shard
    inbox queues, with *round-gated release*.

    Wire frames (first element is the kind):

    * ``("batch", src, seq, messages)`` — one round's handoffs +
      guarantee from ``src`` under per-edge sequence ``seq``.
    * ``("nack", requester, seq)`` — receiver is missing a seq; resend.
    * ``("replay", requester, since)`` — supervisor-initiated: resend
      every retained batch with seq > ``since`` to ``requester``.
    * ``("trim", dst, upto)`` — supervisor: ``dst`` committed a
      checkpoint; retention for it may drop seqs <= ``upto``.
    * ``("poison",)`` / ``("shutdown",)`` — terminate now / all done.

    The receive side is split into :meth:`ingest` (buffer frames as
    they arrive, in any order) and :meth:`release` (hand exactly the
    batches of one protocol *round* to the engine, per-source in seq
    order). The worker advances in lock-step rounds — one frame per
    edge per round, mirroring ``step_inline`` — so the engine's window
    schedule is a pure function of delivered content, never of queue
    interleaving. That is what makes restart sound: a respawned worker
    re-executes the same rounds with the same inputs and regenerates
    byte-identical frames under the same seqs, which neighbors that
    already consumed them drop as duplicates.

    Loss recovery is two-tier: a frame arriving *above* a gap NACKs the
    missing seqs immediately, and the worker's wait loop re-NACKs
    after ``limits.MEND_NACK_IMPATIENCE_S`` (the dropped-final-frame
    case, where no later frame exists to reveal the gap). Senders
    retain every batch until the supervisor's trim says the receiver
    checkpointed past it.
    """

    def __init__(
        self,
        shard_id: int,
        inboxes: dict,
        injector: WorkerFaultInjector | None = None,
        in_neighbors: tuple = (),
    ):
        self.shard_id = shard_id
        self.inboxes = inboxes
        self.injector = injector
        self.in_neighbors = tuple(sorted(in_neighbors))
        self.sent_seq: dict[int, int] = {}
        #: per in-edge: highest seq released to the engine.
        self.delivered: dict[int, int] = {src: 0 for src in self.in_neighbors}
        self.buffered: dict[int, dict[int, tuple]] = {
            src: {} for src in self.in_neighbors
        }
        self.nacked: dict[int, set] = {src: set() for src in self.in_neighbors}
        self.retained: dict[int, dict[int, tuple]] = {}
        self.stats = MendTransportStats()

    # -- sending ------------------------------------------------------------

    def send(self, dst: int, messages: list) -> None:
        seq = self.sent_seq.get(dst, 0) + 1
        self.sent_seq[dst] = seq
        frame = ("batch", self.shard_id, seq, tuple(messages))
        self.retained.setdefault(dst, {})[seq] = frame[3]
        if self.injector is not None and self.injector.drop_batch():
            # Lost in transit; a NACK (or a restart replay) recovers it
            # from retention.
            self.stats.fault_drops += 1
            return
        self.inboxes[dst].put(frame)
        if self.injector is not None and self.injector.dup_batch():
            self.stats.fault_dups += 1
            self.inboxes[dst].put(frame)

    # -- receiving ----------------------------------------------------------

    def ingest(self, frame: tuple) -> str:
        """Buffer/serve one inbound frame; returns the frame kind.
        Batch payloads are *not* delivered here — :meth:`release` hands
        them to the engine round by round."""
        kind = frame[0]
        if kind == "batch":
            _, src, seq, messages = frame
            if seq <= self.delivered.get(src, 0) or seq in self.buffered.get(
                src, {}
            ):
                self.stats.duplicates_dropped += 1
                return kind
            buffer = self.buffered.setdefault(src, {})
            buffer[seq] = messages
            nacked = self.nacked.setdefault(src, set())
            for missing in range(self.delivered.get(src, 0) + 1, seq):
                if missing not in buffer and missing not in nacked:
                    nacked.add(missing)
                    self.stats.nacks_sent += 1
                    self.inboxes[src].put(("nack", self.shard_id, missing))
            return kind
        if kind == "nack":
            _, requester, seq = frame
            messages = self.retained.get(requester, {}).get(seq)
            if messages is not None:
                self.stats.retransmits_served += 1
                self.inboxes[requester].put(("batch", self.shard_id, seq, messages))
            return kind
        if kind == "replay":
            _, requester, since = frame
            for seq, messages in sorted(self.retained.get(requester, {}).items()):
                if seq > since:
                    self.stats.replays_served += 1
                    self.inboxes[requester].put(
                        ("batch", self.shard_id, seq, messages)
                    )
            return kind
        if kind == "trim":
            _, dst, upto = frame
            retained = self.retained.get(dst)
            if retained:
                for seq in [seq for seq in retained if seq <= upto]:
                    del retained[seq]
            return kind
        if kind in ("poison", "shutdown"):
            return kind
        raise SimulationError(f"unknown mend frame kind {kind!r}")

    def _avail(self, src: int) -> int:
        """Highest contiguously buffered seq from ``src``."""
        seq = self.delivered[src]
        buffer = self.buffered[src]
        while seq + 1 in buffer:
            seq += 1
        return seq

    def ready(self, round_no: int, needed: tuple) -> bool:
        """True when every still-needed in-edge has buffered its frame
        for ``round_no`` (and everything before it)."""
        return all(self._avail(src) >= round_no for src in needed)

    def release(self, round_no: int, deliver) -> None:
        """Deliver buffered batches up to ``round_no``, per-source in
        ascending seq — a deterministic order, independent of arrival
        interleaving."""
        for src in self.in_neighbors:
            buffer = self.buffered[src]
            seq = self.delivered[src]
            while seq < round_no and (seq + 1) in buffer:
                seq += 1
                for message in buffer.pop(seq):
                    deliver(message)
                self.stats.batches_delivered += 1
                self.nacked[src].discard(seq)
            self.delivered[src] = seq

    def nack_missing(self, round_no: int, needed: tuple) -> None:
        """Impatience path: re-request *every* seq still missing below
        the blocked round from every lagging in-edge. Deliberately
        ignores the one-shot ``nacked`` guard (a first NACK may have
        raced a death and been drained with the dead worker's inbox)
        and deliberately not one-at-a-time (a burst of losses — e.g. a
        restored sender re-dropping the same seqs its restored RNG
        already dropped once — must recover in one tick, not one seq
        per tick)."""
        for src in needed:
            avail = self._avail(src)
            if avail >= round_no:
                continue
            buffer = self.buffered[src]
            for seq in range(avail + 1, round_no + 1):
                if seq in buffer:
                    continue
                self.stats.nacks_sent += 1
                self.inboxes[src].put(("nack", self.shard_id, seq))

    # -- checkpoint ---------------------------------------------------------

    def checkpoint(self) -> TransportCheckpoint:
        return TransportCheckpoint(
            sent_seq=dict(self.sent_seq),
            expected={src: seq + 1 for src, seq in self.delivered.items()},
            buffered={
                src: dict(buffer) for src, buffer in self.buffered.items() if buffer
            },
            nacked={
                src: frozenset(seqs) for src, seqs in self.nacked.items() if seqs
            },
            retained={
                dst: dict(batches)
                for dst, batches in self.retained.items()
                if batches
            },
            stats=copy.deepcopy(self.stats),
        )

    def restore(self, ckpt: TransportCheckpoint) -> None:
        self.sent_seq = dict(ckpt.sent_seq)
        self.delivered = {src: seq - 1 for src, seq in ckpt.expected.items()}
        for src in self.in_neighbors:
            self.delivered.setdefault(src, 0)
            self.buffered[src] = dict(ckpt.buffered.get(src, {}))
            self.nacked[src] = set(ckpt.nacked.get(src, ()))
        self.retained = {
            dst: dict(batches) for dst, batches in ckpt.retained.items()
        }
        self.stats = copy.deepcopy(ckpt.stats)


# -- shard checkpoints ------------------------------------------------------


@dataclass
class DeviceCheckpoint:
    """One device's mutable-during-run state as plain data. Rules are
    static during a scale run (reconfiguration is not supported under
    sharding), so tables checkpoint only their counters/meter/epoch."""

    stats: object
    busy_until_s: float
    #: map name -> (entries, mutation_count, version)
    maps: dict[str, tuple]
    #: table name -> (hit_counts, miss_count, epoch, meter)
    tables: dict[str, tuple]


@dataclass
class EngineCheckpoint:
    """A consistent cut of one :class:`ShardEngine` at a window
    boundary: taken after the window's outbound flush, so the outbox is
    empty and every other piece of state is captured below."""

    shard_id: int
    window: int
    clock: float
    metrics: object
    digest_count: int
    handoffs_in: int
    handoffs_out: int
    guarantee: dict[int, float]
    pending: tuple[Handoff, ...]
    #: event-loop contents as (time, seq, packet, hops, index) tuples.
    inflight: tuple[tuple, ...]
    devices: dict[str, DeviceCheckpoint]


@dataclass
class MendCheckpoint:
    """Everything a fresh fork needs to become the dead worker.

    ``round`` is the lock-step protocol round the snapshot was taken in
    (post-advance, post-send, *pre-release* of that round's inputs) —
    a respawned worker resumes at the wait phase of exactly this round.
    Note ``round >= engine.window``: a round whose advance could not
    progress (guarantees unchanged) still sends null messages and
    consumes a frame per edge, but does not open a new window.
    """

    round: int
    engine: EngineCheckpoint
    transport: TransportCheckpoint
    injector_state: tuple | None
    next_packet_id: int


def _checkpoint_device(name: str, device) -> DeviceCheckpoint:
    if device._transition is not None:  # noqa: SLF001 - platform-internal
        raise SimulationError(
            f"device {name!r} is mid-transition; FlexMend checkpoints "
            "require settled devices (reconfiguration is not supported "
            "under sharding)"
        )
    instance = device.active_instance
    maps: dict[str, tuple] = {}
    tables: dict[str, tuple] = {}
    if instance is not None:
        for state in instance.maps:
            maps[state.name] = (
                tuple(state._entries.items()),  # noqa: SLF001
                state.mutation_count,
                state._version,  # noqa: SLF001
            )
        for table_name, rules in instance.rules.items():
            tables[table_name] = (
                tuple(rules.hit_counts),
                rules.miss_count,
                rules.epoch,
                copy.deepcopy(rules.meter),
            )
    return DeviceCheckpoint(
        stats=copy.deepcopy(device.stats),
        busy_until_s=device._busy_until_s,  # noqa: SLF001
        maps=maps,
        tables=tables,
    )


def _restore_device(device, ckpt: DeviceCheckpoint) -> None:
    device.stats = copy.deepcopy(ckpt.stats)
    device._busy_until_s = ckpt.busy_until_s  # noqa: SLF001
    instance = device.active_instance
    if instance is None:
        return
    for name, (entries, mutation_count, version) in ckpt.maps.items():
        state = instance.maps.state(name)
        state._entries.clear()  # noqa: SLF001
        state._entries.update(entries)  # noqa: SLF001
        state.mutation_count = mutation_count
        state._version = version  # noqa: SLF001
    for name, (hit_counts, miss_count, epoch, meter) in ckpt.tables.items():
        rules = instance.rules[name]
        rules.hit_counts[:] = hit_counts
        rules.miss_count = miss_count
        rules._meter = copy.deepcopy(meter)  # noqa: SLF001
        # Setting _meter directly skips the setter's epoch bump; pin the
        # checkpointed epoch explicitly (flow-cache entries from before
        # the restore don't exist in a fresh fork anyway).
        rules.epoch = epoch
    cache = device.flow_cache
    if cache is not None:
        # Performance-only state: deliberately not checkpointed. A cold
        # cache replays to identical verdicts (FlexPath's replayable-
        # cache invariant), so clearing preserves bit-identity.
        cache.clear()


def checkpoint_engine(engine: ShardEngine) -> EngineCheckpoint:
    """Snapshot a shard at a window boundary (outbox must be flushed)."""
    if any(engine._outbox.values()):  # noqa: SLF001
        raise SimulationError("checkpoint requires a flushed outbox")
    inflight = tuple(
        (at_time, seq, copy.deepcopy(packet), tuple(hops), index)
        for at_time, seq, packet, hops, index in engine.network.inflight_arrivals()
    )
    return EngineCheckpoint(
        shard_id=engine.shard_id,
        window=engine.windows,
        clock=engine.clock,
        metrics=copy.deepcopy(engine.metrics),
        digest_count=engine.digest_count,
        handoffs_in=engine.handoffs_in,
        handoffs_out=engine.handoffs_out,
        guarantee=dict(engine._guarantee),  # noqa: SLF001
        pending=copy.deepcopy(tuple(engine._pending)),  # noqa: SLF001
        inflight=inflight,
        devices={
            name: _checkpoint_device(name, device)
            for name, device in sorted(engine._devices.items())  # noqa: SLF001
        },
    )


def restore_engine(engine: ShardEngine, ckpt: EngineCheckpoint) -> None:
    """Rebuild a freshly constructed (un-injected) engine from a
    checkpoint. Saved arrivals are re-scheduled in ``(time, seq)``
    order, so fresh loop seqs reproduce the original same-time
    tie-breaks and re-execution is bit-identical."""
    if ckpt.shard_id != engine.shard_id:
        raise SimulationError(
            f"checkpoint of shard {ckpt.shard_id} cannot restore "
            f"into shard {engine.shard_id}"
        )
    if engine.loop.pending() or engine.windows:
        raise SimulationError("restore requires a fresh engine")
    engine.loop.restore_clock(ckpt.clock)
    engine._clock = ckpt.clock  # noqa: SLF001
    engine.windows = ckpt.window
    engine.metrics = copy.deepcopy(ckpt.metrics)
    engine.digest_count = ckpt.digest_count
    engine.handoffs_in = ckpt.handoffs_in
    engine.handoffs_out = ckpt.handoffs_out
    engine._guarantee = dict(ckpt.guarantee)  # noqa: SLF001
    engine._pending = list(copy.deepcopy(ckpt.pending))  # noqa: SLF001
    for name, device_ckpt in ckpt.devices.items():
        _restore_device(engine._devices[name], device_ckpt)  # noqa: SLF001
    for at_time, _seq, packet, hops, index in sorted(
        ckpt.inflight, key=lambda item: (item[0], item[1])
    ):
        engine.network.receive(
            copy.deepcopy(packet),
            list(hops),
            index,
            at_time,
            engine.metrics,
            on_done=engine._on_done,  # noqa: SLF001
        )


def make_checkpoint(
    round_no: int,
    engine: ShardEngine,
    transport: MendTransport,
    injector: WorkerFaultInjector | None,
) -> MendCheckpoint:
    return MendCheckpoint(
        round=round_no,
        engine=checkpoint_engine(engine),
        transport=transport.checkpoint(),
        injector_state=injector.getstate() if injector is not None else None,
        next_packet_id=packet_id_state(),
    )


# -- worker -----------------------------------------------------------------


def _flush_queue(mp_queue) -> None:
    """Push buffered puts through the feeder thread before ``os._exit``
    (which skips the normal interpreter teardown that would flush)."""
    mp_queue.close()
    mp_queue.join_thread()


def _worker_main(
    shard_id: int,
    plan,
    net,
    injections: list[tuple],
    end_time: float,
    inboxes: dict,
    result_queue,
    events_queue,
    chaos: FaultPlan | None,
    checkpoint_every: int,
    fired_faults: frozenset,
    restore: MendCheckpoint | None,
) -> None:
    """One forked worker: owns its shard's (copy-on-write) devices, runs
    the protocol in lock-step rounds over the sequenced transport,
    heartbeats and checkpoints to the supervisor, ships a ShardResult,
    then lingers to serve replay/NACK requests until the supervisor's
    shutdown.

    Round structure (mirrors ``step_inline``, which is what makes the
    round schedule — and therefore every regenerated frame after a
    restore — deterministic): advance one window, send exactly one
    frame to every out-neighbor, then block until every still-needed
    in-neighbor's frame for this round arrived and release the whole
    round to the engine at once. A shard whose advance cannot progress
    still sends its (null-message) frame and consumes a round of
    inputs, exactly like an inline engine being stepped.
    """
    try:
        # CPU-seconds measurement only — it feeds the E20 capacity
        # metric (aggregate pps = packets / max shard CPU) and never
        # touches simulation state or any deterministic export, so the
        # wall-clock read is baselined in vet_baseline.json.
        cpu_start = time.process_time()
        injector = (
            WorkerFaultInjector(chaos, shard_id, fired_faults)
            if chaos is not None
            else None
        )
        transport = MendTransport(
            shard_id, inboxes, injector, in_neighbors=plan.in_neighbors(shard_id)
        )
        engine = ShardEngine(
            shard_id,
            plan,
            net.controller.devices,
            end_time,
            topology=net.controller.network,
            track_inflight=checkpoint_every > 0,
        )
        if restore is not None:
            restore_engine(engine, restore.engine)
            transport.restore(restore.transport)
            if injector is not None and restore.injector_state is not None:
                injector.setstate(restore.injector_state)
            set_packet_id_state(restore.next_packet_id)
            round_no = restore.round
        else:
            # Packets created inside this worker (if any) get a per-shard
            # id namespace so ids can never collide across shards.
            reset_packet_ids(shard_id + 1)
            for packet, hops, at_time in injections:
                engine.inject(packet, hops, at_time)
            round_no = 0
            if checkpoint_every > 0:
                # Genesis checkpoint ("round 0"): restart is possible
                # from the very start even if the first crash lands
                # before the first cadence checkpoint.
                events_queue.put(
                    (
                        "ckpt",
                        shard_id,
                        0,
                        make_checkpoint(0, engine, transport, injector),
                    )
                )
        inbox = inboxes[shard_id]
        # A restored worker resumes at the wait phase of the checkpoint
        # round: the snapshot was taken post-advance/post-send, before
        # that round's inputs were released.
        resuming = restore is not None
        while True:
            if not resuming:
                round_no += 1
                engine.advance()
                outbox = engine.take_outbox()
                guarantees = engine.guarantees_out()
                # One frame per out-neighbor per round — the handoffs
                # followed by the guarantee covering them. Handoffs stay
                # in per-producer FIFO order (the window-completeness
                # invariant) and the constant frame-per-edge-per-round
                # rate is what lets sequence numbers double as round
                # numbers.
                for dst in sorted(guarantees):
                    batch: list = list(outbox.get(dst, ()))
                    batch.append(guarantees[dst])
                    transport.send(dst, batch)
                events_queue.put(("hb", shard_id, round_no))
                if injector is not None:
                    stalled = injector.stall_at(engine.windows)
                    if stalled is not None:
                        index, stall_s = stalled
                        events_queue.put(
                            ("fault", shard_id, "stall", index, engine.windows)
                        )
                        time.sleep(stall_s)
                    crash_index = injector.crash_at(engine.windows)
                    if crash_index is not None:
                        events_queue.put(
                            ("fault", shard_id, "crash", crash_index, engine.windows)
                        )
                        # Controlled death at a round boundary: flush
                        # every queue feeder first so heartbeats/fault
                        # events and this round's outbound batches
                        # survive the exit, then die without running any
                        # teardown handlers.
                        _flush_queue(events_queue)
                        for queue in inboxes.values():
                            _flush_queue(queue)
                        os._exit(MEND_CRASH_EXIT_CODE)
                if (
                    checkpoint_every > 0
                    and round_no % checkpoint_every == 0
                    and not engine.finished()
                ):
                    events_queue.put(
                        (
                            "ckpt",
                            shard_id,
                            engine.windows,
                            make_checkpoint(round_no, engine, transport, injector),
                        )
                    )
                if engine.finished():
                    break
            resuming = False
            # An in-edge whose guarantee already covers the horizon will
            # never be waited on again — its shard may have finished and
            # stopped sending (deterministic: a function of released
            # content only).
            needed = tuple(
                src
                for src in transport.in_neighbors
                if engine._guarantee.get(src, 0.0) < end_time  # noqa: SLF001
            )
            patience = max(
                1,
                int(limits.SCALE_RESULT_TIMEOUT_S / limits.MEND_NACK_IMPATIENCE_S),
            )
            while not transport.ready(round_no, needed):
                try:
                    frame = inbox.get(timeout=limits.MEND_NACK_IMPATIENCE_S)
                except queue_mod.Empty:
                    patience -= 1
                    if patience <= 0:
                        raise SimulationError(
                            f"shard {shard_id}: round {round_no} inputs never "
                            f"arrived (waited {limits.SCALE_RESULT_TIMEOUT_S:g}s)"
                        )
                    # A worker blocked on a slow (possibly restarting)
                    # neighbor is alive, not stalled — keep heartbeating
                    # so the staleness detector only ever fires on
                    # wedged *computation*, which never reaches this
                    # wait loop.
                    events_queue.put(("hb", shard_id, engine.windows))
                    transport.nack_missing(round_no, needed)
                    continue
                if transport.ingest(frame) in ("poison", "shutdown"):
                    return
            transport.release(round_no, engine.deliver)
        shard_result = engine.result()
        shard_result.cpu_s = time.process_time() - cpu_start
        shard_result.mend = {
            "deterministic": transport.stats.deterministic_dict(),
            "measured": transport.stats.measured_dict(),
        }
        result_queue.put(("ok", shard_result))
        # Linger: a crashed neighbor restoring from its checkpoint may
        # still need this shard's retained batches, so keep serving
        # NACK/replay frames until the supervisor's shutdown broadcast.
        while True:
            try:
                frame = inbox.get(timeout=limits.SCALE_JOIN_TIMEOUT_S)
            except queue_mod.Empty:
                return
            if transport.ingest(frame) in ("poison", "shutdown"):
                return
    except BaseException:  # noqa: BLE001 - shipped to the coordinator
        result_queue.put(("error", shard_id, traceback.format_exc()))
        # Wait for the supervisor's poison/shutdown so neighbors can
        # still be served while it tears the fleet down.
        try:
            inbox = inboxes[shard_id]
            while True:
                frame = inbox.get(timeout=limits.SCALE_JOIN_TIMEOUT_S)
                if frame[0] in ("poison", "shutdown"):
                    return
        except BaseException:  # noqa: BLE001 - best-effort linger
            return


# -- supervision ------------------------------------------------------------


@dataclass
class MendReport:
    """Supervision outcome (FlexScope Reportable protocol), merged into
    :class:`~repro.scale.runner.ScaleReport`.

    ``to_dict`` carries only deterministic fields — crash sites,
    restarts, replayed windows, committed checkpoints, per-shard
    deterministic transport counters. Wall-clock restart latencies and
    racy recovery counters (dup drops, NACKs, retransmits) live in
    ``restart_wall_s`` / ``measured`` like ``cpu_s`` does: available
    for measurement, excluded from every byte-compared export.
    """

    supervised: bool = True
    checkpoint_every: int = 0
    crashes: list[dict] = field(default_factory=list)
    stalls_injected: int = 0
    restarts: int = 0
    stall_kills: int = 0
    windows_replayed: int = 0
    checkpoints_committed: int = 0
    per_shard: dict[int, dict] = field(default_factory=dict)
    #: measurement-only (wall clock): per-restart respawn latency.
    restart_wall_s: list[float] = field(default_factory=list)
    #: measurement-only: racy per-shard recovery counters + exit codes.
    measured: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "supervised": self.supervised,
            "checkpoint_every": self.checkpoint_every,
            "crashes": list(self.crashes),
            "stalls_injected": self.stalls_injected,
            "restarts": self.restarts,
            "stall_kills": self.stall_kills,
            "windows_replayed": self.windows_replayed,
            "checkpoints_committed": self.checkpoints_committed,
            "per_shard": {
                str(shard): dict(counters)
                for shard, counters in sorted(self.per_shard.items())
            },
        }

    def summary(self) -> str:
        lines = [
            f"flexmend: {len(self.crashes)} crash(es), {self.restarts} restart(s), "
            f"{self.windows_replayed} window(s) replayed, "
            f"{self.checkpoints_committed} checkpoint(s)"
        ]
        for crash in self.crashes:
            lines.append(
                f"  shard {crash['shard']} died at window {crash['window']}"
            )
        if self.restart_wall_s:
            worst = max(self.restart_wall_s)
            lines.append(f"  slowest restart {worst * 1e3:.1f} ms (wall)")
        return "\n".join(lines)


class Supervisor:
    """The coordinator side of FlexMend: spawns one worker per populated
    shard, watches sentinels + heartbeats, respawns the dead from their
    last checkpoint (bounded retries, exponential backoff), trims
    retention as checkpoints commit, and poisons the fleet for fast
    teardown when a run cannot be saved."""

    def __init__(
        self,
        net,
        plan,
        per_shard_injections: dict[int, list[tuple]],
        end_time: float,
        chaos: FaultPlan | None = None,
        checkpoint_every: int | None = None,
    ):
        import multiprocessing

        self.net = net
        self.plan = plan
        self.per_shard = per_shard_injections
        self.end_time = end_time
        self.chaos = chaos
        if checkpoint_every is None:
            checkpoint_every = (
                limits.MEND_CHECKPOINT_EVERY_WINDOWS if chaos is not None else 0
            )
        self.checkpoint_every = checkpoint_every
        self.context = multiprocessing.get_context("fork")
        self.shards = plan.populated_shards
        self.inboxes = {shard: self.context.Queue() for shard in self.shards}
        self.result_queue = self.context.Queue()
        self.events_queue = self.context.Queue()
        self.report = MendReport(checkpoint_every=checkpoint_every)
        self._procs: dict[int, object] = {}
        self._checkpoints: dict[int, MendCheckpoint] = {}
        self._restarts: dict[int, int] = {shard: 0 for shard in self.shards}
        self._fired: set = set()
        self._pending_crash: dict[int, int] = {}
        self._last_hb: dict[int, tuple[float, int]] = {}
        self._deaths: list[dict] = []

    # -- process lifecycle --------------------------------------------------

    def _spawn(self, shard: int, restore: MendCheckpoint | None) -> None:
        worker = self.context.Process(
            target=_worker_main,
            args=(
                shard,
                self.plan,
                self.net,
                self.per_shard.get(shard, []),
                self.end_time,
                self.inboxes,
                self.result_queue,
                self.events_queue,
                self.chaos,
                self.checkpoint_every,
                frozenset(self._fired),
                restore,
            ),
            name=f"flexscale-shard-{shard}",
        )
        worker.start()
        self._procs[shard] = worker
        # Wall-clock pacing only (stall detection); never touches
        # simulation state — baselined in vet_baseline.json.
        self._last_hb[shard] = (time.monotonic(), 0)

    def _drain_events(self) -> None:
        block = True
        while True:
            try:
                if block:
                    event = self.events_queue.get(
                        timeout=limits.MEND_POLL_INTERVAL_S
                    )
                    block = False
                else:
                    event = self.events_queue.get_nowait()
            except queue_mod.Empty:
                return
            kind = event[0]
            if kind == "hb":
                _, shard, window = event
                self._last_hb[shard] = (time.monotonic(), window)
            elif kind == "ckpt":
                _, shard, window, checkpoint = event
                self._checkpoints[shard] = checkpoint
                self.report.checkpoints_committed += 1
                # Retention behind the committed inbound watermark can
                # never be replayed again — let senders trim it.
                for src, expected in sorted(checkpoint.transport.expected.items()):
                    self.inboxes[src].put(("trim", shard, expected - 1))
            elif kind == "fault":
                _, shard, fault_kind, index, window = event
                self._fired.add((fault_kind, index))
                if fault_kind == "stall":
                    self.report.stalls_injected += 1
                else:
                    self._pending_crash[shard] = window

    def _drain_results(self, results: dict[int, ShardResult]) -> str | None:
        while True:
            try:
                item = self.result_queue.get_nowait()
            except queue_mod.Empty:
                return None
            if item[0] == "ok":
                results[item[1].shard_id] = item[1]
            else:
                return f"shard {item[1]} failed:\n{item[2]}"

    def _handle_death(self, shard: int, exitcode: int | None) -> str | None:
        """Respawn a dead shard from its last checkpoint; returns an
        error string when the run cannot be saved."""
        self._deaths.append({"shard": shard, "exitcode": exitcode})
        checkpoint = self._checkpoints.get(shard)
        if checkpoint is None:
            return (
                f"shard {shard} worker died (exit {exitcode}) with no "
                "checkpoint to restore (checkpointing off or death before "
                "the genesis checkpoint)"
            )
        if self._restarts[shard] >= limits.MEND_MAX_RESTARTS:
            return (
                f"shard {shard} exceeded the restart budget "
                f"({limits.MEND_MAX_RESTARTS}) — last death exit {exitcode}"
            )
        crash_window = self._pending_crash.pop(shard, self._last_hb[shard][1])
        self.report.crashes.append({"shard": shard, "window": crash_window})
        self.report.windows_replayed += max(
            0, crash_window - checkpoint.engine.window
        )
        backoff = limits.MEND_BACKOFF_BASE_S * (
            limits.MEND_BACKOFF_FACTOR ** self._restarts[shard]
        )
        time.sleep(backoff)
        self._restarts[shard] += 1
        self.report.restarts += 1
        # The dead worker's inbox holds frames it never consumed —
        # possibly mid-stream. Drop them all; replay re-sends everything
        # past the checkpoint's inbound watermark in order.
        while True:
            try:
                self.inboxes[shard].get_nowait()
            except queue_mod.Empty:
                break
        restart_started = time.monotonic()
        self._spawn(shard, checkpoint)
        for src in sorted(self.plan.in_neighbors(shard)):
            since = checkpoint.transport.expected.get(src, 1) - 1
            self.inboxes[src].put(("replay", shard, since))
        self.report.restart_wall_s.append(time.monotonic() - restart_started)
        return None

    def _check_workers(self, results: dict[int, ShardResult]) -> str | None:
        now = time.monotonic()
        for shard, worker in list(self._procs.items()):
            if shard in results:
                continue
            if not worker.is_alive():
                worker.join()
                error = self._handle_death(shard, worker.exitcode)
                if error is not None:
                    return error
                continue
            hb_at, _ = self._last_hb[shard]
            if now - hb_at > limits.MEND_HEARTBEAT_TIMEOUT_S:
                # Presumed hung (WorkerStall chaos or a real wedge):
                # kill and recover through the same checkpoint path.
                worker.terminate()
                worker.join()
                self.report.stall_kills += 1
                error = self._handle_death(shard, worker.exitcode)
                if error is not None:
                    return error
        return None

    def _broadcast(self, frame: tuple) -> None:
        for queue in self.inboxes.values():
            queue.put(frame)

    def _teardown(self, fast: bool) -> None:
        """Reap the fleet. ``fast`` (failure path) gives workers a short
        grace to see the poison pill, then terminates; either way the
        queues are closed with ``cancel_join_thread`` so coordinator
        teardown never blocks on unflushed feeder threads."""
        grace = 2.0 if fast else limits.SCALE_JOIN_TIMEOUT_S
        for worker in self._procs.values():
            worker.join(timeout=grace)
            if worker.is_alive():
                worker.terminate()
                worker.join()
        for queue in (
            *self.inboxes.values(),
            self.result_queue,
            self.events_queue,
        ):
            queue.close()
            queue.cancel_join_thread()

    # -- run ----------------------------------------------------------------

    def run(self) -> tuple[list[ShardResult], MendReport, MetricsRegistry]:
        for shard in self.shards:
            self._spawn(shard, None)
        results: dict[int, ShardResult] = {}
        error: str | None = None
        deadline = time.monotonic() + limits.SCALE_RESULT_TIMEOUT_S
        try:
            while len(results) < len(self.shards) and error is None:
                self._drain_events()
                error = self._drain_results(results)
                if error is None:
                    error = self._check_workers(results)
                if error is None and time.monotonic() > deadline:
                    error = "worker result timed out (protocol wedge?)"
        finally:
            if error is not None:
                # Fail fast: wake every survivor blocked on its inbox so
                # the whole run tears down in well under a second.
                self._broadcast(("poison",))
                self._teardown(fast=True)
            else:
                self._broadcast(("shutdown",))
                self._teardown(fast=False)
        if error is not None:
            raise SimulationError(f"flexscale process backend: {error}")
        self.report.measured = {
            "deaths": self._deaths,
            "per_shard": {
                shard: result.mend["measured"]
                for shard, result in sorted(results.items())
                if result.mend is not None
            },
        }
        self.report.per_shard = {
            shard: result.mend["deterministic"]
            for shard, result in sorted(results.items())
            if result.mend is not None
        }
        return (
            [results[shard] for shard in sorted(results)],
            self.report,
            self._registry(),
        )

    def _registry(self) -> MetricsRegistry:
        """Supervisor-side FlexScope families (merged into the
        ScaleReport registry alongside the per-shard snapshots)."""
        registry = MetricsRegistry()
        registry.counter(
            "flexnet_mend_crashes_total",
            help="worker-process deaths absorbed by the supervisor",
        ).set(len(self.report.crashes))
        registry.counter(
            "flexnet_mend_restarts_total",
            help="checkpoint restores performed",
        ).set(self.report.restarts)
        registry.counter(
            "flexnet_mend_windows_replayed_total",
            help="protocol windows re-executed after restores",
        ).set(self.report.windows_replayed)
        registry.counter(
            "flexnet_mend_checkpoints_total",
            help="shard checkpoints committed to the supervisor",
        ).set(self.report.checkpoints_committed)
        registry.counter(
            "flexnet_mend_stall_kills_total",
            help="workers killed for heartbeat staleness",
        ).set(self.report.stall_kills)
        registry.detach_collectors()
        return registry


# -- chaos harness ----------------------------------------------------------


@dataclass
class ScaleChaosReport:
    """Three-arm differential outcome behind experiment E23 and
    ``flexnet chaos --scale``: the chaos arm's ``traffic`` section must
    be byte-identical to both the fault-free sharded arm and the
    single-process reference. ``to_dict`` is deterministic — same seed,
    same faults, byte-identical report across repeat runs."""

    shards: int
    fault_lines: tuple[str, ...]
    chaos: object  # ScaleReport
    baseline_traffic: dict
    reference_traffic: dict | None
    divergences: tuple[str, ...]

    def to_dict(self) -> dict:
        out = {
            "shards": self.shards,
            "faults": list(self.fault_lines),
            "divergences": list(self.divergences),
            "chaos": self.chaos.to_dict(),
            "baseline_traffic": self.baseline_traffic,
        }
        if self.reference_traffic is not None:
            out["reference_traffic"] = self.reference_traffic
        return out

    def summary(self) -> str:
        verdict = (
            "byte-identical across all arms"
            if not self.divergences
            else f"{len(self.divergences)} DIVERGENCE(S)"
        )
        lines = [
            f"flexmend chaos [{self.shards} shard(s)]: {verdict}",
            *(f"  fault: {line}" for line in self.fault_lines),
        ]
        mend = self.chaos.mend
        if mend is not None:
            lines.append(mend.summary())
        lines.extend(f"  DIVERGED: {name}" for name in self.divergences)
        return "\n".join(lines)


def run_scale_chaos(
    make_net,
    make_workload,
    shards: int,
    chaos: FaultPlan,
    *,
    seed: int = 2024,
    drain_s: float = 1.0,
    checkpoint_every: int | None = None,
    colocate_below_s: float | None = None,
    reference: bool = True,
) -> ScaleChaosReport:
    """Run the FlexMend differential: a chaos-armed sharded run against
    a fault-free sharded run and (optionally) the single-process
    reference, comparing the deterministic ``traffic`` sections
    byte-for-byte.

    ``make_net`` / ``make_workload`` build a fresh net and injection
    list per arm (runs mutate device state, so arms can never share a
    net); each arm starts from a reset packet-id allocator like every
    seeded scenario runner (:mod:`repro.faults.chaos` precedent).
    """
    import json

    from repro.scale.runner import reference_run, run_sharded

    def canon(traffic: dict) -> str:
        return json.dumps(traffic, sort_keys=True)

    def arm():
        reset_packet_ids()
        return make_net(), list(make_workload())

    reference_traffic: dict | None = None
    if reference:
        net, injections = arm()
        reference_traffic = reference_run(net, injections, drain_s).to_dict()
    net, injections = arm()
    baseline = run_sharded(
        net,
        injections,
        shards,
        backend="process",
        seed=seed,
        drain_s=drain_s,
        colocate_below_s=colocate_below_s,
    )
    net, injections = arm()
    chaos_report = run_sharded(
        net,
        injections,
        shards,
        backend="process",
        seed=seed,
        drain_s=drain_s,
        colocate_below_s=colocate_below_s,
        chaos=chaos,
        checkpoint_every=checkpoint_every,
    )
    divergences = []
    chaos_traffic = canon(chaos_report.traffic_dict())
    if chaos_traffic != canon(baseline.traffic_dict()):
        divergences.append("chaos vs fault-free sharded")
    if reference_traffic is not None and chaos_traffic != canon(reference_traffic):
        divergences.append("chaos vs single-process reference")
    return ScaleChaosReport(
        shards=shards,
        fault_lines=tuple(
            line
            for line in chaos.describe()
            if line.startswith(("worker", "handoff"))
        ),
        chaos=chaos_report,
        baseline_traffic=baseline.traffic_dict(),
        reference_traffic=reference_traffic,
        divergences=tuple(divergences),
    )
