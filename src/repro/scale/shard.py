"""FlexScale shard runtime: one worker's event loop plus the handoff
protocol that keeps sharded runs bit-identical to single-process ones.

Protocol (conservative, Chandy-Misra-Bryant style with windowed null
messages, no global barrier):

* Each shard owns a disjoint set of devices and runs them on a private
  :class:`~repro.simulator.engine.EventLoop`.
* When a packet's next hop belongs to another shard, the owning shard
  ships a :class:`Handoff` carrying the *absolute* arrival timestamp —
  computed by the exact float expression the single-process engine
  would have used (``now + (processing_s + link_latency)``), so no
  rounding can ever diverge.
* After advancing to virtual time *t*, a shard announces a
  :class:`Guarantee` of ``t + lookahead`` to each neighbor, where
  ``lookahead`` is the minimum latency of any link crossing that shard
  boundary: every handoff it will ever send after the announcement
  arrives strictly later than the guarantee. Announcements double as
  null messages — they flow every window even when no packet crosses,
  which is what makes progress deadlock-free on cyclic shard graphs.
* A shard may therefore advance to ``min`` over its in-neighbors'
  guarantees. Because the transport is FIFO per producer (a
  ``multiprocessing.Queue`` feeder thread is serial, and the inline
  backend delivers synchronously), every handoff with arrival ≤ g is
  already buffered when the announcement of g is handled — windows are
  *complete* before they are processed.
* Before each window the buffered handoffs are integrated in the
  canonical order ``(time, packet_id, hop_index)`` and the event loop's
  documented ``(time, seq)`` tie-break preserves that order exactly, so
  the execution order inside a window never depends on queue
  interleaving.

Termination: the driver passes a fixed end horizon chosen past all
activity; guarantees advance by at least one lookahead per window, so
every shard's clock crosses the horizon in finitely many windows. If
any event or handoff outlives the horizon the run *fails loudly*
(:class:`~repro.errors.SimulationError`) rather than silently diverging
from the single-process reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.observe.metrics import MetricsRegistry
from repro.simulator.engine import EventLoop
from repro.simulator.metrics import LatencyStats, RunMetrics
from repro.simulator.network import Network
from repro.simulator.packet import Packet

#: Smallest guarantee increment enforced per window; a zero-lookahead
#: shard pair would never make progress (the planner's co-location rule
#: should make this unreachable, but the protocol refuses to spin).
MIN_LOOKAHEAD_S = 1e-9


@dataclass(frozen=True)
class Handoff:
    """A packet crossing a shard boundary at an exact absolute time."""

    time: float
    packet: Packet
    hops: tuple[str, ...]
    index: int
    src_shard: int

    @property
    def sort_key(self) -> tuple[float, int, int]:
        """Canonical integration order within a window."""
        return (self.time, self.packet.packet_id, self.index)


@dataclass(frozen=True)
class Guarantee:
    """``src_shard`` promises every later handoff arrives after ``time``."""

    src_shard: int
    time: float


@dataclass
class ShardResult:
    """Everything one shard ships back to the coordinator (picklable:
    registries are frozen via ``detach_collectors`` first)."""

    shard_id: int
    metrics: RunMetrics
    digest_count: int
    windows: int
    handoffs_in: int
    handoffs_out: int
    events_executed: int
    registry: MetricsRegistry | None = None
    #: worker CPU seconds (process backend only; measurement-only field,
    #: excluded from every deterministic export).
    cpu_s: float | None = None
    #: FlexMend transport accounting, split into "deterministic" and
    #: "measured" sub-dicts (supervised process backend only).
    mend: dict | None = None


class ShardEngine:
    """One shard's devices, loop, and protocol state.

    Transport-agnostic: the inline backend calls :meth:`deliver`
    directly, the process backend feeds it messages drained from an
    ``mp.Queue``. Drivers repeatedly call :meth:`advance`, flush
    :meth:`take_outbox` / :meth:`guarantees_out` to neighbors, and
    block for deliveries until :meth:`can_advance`.
    """

    def __init__(
        self,
        shard_id: int,
        plan,
        devices: dict,
        end_time: float,
        topology: Network | None = None,
        track_inflight: bool = False,
    ):
        self.shard_id = shard_id
        self.plan = plan
        self.end_time = end_time
        self.loop = EventLoop()
        self.owned = set(plan.devices_on(shard_id))
        self.network = Network(
            loop=self.loop,
            owned=self.owned,
            on_handoff=self._handoff_out,
            track_inflight=track_inflight,
        )
        if topology is not None:
            self.network.adopt_topology(topology)
        for name in sorted(self.owned):
            self.network.add_node(devices[name])
        self._devices = {name: devices[name] for name in self.owned}
        self.metrics = RunMetrics(
            latency=LatencyStats(seed=plan.shard_seed(shard_id))
        )
        self.digest_count = 0
        self.windows = 0
        self.handoffs_in = 0
        self.handoffs_out = 0
        self._clock = 0.0
        self._pending: list[Handoff] = []
        self._outbox: dict[int, list[Handoff]] = {
            dst: [] for dst in plan.out_neighbors(shard_id)
        }
        self._guarantee: dict[int, float] = {
            src: 0.0 for src in plan.in_neighbors(shard_id)
        }

    # -- local simulation ---------------------------------------------------

    def inject(self, packet: Packet, path, at_time: float) -> None:
        """Coordinator-assigned injection (first hop owned by this shard)."""
        self.network.inject(packet, path, at_time, self.metrics, on_done=self._on_done)

    def _on_done(self, packet: Packet) -> None:
        self.digest_count += len(packet.digests)

    def _handoff_out(
        self, packet: Packet, hops: list[str], index: int, at_time: float
    ) -> None:
        dst = self.plan.shard_of(hops[index])
        if dst == self.shard_id:  # pragma: no cover - network owns this check
            raise SimulationError("handoff to own shard")
        self._outbox.setdefault(dst, []).append(
            Handoff(
                time=at_time,
                packet=packet,
                hops=tuple(hops),
                index=index,
                src_shard=self.shard_id,
            )
        )
        self.handoffs_out += 1

    # -- protocol -----------------------------------------------------------

    @property
    def clock(self) -> float:
        return self._clock

    def safe_time(self) -> float:
        """Latest virtual time provably free of future in-handoffs."""
        if not self._guarantee:
            return math.inf
        return min(self._guarantee.values())

    def can_advance(self) -> bool:
        return min(self.safe_time(), self.end_time) > self._clock or self.finished()

    def deliver(self, message: Handoff | Guarantee) -> None:
        """Accept one in-message (any transport, FIFO per producer)."""
        if isinstance(message, Handoff):
            self._pending.append(message)
            self.handoffs_in += 1
        else:
            previous = self._guarantee.get(message.src_shard, 0.0)
            self._guarantee[message.src_shard] = max(previous, message.time)

    def advance(self) -> float:
        """Run one window: integrate safe handoffs, process local events
        up to the window bound, and queue outgoing guarantees."""
        bound = min(self.safe_time(), self.end_time)
        if bound > self._clock or self.windows == 0:
            ready = sorted(
                (h for h in self._pending if h.time <= bound),
                key=lambda h: h.sort_key,
            )
            self._pending = [h for h in self._pending if h.time > bound]
            for handoff in ready:
                self.network.receive(
                    handoff.packet,
                    list(handoff.hops),
                    handoff.index,
                    handoff.time,
                    self.metrics,
                    on_done=self._on_done,
                )
            self.loop.run_until(bound)
            self._clock = bound
            self.windows += 1
            # FlexBatch invariant: batch state (the executor memo)
            # amortizes within a protocol window but never across one —
            # flushing here keeps the byte-identity argument purely
            # per-window, like every other piece of shard state.
            for device in self._devices.values():
                device.reset_batch_window()
        return self._clock

    def guarantees_out(self) -> dict[int, Guarantee]:
        """Announcements for each out-neighbor after :meth:`advance`."""
        out: dict[int, Guarantee] = {}
        for dst in self.plan.out_neighbors(self.shard_id):
            lookahead = max(
                self.plan.lookahead_s[(self.shard_id, dst)], MIN_LOOKAHEAD_S
            )
            out[dst] = Guarantee(src_shard=self.shard_id, time=self._clock + lookahead)
        return out

    def take_outbox(self) -> dict[int, list[Handoff]]:
        """Drain buffered out-handoffs (per destination shard)."""
        taken = {dst: msgs for dst, msgs in self._outbox.items() if msgs}
        for dst in taken:
            self._outbox[dst] = []
        return taken

    def finished(self) -> bool:
        """True once no event at or before the horizon can still exist
        anywhere upstream of this shard."""
        return self._clock >= self.end_time and self.safe_time() >= self.end_time

    # -- FlexMend checkpoints ----------------------------------------------

    def checkpoint(self):
        """Snapshot this shard as plain data at a window boundary
        (requires ``track_inflight=True``; see :mod:`repro.scale.mend`)."""
        from repro.scale.mend import checkpoint_engine

        return checkpoint_engine(self)

    def restore(self, ckpt) -> None:
        """Rebuild this (fresh, un-injected) engine from a checkpoint."""
        from repro.scale.mend import restore_engine

        restore_engine(self, ckpt)

    # -- result -------------------------------------------------------------

    def _collect_registry(self) -> MetricsRegistry:
        """Per-shard FlexScope snapshot (same family names the Observer
        exports, so merged fleet output is indistinguishable from a
        single-process scrape), frozen for cross-process shipping."""
        registry = MetricsRegistry()
        for name in sorted(self._devices):
            stats = self._devices[name].stats
            for version in sorted(stats.per_version):
                registry.counter(
                    "flexnet_device_packets_total",
                    help="packets processed per device and program version",
                    device=name,
                    version=version,
                ).set(stats.per_version[version])
            registry.counter(
                "flexnet_device_dropped_total", device=name
            ).set(stats.dropped_by_program)
            registry.counter("flexnet_device_ops_total", device=name).set(
                stats.total_ops
            )
            registry.counter(
                "flexnet_device_queue_drops_total", device=name
            ).set(stats.queue_drops)
            batch_stats = self._devices[name].batch_stats()
            if batch_stats is not None:
                registry.counter(
                    "flexnet_batch_packets_total",
                    help="packets routed through the FlexBatch backend",
                    device=name,
                ).set(batch_stats.packets)
                registry.counter(
                    "flexnet_batch_batches_total", device=name
                ).set(batch_stats.batches)
                registry.counter(
                    "flexnet_batch_memo_hits_total", device=name
                ).set(batch_stats.memo_hits)
                registry.counter(
                    "flexnet_batch_fallback_packets_total", device=name
                ).set(batch_stats.fallback_packets)
                registry.gauge(
                    "flexnet_batch_occupancy",
                    help="mean packets per batch",
                    device=name,
                ).set(batch_stats.occupancy)
                registry.gauge(
                    "flexnet_batch_max_batch_size", device=name
                ).set(batch_stats.max_batch_size)
        registry.counter(
            "flexnet_telemetry_digests_total",
            help="digest records ever ingested",
        ).set(self.digest_count)
        registry.counter(
            "flexnet_scale_windows_total",
            help="protocol windows executed per shard",
            shard=self.shard_id,
        ).set(self.windows)
        registry.counter(
            "flexnet_scale_handoffs_total", shard=self.shard_id, direction="in"
        ).set(self.handoffs_in)
        registry.counter(
            "flexnet_scale_handoffs_total", shard=self.shard_id, direction="out"
        ).set(self.handoffs_out)
        registry.detach_collectors()
        return registry

    def result(self) -> ShardResult:
        """Validate quiescence and package the shard's contribution."""
        if self._pending:
            worst = max(h.time for h in self._pending)
            raise SimulationError(
                f"shard {self.shard_id}: {len(self._pending)} handoff(s) beyond "
                f"the end horizon {self.end_time} s (latest {worst} s) — "
                f"increase drain_s so every packet finishes inside the run"
            )
        if self.loop.pending():
            raise SimulationError(
                f"shard {self.shard_id}: {self.loop.pending()} event(s) beyond "
                f"the end horizon {self.end_time} s — increase drain_s"
            )
        return ShardResult(
            shard_id=self.shard_id,
            metrics=self.metrics,
            digest_count=self.digest_count,
            windows=self.windows,
            handoffs_in=self.handoffs_in,
            handoffs_out=self.handoffs_out,
            events_executed=self.loop._sequence,  # noqa: SLF001 - diagnostic only
            registry=self._collect_registry(),
        )


def step_inline(engines: dict[int, "ShardEngine"]) -> None:
    """Advance every shard one window and deliver synchronously — the
    single-process backend (tests, property instrumentation). Message
    delivery order (handoffs, then the guarantee, per source) matches
    the FIFO contract the process transport provides."""
    order = sorted(engines)
    for shard_id in order:
        engines[shard_id].advance()
    for shard_id in order:
        engine = engines[shard_id]
        for dst, handoffs in sorted(engine.take_outbox().items()):
            for handoff in handoffs:
                engines[dst].deliver(handoff)
        for dst, guarantee in sorted(engine.guarantees_out().items()):
            engines[dst].deliver(guarantee)


def run_inline(engines: dict[int, "ShardEngine"], max_windows: int = 1_000_000) -> None:
    """Drive inline shards to quiescence at the end horizon."""
    for _ in range(max_windows):
        if all(engine.finished() for engine in engines.values()):
            return
        step_inline(engines)
    raise SimulationError(
        f"inline shard run did not quiesce within {max_windows} windows"
    )
