#!/usr/bin/env python
"""Live infrastructure customization (§1.1): swap CC algorithms end to end.

Deploying a transport/congestion-control change touches every tier:
ECN marking at the switch, window logic at the host side. This example
shows the compiler distributing one logical delta *vertically* (the
marking function lands on the switch; the window function is too big
for a pipeline and automatically lands on a NIC/host), then swapping
DCTCP-style marking for HPCC-style precise feedback at runtime.

Run:  python examples/live_cc_swap.py
"""

from repro import FlexNet
from repro.apps import base_infrastructure, dctcp_delta, swap_cc_delta


def tier_of(net: FlexNet, element: str) -> str:
    device = net.datapath.plan.placement[element]
    return f"{device} ({net.controller.devices[device].target.tier})"


def main() -> None:
    net = FlexNet.standard()
    net.install(base_infrastructure())

    print("Deploying DCTCP-style congestion control at runtime...")
    outcome = net.update(dctcp_delta(ecn_threshold=20))
    print(f"  transition took {outcome.report.duration_s * 1000:.0f} ms (hitless)")
    print("  vertical placement chosen by the compiler:")
    print(f"    ecn_mark   -> {tier_of(net, 'ecn_mark')}   (per-packet marking)")
    print(f"    cc_window  -> {tier_of(net, 'cc_window')}  (window arithmetic)")
    print(f"    cc_windows -> {tier_of(net, 'cc_windows')}  (per-dest state)")

    net.loop.run_until(net.loop.now + 2.0)

    # Exercise the datapath: congested packets get marked, windows react.
    report = net.run_traffic(rate_pps=500, duration_s=1.0)
    assert report.metrics.lost_by_infrastructure == 0

    print("\nWorkload mix changed — swapping to HPCC-style precise feedback...")
    outcome = net.update(swap_cc_delta("hpcc"))
    print(
        f"  swap applied as one atomic delta "
        f"({len(outcome.result.changes.added)} elements replaced, "
        f"{outcome.report.duration_s * 1000:.0f} ms window)"
    )
    net.loop.run_until(net.loop.now + 2.0)
    report = net.run_traffic(rate_pps=500, duration_s=1.0)
    assert report.metrics.lost_by_infrastructure == 0
    print("\nBoth deployments served live traffic with zero loss.")


if __name__ == "__main__":
    main()
