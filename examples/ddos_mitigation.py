#!/usr/bin/env python
"""Real-time security (§1.1): summon, scale, and retire a DDoS defense.

A SYN flood ramps up against a victim. The always-on monitor digests
SYNs toward the controller; when the per-destination rate crosses the
attack threshold the :class:`DdosDefender` control loop *summons* the
defense into the data plane (a runtime delta — no reflash, no loss),
scales its counter map with attack volume, and retires it once the
attack subsides, releasing the resources.

Run:  python examples/ddos_mitigation.py
"""

from repro import FlexNet
from repro.apps import base_infrastructure, syn_monitor_delta
from repro.apps.ddos import DdosDefender, DefenderConfig
from repro.simulator.flowgen import constant_rate, merge_streams, syn_flood

VICTIM = 0x0A0000FE


def main() -> None:
    net = FlexNet.standard()
    net.install(base_infrastructure())
    net.update(syn_monitor_delta())  # the always-on detection signal
    net.loop.run_until(net.loop.now + 2.0)
    print("Base program + SYN monitor deployed.")

    defender = DdosDefender(
        net.controller,
        DefenderConfig(
            attack_threshold_pps=300.0,
            quiet_threshold_pps=50.0,
            check_interval_s=0.25,
            quiet_intervals_to_retire=4,
            drop_threshold=64,
        ),
    )
    defender.start()

    start = net.loop.now
    benign = constant_rate(100, 16.0, start_s=start, dst_ip=0x0A000002)
    attack = syn_flood(
        peak_pps=3000,
        ramp_s=2.0,
        hold_s=5.0,
        decay_s=2.0,
        victim_ip=VICTIM,
        start_s=start + 2.0,
        seed=17,
    )
    print("Launching SYN flood (ramp 2s, hold 5s at 3000 pps, decay 2s)...")
    report = net.run_traffic(packets=merge_streams(benign, attack), extra_time_s=6.0)
    defender.stop()

    log = defender.log
    print(f"\nDefense deployed at   t={log.deployed_at:.2f}s (attack began t=2.0s)")
    for when, entries in log.scale_events:
        print(f"  counter map sized to {entries} entries at t={when:.2f}s")
    print(f"Defense retired at    t={log.retired_at:.2f}s (attack ended t=11.0s)")

    metrics = report.metrics
    print(f"\nPackets: {metrics.sent} sent")
    print(f"  dropped by defense:   {metrics.dropped_by_program}")
    print(f"  delivered:            {metrics.delivered}")
    print(f"  infrastructure loss:  {metrics.lost_by_infrastructure}  <- hitless throughout")
    assert log.deployed_at is not None and log.retired_at is not None
    assert metrics.lost_by_infrastructure == 0
    assert metrics.dropped_by_program > 0


if __name__ == "__main__":
    main()
