#!/usr/bin/env python
"""Dynamic apps (§1.1): operator queries added and removed at runtime.

The DynamiQ contrast: systems built on compile-time programmability must
pre-allocate a query-operator pool and map queries onto it; FlexNet
deploys each query as a right-sized runtime delta and retires it with an
exact refund. This example runs an investigation workflow: a broad
per-destination query finds a hot service, a narrower per-port query
drills in, and both are retired when the incident closes.

Run:  python examples/dynamic_monitoring.py
"""

from repro import FlexNet
from repro.apps import base_infrastructure
from repro.apps.monitoring import QueryManager, QuerySpec
from repro.simulator.flowgen import constant_rate, merge_streams

HOT_SERVICE = 0x0A0000AA


def main() -> None:
    net = FlexNet.standard()
    net.install(base_infrastructure())
    manager = QueryManager(net.controller)
    print("Network live. An operator starts investigating a slowdown...")

    # Phase 1: broad per-destination query, deployed at runtime.
    manager.add(QuerySpec(name="by_dst", key_field="ipv4.dst", width=4096))
    net.loop.run_until(net.loop.now + 2.0)
    start = net.loop.now
    net.run_traffic(
        packets=merge_streams(
            constant_rate(400, 2.0, start_s=start, dst_ip=HOT_SERVICE, dst_port=443),
            constant_rate(50, 2.0, start_s=start, dst_ip=0x0A000001, src_ip=9),
        ),
        extra_time_s=2.0,
    )
    hot = manager.heavy_hitters("by_dst", [HOT_SERVICE, 0x0A000001], threshold=300)
    print(f"Phase 1 (by destination): heavy hitter(s) = {[hex(h) for h in hot]}")

    # Phase 2: drill into ports for the hot service.
    manager.add(QuerySpec(name="by_port", key_field="tcp.dport", width=1024))
    net.loop.run_until(net.loop.now + 2.0)
    start = net.loop.now
    net.run_traffic(
        packets=list(
            constant_rate(400, 1.0, start_s=start, dst_ip=HOT_SERVICE, dst_port=443)
        ),
        extra_time_s=2.0,
    )
    print(f"Phase 2 (by port): port 443 count ~= {manager.estimate('by_port', 443)}")

    # Incident closed: retire both queries; their exact footprint returns.
    elements_during = len(net.program.element_names)
    manager.remove("by_port")
    net.loop.run_until(net.loop.now + 2.0)
    manager.remove("by_dst")
    net.loop.run_until(net.loop.now + 2.0)
    elements_after = len(net.program.element_names)
    print(
        f"Queries retired: program elements {elements_during} -> {elements_after} "
        "(investigation left no footprint)"
    )
    assert hot == [HOT_SERVICE]
    assert manager.active == []


if __name__ == "__main__":
    main()
