#!/usr/bin/env python
"""Quickstart: stand up a runtime programmable network in ~30 lines.

Builds the canonical host-NIC-switch-NIC-host slice, installs the
operator's infrastructure program, serves live traffic, and injects a
stateful firewall *at runtime* — zero packets lost, per-packet
consistency preserved.

Run:  python examples/quickstart.py
"""

from repro import FlexNet
from repro.apps import base_infrastructure, firewall_delta
from repro.runtime.consistency import ConsistencyLevel


def main() -> None:
    # 1. Topology: the standard 5-hop slice (host - NIC - switch - NIC - host).
    net = FlexNet.standard()

    # 2. Admission + compilation + cold install of the base program.
    plan = net.install(base_infrastructure())
    print("Infrastructure placed:")
    for element, device in sorted(plan.placement.items()):
        print(f"  {element:14s} -> {device}")
    print(f"Estimated per-packet latency: {plan.estimated_latency_ns / 1000:.1f} us")

    # 3. Schedule a runtime change mid-traffic: inject a stateful firewall.
    def inject_firewall() -> None:
        outcome = net.update(firewall_delta(), consistency=ConsistencyLevel.PER_PACKET_PATH)
        report = outcome.report
        print(
            f"\n[t={report.started_at:.2f}s] firewall injected hitlessly: "
            f"{outcome.result.reconfig.added_elements} elements added, "
            f"transition window {report.duration_s * 1000:.0f} ms"
        )

    net.schedule(1.0, inject_firewall)

    # 4. Serve traffic across the reconfiguration.
    report = net.run_traffic(
        rate_pps=2000,
        duration_s=2.5,
        consistency_level=ConsistencyLevel.PER_PACKET_PATH,
        extra_time_s=2.0,
    )

    metrics = report.metrics
    print(f"\nTraffic: {metrics.sent} packets sent")
    print(f"  delivered:            {metrics.delivered}")
    print(f"  lost to infrastructure: {metrics.lost_by_infrastructure}  <- hitless!")
    print(f"  mean latency:         {metrics.latency.mean * 1e6:.1f} us")
    consistency = report.consistency.report()
    print(
        f"  path consistency:     "
        f"{'HELD' if consistency.holds else 'VIOLATED'} "
        f"({consistency.packets_checked} packets checked)"
    )
    versions = metrics.versions_on("sw1")
    print(f"  program versions seen on sw1: {versions}")
    assert metrics.lost_by_infrastructure == 0
    assert consistency.holds


if __name__ == "__main__":
    main()
