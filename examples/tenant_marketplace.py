#!/usr/bin/env python
"""Tenant extensions (§1.1): dynamic multi-tenant injection with isolation.

Tenants arrive with their own datapath extensions (here: a per-source
hit counter and a NAT-ish rewrite), pass access-control validation, get
VLAN-isolated, and are trimmed out when they depart — all at runtime,
while the infrastructure keeps forwarding.

Run:  python examples/tenant_marketplace.py
"""

from repro import FlexNet
from repro.apps import STANDARD_HEADERS, base_infrastructure
from repro.lang import builder as b
from repro.lang.builder import ProgramBuilder
from repro.lang.composition import Permission, TenantSpec
from repro.simulator.flowgen import constant_rate, merge_streams


def counting_extension() -> object:
    program = ProgramBuilder("counter", owner="tenant")
    for header, fields in STANDARD_HEADERS.items():
        program.header(header, **fields)
    program.map("hits", keys=["ipv4.src"], value_type="u32", max_entries=1024)
    program.function(
        "watch",
        [
            b.let("n", "u32", b.map_get("hits", "ipv4.src")),
            b.map_put("hits", "ipv4.src", b.binop("+", "n", 1)),
        ],
    )
    program.apply("watch")
    return program.build()


def stamping_extension() -> object:
    program = ProgramBuilder("stamper", owner="tenant")
    for header, fields in STANDARD_HEADERS.items():
        program.header(header, **fields)
    program.function("stamp", [b.assign("meta.tenant_tag", 2)])
    program.apply("stamp")
    return program.build()


def main() -> None:
    net = FlexNet.standard()
    net.install(base_infrastructure())
    print("Infrastructure live. Tenants arriving...")

    alpha = TenantSpec(name="alpha", vlan_id=100, permission=Permission())
    beta = TenantSpec(name="beta", vlan_id=200, permission=Permission())

    net.admit_tenant(alpha, counting_extension())
    net.loop.run_until(net.loop.now + 1.5)
    net.admit_tenant(beta, stamping_extension())
    net.loop.run_until(net.loop.now + 1.5)
    print(f"  tenants admitted: {net.controller.tenant_names}")
    print(f"  composed program elements: {len(net.program.element_names)}")

    # Traffic on both VLANs plus unowned traffic.
    start = net.loop.now
    report = net.run_traffic(
        packets=merge_streams(
            constant_rate(200, 2.0, start_s=start, vlan_id=100, src_ip=0x01010101),
            constant_rate(200, 2.0, start_s=start, vlan_id=200, src_ip=0x02020202),
            constant_rate(200, 2.0, start_s=start, vlan_id=0, src_ip=0x03030303),
        ),
        extra_time_s=2.0,
    )
    assert report.metrics.lost_by_infrastructure == 0

    hits = net.device("sw1").active_instance.maps.state("alpha__hits")
    print("\nIsolation check (alpha's counter map):")
    print(f"  alpha traffic counted:   {hits.get((0x01010101,))} (expected 400)")
    print(f"  beta traffic invisible:  {hits.get((0x02020202,))} (expected 0)")
    assert hits.get((0x01010101,)) == 400
    assert hits.get((0x02020202,)) == 0

    print("\nTenant alpha departs...")
    outcome = net.evict_tenant("alpha")
    print(f"  trimmed elements: {sorted(outcome.result.changes.removed)}")
    net.loop.run_until(net.loop.now + 2.0)
    assert not net.program.has_map("alpha__hits")
    print(f"  remaining tenants: {net.controller.tenant_names}")
    print("\nArrivals, isolation, and departures all happened at runtime.")


if __name__ == "__main__":
    main()
