"""E3 — Real-time security (§1.1).

Claims: defenses "can be summoned into the network on-the-fly and
retired when attacks subside", they are "elastic, capable of scaling
... based on changing attack strengths", and reaction is far faster
than any reflash cycle. Expected shape: the FlexNet defense deploys
within ~1 s of the detection threshold, absorbs most attack traffic in
the data plane, scales its state with attack volume, and retires after
quiet time — while the compile-time baseline's reflash leaves the
victim exposed for its whole drain window (and loses benign traffic).
"""


from benchmarks.harness import fmt, print_table

from repro.apps import base_infrastructure, syn_monitor_delta
from repro.apps.ddos import DdosDefender, DefenderConfig, syn_defense_delta
from repro.baselines.compile_time import CompileTimeNetwork
from repro.core.flexnet import FlexNet
from repro.simulator.flowgen import constant_rate, merge_streams, syn_flood

VICTIM = 0x0A0000FE
ATTACK_START = 4.0


def flexnet_run() -> dict:
    net = FlexNet.standard()
    net.install(base_infrastructure())
    net.update(syn_monitor_delta())
    net.loop.run_until(net.loop.now + 2.0)

    defender = DdosDefender(
        net.controller,
        DefenderConfig(
            attack_threshold_pps=300.0,
            quiet_threshold_pps=50.0,
            check_interval_s=0.25,
            quiet_intervals_to_retire=4,
            base_counter_entries=2048,
        ),
    )
    defender.start()
    start = net.loop.now
    benign = constant_rate(100, 18.0, start_s=start, dst_ip=0x0A000002)
    attack = syn_flood(
        4000, ramp_s=2.0, hold_s=6.0, decay_s=2.0, victim_ip=VICTIM,
        start_s=start + ATTACK_START - 2.0, seed=29,
    )
    report = net.run_traffic(packets=merge_streams(benign, attack), extra_time_s=6.0)
    defender.stop()
    log = defender.log
    return {
        "deployed_at": log.deployed_at - start,
        "retired_at": log.retired_at - start if log.retired_at else None,
        "scale_events": [(round(t - start, 2), n) for t, n in log.scale_events],
        "dropped": report.metrics.dropped_by_program,
        "delivered": report.metrics.delivered,
        "lost": report.metrics.lost_by_infrastructure,
        "sent": report.metrics.sent,
    }


def baseline_run() -> dict:
    baseline = CompileTimeNetwork.standard()
    baseline.install(base_infrastructure())
    # The operator reacts at the same detection instant but must reflash.
    detection_time = ATTACK_START + 0.5
    baseline.loop.schedule_at(
        detection_time, lambda: baseline.update(syn_defense_delta(threshold=64))
    )
    benign = constant_rate(100, 18.0, dst_ip=0x0A000002)
    attack = syn_flood(
        4000, ramp_s=2.0, hold_s=6.0, decay_s=2.0, victim_ip=VICTIM,
        start_s=ATTACK_START - 2.0, seed=29,
    )
    metrics = baseline.run_traffic(merge_streams(benign, attack), extra_time_s=6.0)
    return {
        "defense_active_at": baseline.reflashes[0].available_again,
        "lost": metrics.lost_by_infrastructure,
        "dropped": metrics.dropped_by_program,
        "sent": metrics.sent,
    }


def run_experiment():
    return {"flexnet": flexnet_run(), "baseline": baseline_run()}


def test_e3_security_response(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    flex, base = results["flexnet"], results["baseline"]
    rows = [
        ["defense active (s after run start)", fmt(flex["deployed_at"]),
         fmt(base["defense_active_at"])],
        ["attack packets dropped in data plane", flex["dropped"], base["dropped"]],
        ["benign+attack packets lost to infrastructure", flex["lost"], base["lost"]],
        ["defense retired after attack", fmt(flex["retired_at"]), "never (baked in)"],
        ["elastic scale events", len(flex["scale_events"]), 0],
    ]
    print_table(
        "E3: SYN-flood response — runtime-summoned defense vs reflash",
        ["metric", "FlexNet", "compile-time"],
        rows,
    )
    # Defense summoned promptly once the threshold trips, and well before
    # the baseline's reflash completes.
    assert flex["deployed_at"] < base["defense_active_at"]
    # Zero collateral loss vs a full drain window of loss.
    assert flex["lost"] == 0
    assert base["lost"] > 1000
    # Elasticity: at least the initial sizing event; scaling grows with volume.
    assert flex["scale_events"]
    # Retirement happened (resources released).
    assert flex["retired_at"] is not None
