"""E8 — Performance/energy optimization over fungible resources (§3.3).

Claims: (a) with fungible resources the compiler can optimize "for
alternative goals (e.g., performance, energy) even if they come with
resource overheads"; (b) "merging two match/action tables ... will lead
to increased memory usage due to a table 'cross product', but it saves
one table lookup time and reduces latency". Expected shape: the three
objectives trace a Pareto spread (latency plan fastest, energy plan
lowest power, balanced in between); the table merge trades a large
memory multiplier for a measurable latency saving.
"""


from benchmarks.harness import fmt, print_table

from repro.apps.base import base_infrastructure, standard_builder
from repro.compiler.optimizer import TableMerger
from repro.compiler.placement import Objective, ObjectiveKind, PlacementEngine
from repro.lang import builder as b
from repro.lang.analyzer import certify
from repro.targets import drmt_switch

from tests.conftest import make_standard_slice


def objective_sweep():
    program = base_infrastructure()
    certificate = certify(program)
    plans = {}
    for kind in ObjectiveKind:
        engine = PlacementEngine(Objective(kind))
        plans[kind.value] = engine.compile(program, certificate, make_standard_slice())
    return plans


def mergeable_program():
    program = standard_builder("merge_bench")
    program.action("nop", [b.call("no_op")])
    program.action("fwd", [b.call("set_port", "p")], params=[("p", "u16")])
    program.table("vlan_map", keys=["ethernet.dst"], actions=["nop"], size=256,
                  default="nop")
    program.table("next_hop", keys=["ipv4.dst"], actions=["fwd", "nop"], size=512,
                  default="nop")
    program.apply("vlan_map", "next_hop")
    return program.build()


def merge_study():
    merger = TableMerger()
    program = mergeable_program()
    target = drmt_switch("sw")
    candidate = merger.candidates(program)[0]
    evaluation = merger.evaluate(program, candidate, target)
    merged = merger.apply(program, candidate)
    ops_before = certify(program).max_packet_ops
    ops_after = certify(merged).max_packet_ops
    return {
        "evaluation": evaluation,
        "ops_before": ops_before,
        "ops_after": ops_after,
    }


def run_experiment():
    return {"plans": objective_sweep(), "merge": merge_study()}


def test_e8_objective_tradeoffs(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    plans = results["plans"]
    rows = [
        [
            kind,
            ", ".join(sorted(set(plan.placement.values()))),
            fmt(plan.estimated_latency_ns / 1000),
            fmt(plan.estimated_energy_nj),
            fmt(plan.estimated_idle_power_w),
        ]
        for kind, plan in plans.items()
    ]
    print_table(
        "E8: placement objectives — the fungibility-enabled trade space",
        ["objective", "devices", "latency (us)", "dyn energy (nJ/pkt)", "idle power (W)"],
        rows,
    )
    latency = plans["latency"]
    energy = plans["energy"]
    assert latency.estimated_latency_ns <= energy.estimated_latency_ns
    assert energy.estimated_idle_power_w < latency.estimated_idle_power_w

    merge = results["merge"]
    evaluation = merge["evaluation"]
    print_table(
        "E8b: table merge — cross-product memory vs lookup latency",
        ["metric", "before merge", "after merge"],
        [
            ["entries", evaluation.entries_before, evaluation.entries_after],
            ["memory (KB)", fmt(evaluation.memory_before_kb),
             fmt(evaluation.memory_after_kb)],
            ["certified packet ops", merge["ops_before"], merge["ops_after"]],
            ["lookups on hot path", 2, 1],
        ],
    )
    # The paper's trade: memory grows multiplicatively...
    assert evaluation.memory_after_kb > 10 * evaluation.memory_before_kb
    # ...latency (certified ops) shrinks.
    assert merge["ops_after"] < merge["ops_before"]
