"""E16 — Fault injection and recovery during runtime reconfiguration.

The paper's runtime-reconfiguration promise (§2-§3) is only credible if
it survives the unhappy path. This experiment crashes a switch
*mid-delta* (inside its transition window) under a 1% lossy control
channel and contrasts:

* **recovery on** — retry-with-backoff on control messages, write-ahead
  journal, resume-on-restart: zero packet-inconsistent forwards, every
  updated device converges on the target version, and convergence is
  bounded by restart + backoff budget;
* **recovery off** — the crash freezes the cut-over half-applied: the
  switch restarts *stranded* in mixed old/new state and keeps forwarding
  packets inconsistently for the rest of the run.

Both runs are driven by the same seeded ``FaultPlan``; the experiment
also asserts bitwise reproducibility (two identical recovery runs).
"""

from benchmarks.harness import print_table

from repro.apps import base_infrastructure, firewall_delta
from repro.apps.nat import nat_delta
from repro.faults import ChannelFault, DeviceCrash, FaultPlan, RetryPolicy, run_chaos

RATE_PPS = 1000
DURATION_S = 10.0
UPDATE_AT_S = 5.0
CRASH_AT_S = 5.2  # inside sw1's transition window (~[5.0, 5.47])
RESTART_AFTER_S = 1.0


def fault_plan() -> FaultPlan:
    return FaultPlan(
        seed=11,
        crashes=(
            DeviceCrash(device="sw1", at_s=CRASH_AT_S, restart_after_s=RESTART_AFTER_S),
        ),
        channel=ChannelFault(drop_probability=0.01),
    )


def spread_deployment(net) -> None:
    """Host elements on nic1 as well as sw1 so path-level consistency is
    observable (a single hosting device can never show a mixed path)."""
    net.controller.deploy_app("flexnet://infra/nat", nat_delta(size=512))
    net.controller.migrate_app("flexnet://infra/nat", "nic1")


def chaos_run(recovery: bool):
    return run_chaos(
        base_infrastructure(),
        firewall_delta(),
        fault_plan(),
        recovery=recovery,
        rate_pps=RATE_PPS,
        duration_s=DURATION_S,
        update_at_s=UPDATE_AT_S,
        setup=spread_deployment,
    )


def run_experiment():
    return {
        "recovery": chaos_run(recovery=True),
        "recovery_repeat": chaos_run(recovery=True),
        "baseline": chaos_run(recovery=False),
    }


def test_e16_fault_recovery(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    recovery = results["recovery"]
    repeat = results["recovery_repeat"]
    baseline = results["baseline"]

    rows = []
    for label, report in (("recovery on", recovery), ("recovery off", baseline)):
        rows.append(
            [
                label,
                report.sent,
                report.lost,
                report.violations,
                ", ".join(report.stranded) or "-",
                "yes" if report.converged else "NO",
                (
                    f"{report.convergence_time_s:.2f}s"
                    if report.convergence_time_s is not None
                    else "never"
                ),
            ]
        )
    print_table(
        "E16: crash mid-delta + 1% control loss during a live firewall "
        f"injection ({RATE_PPS} pps, {DURATION_S:.0f}s)",
        ["mode", "sent", "lost", "inconsistent", "stranded", "converged", "convergence"],
        rows,
    )

    # The crash must actually land inside sw1's transition window —
    # otherwise the scenario degenerates to a clean restart.
    frozen = [e for e in recovery.events if e["kind"] == "crash" and "mid-delta" in e["detail"]]
    assert frozen, recovery.events

    # Recovery: no packet-inconsistent forwards, everything converges.
    assert recovery.violations == 0
    assert recovery.converged
    assert not recovery.stranded
    assert recovery.resumed == 1
    assert recovery.crashes == 1 and recovery.restarts == 1
    # Journal is clean: every entry resolved, the crashed window by resume.
    assert all(entry["state"] != "pending" for entry in recovery.journal)
    assert any(entry["resolution"] == "resume" for entry in recovery.journal)
    # Convergence is bounded: restart delay plus the retry budget.
    bound = RESTART_AFTER_S + RetryPolicy().total_backoff_s() + 0.5
    assert recovery.convergence_time_s is not None
    assert recovery.convergence_time_s <= bound
    # Loss is exactly the crash outage (no loss from reconfiguration).
    assert recovery.lost <= RATE_PPS * RESTART_AFTER_S * 1.1

    # Reproducibility: identical seeded runs produce identical reports.
    assert recovery.to_dict() == repeat.to_dict()

    # Baseline: the switch restarts stranded mid-delta and keeps
    # forwarding a mixed old/new split — real consistency violations.
    assert baseline.stranded == ["sw1"]
    assert baseline.violations > 0
    assert not baseline.converged
    assert baseline.convergence_time_s is None
    # The stranded journal entry is still PENDING — recovery never ran.
    assert any(
        entry["device"] == "sw1" and entry["state"] == "pending"
        for entry in baseline.journal
    )
