"""E23 — FlexMend fault-tolerant sharding: determinism through crashes.

E20 established that sharded execution reproduces the single-process
traffic report byte-for-byte. This experiment holds that identity
*through injected worker-process faults*: on the 4-pod composed
pipeline at 4 shards, two workers are killed mid-run (``os._exit`` at a
window boundary) while every shard also loses 10% and duplicates 5% of
its handoff batches. The FlexMend supervisor restores the dead workers
from their windowed checkpoints, in-neighbors replay the sequenced
handoff stream past the committed watermark, and the run completes.

Three claims are gated:

* **Identity through faults** — the chaos arm's traffic report is
  byte-identical to the fault-free sharded arm *and* to the
  single-process reference (0 divergences).
* **The faults actually fired** — both crashes were absorbed (2
  restarts recorded with their windows), and drops/dups hit the
  transport (recovered via NACK/retransmit and sequence dedup).
* **Report determinism** — a same-seed repeat of the chaos arm yields
  a byte-identical deterministic report (crash sites, restart counts,
  replayed windows, per-shard transport counters); only wall-clock
  measurements may vary.

The run writes ``BENCH_e23.json`` at the repo root (CI's bench-smoke
step also drives ``flexnet chaos --scale``).
"""

from __future__ import annotations

import json
import pathlib
import time

from benchmarks.harness import fmt, print_table

from repro.faults import FaultPlan, HandoffDrop, HandoffDup, WorkerCrash
from repro.scale import e20_net, e20_workload, run_scale_chaos, run_sharded
from repro.simulator.packet import reset_packet_ids

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_e23.json"

PODS = 4
SHARDS = 4
PACKETS = 1500
RATE_PPS = 50_000.0
WORKLOAD_SEED = 7
PLAN_SEED = 11
CHAOS_SEED = 11
DRAIN_S = 0.01
CRASHES = (WorkerCrash(shard=0, window=6), WorkerCrash(shard=2, window=10))
DROP_P = 0.10
DUP_P = 0.05


def fault_plan() -> FaultPlan:
    return FaultPlan(
        seed=CHAOS_SEED,
        worker_crashes=CRASHES,
        handoff_drops=tuple(
            HandoffDrop(shard=shard, probability=DROP_P) for shard in range(SHARDS)
        ),
        handoff_dups=tuple(
            HandoffDup(shard=shard, probability=DUP_P) for shard in range(SHARDS)
        ),
    )


def make_net():
    return e20_net(pods=PODS)


def make_workload():
    return e20_workload(PACKETS, rate_pps=RATE_PPS, seed=WORKLOAD_SEED)


def canon(data: dict) -> str:
    return json.dumps(data, sort_keys=True)


def run_experiment() -> dict:
    wall_start = time.perf_counter()
    outcome = run_scale_chaos(
        make_net,
        make_workload,
        SHARDS,
        fault_plan(),
        seed=PLAN_SEED,
        drain_s=DRAIN_S,
    )
    chaos_wall_s = time.perf_counter() - wall_start

    # Same-seed repeat of the chaos arm: the deterministic report —
    # traffic, sharding, and the mend section — must be byte-identical.
    reset_packet_ids()
    repeat = run_sharded(
        make_net(),
        make_workload(),
        SHARDS,
        backend="process",
        seed=PLAN_SEED,
        drain_s=DRAIN_S,
        chaos=fault_plan(),
    )
    repeat_identical = canon(repeat.to_dict()) == canon(outcome.chaos.to_dict())

    mend = outcome.chaos.mend
    fault_drops = sum(
        counters["fault_drops"] for counters in mend.per_shard.values()
    )
    fault_dups = sum(
        counters["fault_dups"] for counters in mend.per_shard.values()
    )
    return {
        "pods": PODS,
        "shards": SHARDS,
        "packets": PACKETS,
        "rate_pps": RATE_PPS,
        "workload_seed": WORKLOAD_SEED,
        "plan_seed": PLAN_SEED,
        "chaos_seed": CHAOS_SEED,
        "faults": list(outcome.fault_lines),
        "divergences": list(outcome.divergences),
        "repeat_report_identical": repeat_identical,
        "chaos_wall_s": round(chaos_wall_s, 3),
        "mend": mend.to_dict(),
        "fault_drops": fault_drops,
        "fault_dups": fault_dups,
        "max_restart_wall_ms": (
            round(max(mend.restart_wall_s) * 1e3, 2) if mend.restart_wall_s else None
        ),
    }


def test_e23_mend(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    mend = results["mend"]

    rows = [
        [
            f"shard {crash['shard']}",
            f"window {crash['window']}",
            "restored",
        ]
        for crash in mend["crashes"]
    ]
    rows.append(["handoff drops", results["fault_drops"], "NACK/retransmit"])
    rows.append(["handoff dups", results["fault_dups"], "sequence dedup"])
    print_table(
        f"E23: FlexMend determinism through faults ({SHARDS} shards, "
        f"{PACKETS} packets; {mend['restarts']} restart(s), "
        f"{mend['windows_replayed']} window(s) replayed, "
        f"slowest restart {results['max_restart_wall_ms']} ms; "
        f"divergences: {len(results['divergences'])})",
        ["fault", "site / count", "recovery"],
        rows,
    )

    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")

    # Identity gate: byte-identical to the fault-free sharded arm and
    # to the single-process reference, through every injected fault.
    assert results["divergences"] == []
    # The faults actually fired and were absorbed.
    assert mend["crashes"] == [
        {"shard": crash.shard, "window": crash.window} for crash in CRASHES
    ]
    assert mend["restarts"] == len(CRASHES)
    assert mend["windows_replayed"] >= 0
    assert mend["checkpoints_committed"] > 0
    assert results["fault_drops"] > 0
    assert results["fault_dups"] > 0
    # Determinism gate: the same-seed repeat reproduced the full
    # deterministic report byte-for-byte.
    assert results["repeat_report_identical"]
