"""E13 — Virtualized state and cross-encoding migration (§3.1).

Claims: "individual devices have drastically different ways of
implementing this state" (P4 registers, Spectrum stateful tables, PoF
flow instructions, eBPF maps); "if a program assumes a specific way of
state encoding ... function migration becomes difficult. In FlexBPF,
the compiler selects the proper state encodings ... Program migration
carries its state in this logical representation." Expected shape:
the same logical map compiles to a different physical encoding on
every architecture; migrations between associative encodings are
lossless at any size; only register targets (index-addressed) impose a
capacity/aliasing limit — which the logical layer detects up front.
"""


from benchmarks.harness import print_table

from repro.apps.base import base_infrastructure
from repro.compiler.state_encoding import convert, select_encoding
from repro.errors import MigrationError
from repro.lang.maps import MapSnapshot
from repro.targets import drmt_switch, fpga, host, rmt_switch, smartnic, tiled_switch
from repro.targets.base import StateEncoding

ARCHES = {
    "RMT switch": rmt_switch("d", runtime_capable=True),
    "dRMT switch": drmt_switch("d"),
    "tiled switch": tiled_switch("d"),
    "SmartNIC": smartnic("d"),
    "FPGA": fpga("d"),
    "host eBPF": host("d"),
}


def snapshot(entries: int) -> MapSnapshot:
    return MapSnapshot(
        map_name="flow_counts",
        entries=tuple(((i, i + 1), i * 7) for i in range(entries)),
        version=1,
    )


def run_experiment():
    program = base_infrastructure()
    map_def = program.map("flow_counts")

    chosen = {
        arch: select_encoding(map_def, target).value for arch, target in ARCHES.items()
    }

    # Migrate 10k entries through every associative encoding pair.
    migrations = []
    associative = [
        StateEncoding.STATEFUL_TABLE,
        StateEncoding.KERNEL_MAP,
        StateEncoding.SOC_MEMORY,
        StateEncoding.FLOW_INSTRUCTION,
    ]
    for source in associative:
        for destination in associative:
            if source is destination:
                continue
            arrived, report = convert(snapshot(10_000), source, destination)
            migrations.append(
                (source.value, destination.value, report.entries_out, report.lossless)
            )

    # Register targets: small state converts (with aliasing accounting);
    # oversized state is rejected up front.
    small, small_report = convert(
        snapshot(2_000), StateEncoding.STATEFUL_TABLE, StateEncoding.REGISTER,
        register_slots=4096,
    )
    oversized_rejected = False
    try:
        convert(
            snapshot(50_000), StateEncoding.STATEFUL_TABLE, StateEncoding.REGISTER,
            register_slots=4096,
        )
    except MigrationError:
        oversized_rejected = True

    return {
        "chosen": chosen,
        "migrations": migrations,
        "register_small_out": len(small.entries),
        "register_aliased": 2_000 - small_report.entries_out,
        "oversized_rejected": oversized_rejected,
    }


def test_e13_state_encoding(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E13: physical encoding chosen for the same logical map",
        ["architecture", "encoding"],
        [[arch, encoding] for arch, encoding in results["chosen"].items()],
    )
    print_table(
        "E13b: 10k-entry migrations between associative encodings",
        ["from", "to", "entries out", "lossless"],
        [list(row) for row in results["migrations"]],
    )
    # Every architecture picked an encoding, and at least three distinct
    # encodings are in play across the ecosystem (the heterogeneity claim).
    assert len(set(results["chosen"].values())) >= 3
    assert results["chosen"]["RMT switch"] == "register"
    assert results["chosen"]["dRMT switch"] == "stateful_table"
    assert results["chosen"]["host eBPF"] == "kernel_map"
    # All associative-to-associative migrations are lossless.
    assert all(lossless for *_, lossless in results["migrations"])
    assert all(out == 10_000 for _, _, out, _ in results["migrations"])
    # Register conversion accounts for aliasing and rejects overflow.
    assert results["register_small_out"] + results["register_aliased"] == 2_000
    assert results["oversized_rejected"]
