"""E18 — FlexScope observability overhead and fidelity.

Observability is only deployable if it is (a) free when off and (b)
cheap when on. This experiment runs the E2 workload — base
infrastructure with the firewall delta injected mid-traffic — three
ways:

* **disabled** — the FlexScope façade exists but is never enabled
  (the shipping default);
* **traced 1/64** — tracing, metrics, and profiling on at the default
  1-in-64 packet sampling rate, which must cost **≤ 10%** of the
  disabled run's packets/second;
* **traced 1/1** — every packet traced (informational; not gated).

Fidelity is asserted alongside cost: the traced runs must report the
exact same traffic outcome as the disabled run (sampling reroutes a
packet through the interpreter, never changes its fate), every
reconfiguration window must be reconstructable from the span tree, and
two traced runs must export byte-identical metrics and spans.

The run writes ``BENCH_e18.json`` at the repo root (CI's bench-smoke
reads it) in addition to the bench_tables.txt row.
"""

from __future__ import annotations

import json
import pathlib
import time

from benchmarks.harness import fmt, print_table

from repro.apps import base_infrastructure, firewall_delta
from repro.core.flexnet import FlexNet
from repro.runtime.consistency import ConsistencyLevel
from repro.simulator.packet import reset_packet_ids

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_e18.json"

RATE_PPS = 2000
DURATION_S = 10.0
UPDATE_AT_S = 5.0
LEVEL = ConsistencyLevel.PER_PACKET_PATH
MAX_OVERHEAD = 0.10  # traced 1/64 may cost at most 10% of disabled pps


def workload_run(sample_every: int | None):
    """One E2 run; ``sample_every=None`` leaves FlexScope disabled.
    Returns ``(net, traffic_report, wall_pps)``."""
    reset_packet_ids()  # identical cut-over draws across variants
    net = FlexNet.standard()
    if sample_every is not None:
        net.observe.enable(sample_every=sample_every)
    net.install(base_infrastructure())
    delta = firewall_delta()
    net.schedule(UPDATE_AT_S, lambda: net.update(delta, consistency=LEVEL))
    start = time.perf_counter()
    report = net.run_traffic(
        rate_pps=RATE_PPS, duration_s=DURATION_S, consistency_level=LEVEL,
        extra_time_s=2.0,
    )
    elapsed = time.perf_counter() - start
    return net, report, report.metrics.sent / elapsed


def best_of(sample_every: int | None, passes: int = 3):
    """pps is noise-bounded from above; keep the fastest pass."""
    best = None
    for _ in range(passes):
        net, report, pps = workload_run(sample_every)
        if best is None or pps > best[2]:
            best = (net, report, pps)
    return best


def run_experiment() -> dict:
    _, disabled_report, disabled_pps = best_of(None)
    traced_net, traced_report, traced_pps = best_of(64)
    full_net, full_report, full_pps = best_of(1)

    # Fidelity: tracing must not perturb the simulation.
    outcome = disabled_report.metrics.to_dict()
    assert traced_report.metrics.to_dict() == outcome
    assert full_report.metrics.to_dict() == outcome

    # Every reconfig window is reconstructable from the span tree.
    windows = traced_net.observe.tracer.spans(kind="window")
    updates = traced_net.observe.tracer.spans(kind="update")

    # Determinism: a second traced run exports byte-identical spans
    # and metrics (wall-clock profiler columns are excluded by design).
    repeat_net, _, _ = workload_run(64)
    spans_match = (
        repeat_net.observe.tracer.to_dict() == traced_net.observe.tracer.to_dict()
    )
    metrics_match = (
        repeat_net.observe.metrics.to_prometheus()
        == traced_net.observe.metrics.to_prometheus()
    )

    return {
        "rate_pps": RATE_PPS,
        "duration_s": DURATION_S,
        "sent": disabled_report.metrics.sent,
        "disabled_pps": disabled_pps,
        "traced_pps": traced_pps,
        "full_trace_pps": full_pps,
        "overhead_1_in_64": disabled_pps / traced_pps - 1.0,
        "overhead_1_in_1": disabled_pps / full_pps - 1.0,
        "spans": traced_net.observe.tracer.total_spans,
        "spans_full": full_net.observe.tracer.total_spans,
        "windows": len(windows),
        "updates": len(updates),
        "outcomes_identical": True,
        "spans_deterministic": spans_match,
        "metrics_deterministic": metrics_match,
    }


def test_e18_observe(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_table(
        f"E18: FlexScope overhead on the E2 workload "
        f"({RATE_PPS} pps, {DURATION_S:.0f}s, firewall delta at t={UPDATE_AT_S:.0f}s)",
        ["mode", "pps (wall)", "overhead", "spans"],
        [
            ["disabled", fmt(results["disabled_pps"], 4), "—", 0],
            [
                "traced 1/64",
                fmt(results["traced_pps"], 4),
                f"{results['overhead_1_in_64'] * 100:+.1f}%",
                results["spans"],
            ],
            [
                "traced 1/1",
                fmt(results["full_trace_pps"], 4),
                f"{results['overhead_1_in_1'] * 100:+.1f}%",
                results["spans_full"],
            ],
        ],
    )

    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")

    # The gate: default-rate tracing costs at most 10% of throughput.
    assert results["overhead_1_in_64"] <= MAX_OVERHEAD, results["overhead_1_in_64"]
    # The update produced a real, reconstructable transition.
    assert results["updates"] == 1
    assert results["windows"] >= 1
    # Same-scenario runs export byte-identical observability.
    assert results["spans_deterministic"]
    assert results["metrics_deterministic"]
