"""E14 — Incremental programming with the delta DSL (§3.2).

Claims: runtime changes are "simply additions, deletions, or changes to
the existing programs" expressed in a DSL that "concisely specif[ies]
where, when, and how an existing FlexNet program is updated ... without
having to re-specify the entire stacks all over again", with name
pattern matching to "programmatically select and modify" element
families; the compiler "jointly analyzes" patch + base and rejects bad
patches atomically. Expected shape: patches are ~10x smaller than
re-specification, pattern selectors hit whole element families at once,
and every ill-formed patch leaves the base program untouched.
"""


from benchmarks.harness import print_table

from repro.apps import (
    count_min_delta,
    dctcp_delta,
    firewall_delta,
    int_probe_delta,
    load_balancer_delta,
    nat_delta,
)
from repro.apps.base import base_infrastructure
from repro.errors import CompositionError
from repro.lang.delta import Delta, RemoveElements, apply_delta, match_elements, parse_delta


def spec_size(program) -> int:
    """Declaration count of a full program re-specification."""
    return (
        len(program.headers)
        + (1 if program.parser else 0)
        + len(program.maps)
        + len(program.actions)
        + len(program.tables)
        + len(program.functions)
        + len(program.apply)
    )


def run_experiment():
    base = base_infrastructure()
    patches = {
        "firewall": firewall_delta(),
        "count-min sketch": count_min_delta(),
        "load balancer": load_balancer_delta(),
        "NAT": nat_delta(),
        "DCTCP": dctcp_delta(),
        "INT probe": int_probe_delta(),
    }
    rows = []
    program = base
    for name, delta in patches.items():
        before = spec_size(program)
        program, changes = apply_delta(program, delta)
        after = spec_size(program)
        rows.append(
            {
                "name": name,
                "patch_ops": len(delta.ops),
                "respecify_decls": after,
                "ratio": after / len(delta.ops),
                "touched": len(changes.touched),
            }
        )

    # Pattern selection: retire every firewall element with one glob.
    fw_elements = match_elements(program, "fw_*")
    trimmed, fw_changes = apply_delta(
        program, Delta(name="retire_fw", ops=(RemoveElements(pattern="fw_*"),))
    )

    # Joint analysis: a patch referencing a missing action is rejected
    # atomically.
    bad = parse_delta(
        """
        delta bad {
          add table broken { key: ipv4.src; actions: ghost_action; size: 8; }
          insert broken before acl;
        }
        """
    )
    rejected = False
    try:
        apply_delta(trimmed, bad)
    except CompositionError:
        rejected = True

    return {
        "rows": rows,
        "fw_pattern_hits": len(fw_elements),
        "fw_removed": len(fw_changes.removed),
        "bad_patch_rejected": rejected,
        "base_intact_after_reject": trimmed.validate() is trimmed,
    }


def test_e14_delta_dsl(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E14: patch size vs full re-specification",
        ["runtime change", "patch ops", "full-spec decls", "spec/patch ratio"],
        [
            [row["name"], row["patch_ops"], row["respecify_decls"],
             f"{row['ratio']:.1f}x"]
            for row in results["rows"]
        ],
    )
    print_table(
        "E14b: pattern selection and joint analysis",
        ["check", "observed"],
        [
            ["fw_* glob matched elements", results["fw_pattern_hits"]],
            ["elements removed by one-op patch", results["fw_removed"]],
            ["ill-typed patch rejected atomically", results["bad_patch_rejected"]],
        ],
    )
    # Every patch is several-fold smaller than respecifying; the gap
    # widens as the composed program grows (the re-specification burden
    # scales with the stack, the patch does not).
    assert all(row["ratio"] >= 4.0 for row in results["rows"])
    ratios = [row["ratio"] for row in results["rows"]]
    assert ratios[-1] > 2 * ratios[0]
    # One glob op retired the whole firewall family.
    assert results["fw_pattern_hits"] >= 2
    assert results["fw_removed"] >= 2
    assert results["bad_patch_rejected"]
    assert results["base_intact_after_reject"]
