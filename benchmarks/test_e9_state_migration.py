"""E9 — Data plane vs control plane state migration (§3.4).

Claim: for a stateful app like a count-min sketch, "as the sketch state
is updated for each packet, copying state via control plane software is
impossible"; data-plane mechanisms (Swing State-style) migrate in-band.
Expected shape: as the per-packet update rate grows, the control-plane
copy loop's duration explodes and it stops converging somewhere below
data-plane rates, while the data-plane migration completes in one pass
at line rate with zero lost updates at every rate.
"""


from benchmarks.harness import fmt, print_table

from repro.lang import builder as b
from repro.lang.ir import MapDef
from repro.lang.maps import MapState
from repro.lang.types import BitsType
from repro.runtime.migration import (
    control_plane_migration,
    data_plane_migration,
    minimum_copy_rate_for_convergence,
)

SKETCH_ENTRIES = 50_000
UPDATE_RATES = [1e2, 1e3, 1e4, 1e5, 1e6, 1e7]  # sketch updates per second
COPY_RATE = 20_000.0  # control channel entries/s


def make_sketch(entries=SKETCH_ENTRIES):
    state = MapState(
        MapDef(
            name="sketch",
            key_fields=(b.field("ipv4.src"),),
            value_type=BitsType(64),
            max_entries=SKETCH_ENTRIES * 2,
        )
    )
    for index in range(entries):
        state.put((index,), index)
    return state


def run_experiment():
    rows = []
    for rate in UPDATE_RATES:
        control = control_plane_migration(
            make_sketch(), make_sketch(0), update_rate_per_s=rate,
            copy_rate_entries_per_s=COPY_RATE,
        )
        data = data_plane_migration(make_sketch(), make_sketch(0))
        rows.append(
            {
                "rate": rate,
                "control_converged": control.converged,
                "control_duration": control.duration_s,
                "control_lost": control.updates_lost,
                "data_duration": data.duration_s,
                "data_lost": data.updates_lost,
            }
        )
    return rows


def test_e9_state_migration(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        f"E9: migrating a {SKETCH_ENTRIES}-entry sketch under per-packet updates",
        ["update rate (/s)", "control-plane", "ctl duration (s)", "ctl updates lost",
         "data-plane", "dp duration (s)"],
        [
            [
                f"{row['rate']:.0e}",
                "converges" if row["control_converged"] else "NEVER CONVERGES",
                fmt(row["control_duration"]),
                row["control_lost"],
                "converges",
                fmt(row["data_duration"]),
            ]
            for row in rows
        ],
    )
    # Low rates: both work, but data plane is much faster.
    assert rows[0]["control_converged"]
    # High (per-packet, >= 1M/s) rates: control plane fails outright.
    assert not rows[-1]["control_converged"]
    assert rows[-1]["control_lost"] > 0
    # Data plane: always converges, never loses an update.
    assert all(row["data_lost"] == 0 for row in rows)
    assert all(row["data_duration"] < 0.1 for row in rows)
    # The analytic convergence threshold matches the simulation.
    threshold = minimum_copy_rate_for_convergence(COPY_RATE) / 1.25
    for row in rows:
        if row["rate"] < threshold * 0.5:
            assert row["control_converged"]
        if row["rate"] > threshold * 2:
            assert not row["control_converged"]
