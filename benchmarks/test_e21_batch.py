"""E21 — FlexBatch struct-of-arrays batched execution vs the fast path.

E17 established the per-packet compiled closure tree. FlexBatch feeds
the same E2 workload through :class:`PacketBatch` columns instead:
packets are grouped by their FlexVet-admitted observation key and each
group executes **once** through the compiled fast path, with the result
scattered back per packet and table counters bumped with group
multiplicity. On the stateless hosted slice (the regime the paper's
disaggregation story targets — exactly the slice E17's flow cache runs
on) the batched backend must run at least **5x faster** than the E17
whole-program compiled fast path, while staying **byte-identical** to
the interpreter: verdicts, fields, metadata, digests, op counts, map
state, and table counters (``batched_differential`` = 0 divergences).

The per-flow closure tier (whole program, stateful ``flow_counts``) is
reported as a secondary row for coverage — it is a correctness-breadth
tier, not a throughput tier, so it carries no speedup gate.

The run writes ``BENCH_e21.json`` at the repo root (CI's bench-smoke
reads it) in addition to the bench_tables.txt row.
"""

from __future__ import annotations

import copy
import json
import pathlib
import time

from benchmarks.harness import fmt, print_table
from benchmarks.test_e17_fastpath import e2_corpus, e2_program, realistic_rules

from repro.apps import base_infrastructure
from repro.simulator.batch import PacketBatch, batched_differential
from repro.simulator.pipeline_exec import ProgramInstance

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_e21.json"

N_PACKETS = 4000
BATCH_SIZE = 256
#: E17's stateless hosted slice: the whole program writes flow_counts,
#: so whole-program memoization is statically rejected; a device
#: hosting only the stateless tables batches its slice.
HOSTED_SLICE = frozenset({"acl", "fw_block", "l2", "l3", "ttl_guard"})
TARGET_SPEEDUP = 5.0


def _bench_scalar(instance: ProgramInstance, packets: list) -> float:
    """Packets/second, one per-packet pass (deep-copied work set)."""
    work = [copy.deepcopy(p) for p in packets]
    process = instance.process
    start = time.perf_counter()
    for i, packet in enumerate(work):
        process(packet, i * 1e-4)
    # Clamped like cli.measure(): pps must never divide by ~zero.
    return len(work) / max(time.perf_counter() - start, 1e-9)


def _bench_batched(
    instance: ProgramInstance, packets: list, batch_size: int = BATCH_SIZE
) -> float:
    """Packets/second through ``process_batch`` in fixed-size windows."""
    work = [copy.deepcopy(p) for p in packets]
    chunks = []
    for offset in range(0, len(work), batch_size):
        rows = work[offset : offset + batch_size]
        times = [(offset + i) * 1e-4 for i in range(len(rows))]
        chunks.append(PacketBatch(rows, times=times))
    process_batch = instance.process_batch
    start = time.perf_counter()
    for chunk in chunks:
        process_batch(chunk)
    return len(work) / max(time.perf_counter() - start, 1e-9)


def run_experiment() -> dict:
    program = e2_program()
    packets = e2_corpus(N_PACKETS)

    # -- differential: batched outcomes byte-identical to interpreted ----
    # Memo tier on the hosted slice (the gated configuration) ...
    diff_slice = batched_differential(
        program,
        packets,
        hosted_elements=set(HOSTED_SLICE),
        setup=realistic_rules,
        batch_size=BATCH_SIZE,
    )
    # ... and the closure tier on the whole stateful base program.
    diff_base = batched_differential(
        base_infrastructure(), packets, batch_size=BATCH_SIZE
    )
    divergences = len(diff_slice.divergences) + len(diff_base.divergences)

    # -- throughput: E17's whole-program compiled baseline ---------------
    compiled = ProgramInstance(program)
    realistic_rules(compiled)
    compiled.enable_fastpath()
    sliced = ProgramInstance(program, hosted_elements=set(HOSTED_SLICE))
    realistic_rules(sliced)
    sliced.enable_fastpath()
    batched = ProgramInstance(program, hosted_elements=set(HOSTED_SLICE))
    realistic_rules(batched)
    batched.enable_batching()

    _bench_scalar(compiled, packets[:500])  # warm (closure build)
    _bench_scalar(sliced, packets[:500])
    _bench_batched(batched, packets[:500])  # warm (memo + codegen keys)
    # Best of two passes per executor: pps is noise-bounded from above,
    # so the max is the better estimate of each executor's true rate.
    compiled_pps = max(_bench_scalar(compiled, packets) for _ in range(2))
    sliced_pps = max(_bench_scalar(sliced, packets) for _ in range(2))
    batched_pps = max(_bench_batched(batched, packets) for _ in range(2))

    executor = batched.batch_executor()
    admission = executor.admission()

    # -- secondary: closure tier on the whole stateful program -----------
    closure = ProgramInstance(base_infrastructure())
    closure.enable_batching()
    closure_scalar = ProgramInstance(base_infrastructure())
    closure_scalar.enable_fastpath()
    _bench_batched(closure, packets[:500])
    _bench_scalar(closure_scalar, packets[:500])
    closure_pps = max(_bench_batched(closure, packets) for _ in range(2))
    closure_scalar_pps = max(_bench_scalar(closure_scalar, packets) for _ in range(2))

    return {
        "packets": len(packets),
        "batch_size": BATCH_SIZE,
        "divergences": divergences,
        "admitted": admission.admitted,
        "compiled_pps": compiled_pps,
        "sliced_compiled_pps": sliced_pps,
        "batched_pps": batched_pps,
        "speedup_vs_compiled": batched_pps / compiled_pps,
        "speedup_vs_sliced": batched_pps / sliced_pps,
        "closure_batched_pps": closure_pps,
        "closure_compiled_pps": closure_scalar_pps,
        "closure_ratio": closure_pps / closure_scalar_pps,
        "batch_stats": executor.stats.to_dict(),
    }


def test_e21_batch(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    stats = results["batch_stats"]
    print_table(
        f"E21: FlexBatch batched execution on the E2 workload "
        f"({results['packets']} packets, batch={results['batch_size']})",
        ["executor", "pps", "vs compiled", "divergences"],
        [
            [
                "FlexPath compiled (whole program)",
                fmt(results["compiled_pps"], 4),
                "1.0x",
                results["divergences"],
            ],
            [
                "FlexPath compiled (stateless slice)",
                fmt(results["sliced_compiled_pps"], 4),
                f"{results['sliced_compiled_pps'] / results['compiled_pps']:.2f}x",
                "",
            ],
            [
                "FlexBatch memo tier (stateless slice)",
                fmt(results["batched_pps"], 4),
                f"{results['speedup_vs_compiled']:.2f}x",
                f"memo hits {stats['memo_hits']}",
            ],
            [
                "FlexBatch closure tier (stateful base)",
                fmt(results["closure_batched_pps"], 4),
                f"{results['closure_ratio']:.2f}x of its scalar path",
                "",
            ],
        ],
    )

    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")

    assert results["divergences"] == 0
    assert results["admitted"], "batch_gate must admit the stateless slice"
    assert results["speedup_vs_compiled"] >= TARGET_SPEEDUP, results[
        "speedup_vs_compiled"
    ]
    assert stats["memo_hits"] > 0
    assert stats["revoked_batches"] == 0
