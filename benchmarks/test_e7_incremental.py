"""E7 — Incremental recompilation: maximally adjacent reconfigurations (§3.3).

Claim: compiling runtime changes "must be done in a least-intrusive
manner", minimizing "resource reallocation and shuffling" by finding
"maximally adjacent reconfigurations". Expected shape: over a stream of
small program edits, the incremental compiler moves (nearly) zero
untouched elements, while a full from-scratch recompile reshuffles
placements freely — more moved elements, more state migrations, longer
transitions.
"""


from benchmarks.harness import fmt, print_table

from repro.apps.base import base_infrastructure
from repro.compiler.incremental import IncrementalCompiler, full_recompile_plan
from repro.compiler.placement import PlacementEngine
from repro.lang.analyzer import certify
from repro.lang.delta import apply_delta, parse_delta


EDIT_STREAM = [
    # e1: a big monitoring map+function that nearly fills the first switch.
    """
    delta e1 {
      add map m1 { key: ipv4.src; value: u32; max_entries: 200000; }
      add func f1() { let v: u32 = map_get(m1, ipv4.src); map_put(m1, ipv4.src, v + 1); }
      insert f1 after count_flow;
    }
    """,
    "delta e2 { resize table acl 4096; }",
    # e3: a large QoS table that no longer fits the first switch and
    # spills to the second one.
    """
    delta e3 {
      add action mark2() { set_queue(2); }
      add table qos { key: ipv4.dst; actions: mark2, nop; size: 100000; default: nop; }
      insert qos before l3;
    }
    """,
    # e4: the monitor retires, freeing the first switch again — a full
    # recompile now *pulls the QoS table back* (a gratuitous move), the
    # incremental compiler leaves it be.
    "delta e4 { remove func f1; remove map m1; }",
    "delta e5 { resize map flow_counts 131072; }",
]


def run_experiment():
    # A multi-switch slice so a from-scratch packer has real freedom.
    def fresh_slice():
        from repro.compiler.plan import DeviceSpec
        from repro.compiler.placement import NetworkSlice
        from repro.targets import drmt_switch, host, smartnic

        return NetworkSlice(
            devices=[
                DeviceSpec("h1", host("h1"), ingress_link_ns=0.0),
                DeviceSpec("nic1", smartnic("nic1")),
                DeviceSpec("sw1", drmt_switch("sw1", sram_mb=4.0)),
                DeviceSpec("sw2", drmt_switch("sw2"), ingress_link_ns=2000.0),
                DeviceSpec("nic2", smartnic("nic2")),
                DeviceSpec("h2", host("h2")),
            ]
        )

    engine = PlacementEngine()
    program = base_infrastructure()
    plan = engine.compile(program, certify(program), fresh_slice())

    incremental_compiler = IncrementalCompiler(engine)
    totals = {
        "incremental": {"moved": 0, "migrations": 0, "makespan": 0.0},
        "full": {"moved": 0, "migrations": 0, "makespan": 0.0},
    }
    per_edit = []

    for index, text in enumerate(EDIT_STREAM):
        delta = parse_delta(text)
        new_program, changes = apply_delta(program, delta)

        incremental = incremental_compiler.recompile(
            plan, new_program, fresh_slice(), changes
        )
        full = full_recompile_plan(plan, new_program, fresh_slice(), engine)

        for label, result in (("incremental", incremental), ("full", full)):
            totals[label]["moved"] += result.reconfig.moved_elements
            totals[label]["migrations"] += sum(
                1 for s in result.reconfig.steps if s.carries_state
            )
            totals[label]["makespan"] += result.reconfig.makespan_s()
        per_edit.append(
            [
                delta.name,
                incremental.reconfig.moved_elements,
                full.reconfig.moved_elements,
            ]
        )

        program = new_program
        plan = incremental.new_plan

    return {"totals": totals, "per_edit": per_edit}


def test_e7_incremental(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    totals = results["totals"]
    print_table(
        "E7: elements moved per edit — incremental vs full recompilation",
        ["edit", "incremental moves", "full-recompile moves"],
        results["per_edit"]
        + [[
            "TOTAL",
            totals["incremental"]["moved"],
            totals["full"]["moved"],
        ]],
    )
    print_table(
        "E7b: cumulative transition cost over the edit stream",
        ["strategy", "moved elements", "state migrations", "makespan (s)"],
        [
            ["incremental (maximally adjacent)",
             totals["incremental"]["moved"],
             totals["incremental"]["migrations"],
             fmt(totals["incremental"]["makespan"])],
            ["full recompilation",
             totals["full"]["moved"],
             totals["full"]["migrations"],
             fmt(totals["full"]["makespan"])],
        ],
    )
    assert totals["incremental"]["moved"] == 0  # nothing untouched ever moves
    # The from-scratch packer reshuffles at least once over the stream.
    assert totals["full"]["moved"] > 0
    assert totals["incremental"]["makespan"] <= totals["full"]["makespan"] + 1e-9
