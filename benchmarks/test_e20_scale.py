"""E20 — FlexScale sharded simulation: identity and capacity.

The paper's runtime-programmable fabric only matters at fabric scale,
so the simulator must scale past one core *without giving up the
deterministic replay every other experiment leans on*. This experiment
runs the composed middlebox pipeline (base + firewall + INT + count-min
+ rate-limiter) on a 4-pod fabric — every pod switch carrying the full
program against its own private state — and drives the same seeded
Poisson workload through:

* the plain single-process engine (the reference arm), and
* FlexScale with 1, 2, and 4 forked worker shards.

Two claims are gated:

* **Identity** — the 2-shard run's traffic report is byte-for-byte the
  single-process report (0 divergences). This is the conservative
  lookahead protocol doing its job, not a statistical comparison.
* **Capacity** — at 4 shards the aggregate capacity (packets divided
  by the *slowest shard's CPU seconds*) is at least 2x the
  single-process capacity. CPU seconds, not wall seconds: CI
  containers (including this one) often pin a single core, where
  perfectly parallel workers still serialize on the clock. Per-shard
  CPU time measures the work each worker actually had to do — the
  wall-clock speedup an N-core host would see — and both wall and CPU
  numbers plus the visible core count are recorded in the artifact so
  nothing hides behind the metric choice.

The run writes ``BENCH_e20.json`` at the repo root (CI's bench-smoke
step re-runs the 2-shard differential identity check).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from benchmarks.harness import fmt, print_table

from repro.scale import e20_net, e20_workload, reference_run, run_sharded
from repro.simulator.packet import reset_packet_ids

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_e20.json"

PODS = 4
PACKETS = 3500
RATE_PPS = 50_000.0
WORKLOAD_SEED = 7
PLAN_SEED = 11
DRAIN_S = 0.01
SHARD_COUNTS = (1, 2, 4)
MIN_SPEEDUP_4_SHARDS = 2.0


def fresh_arm():
    """Fresh fabric + same-seed workload; every arm starts identical."""
    reset_packet_ids()
    net = e20_net(pods=PODS)
    workload = e20_workload(PACKETS, rate_pps=RATE_PPS, seed=WORKLOAD_SEED)
    return net, workload


def canon(data: dict) -> str:
    return json.dumps(data, sort_keys=True)


def run_experiment() -> dict:
    net, workload = fresh_arm()
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    reference = reference_run(net, workload, drain_s=DRAIN_S)
    single_cpu_s = time.process_time() - cpu_start
    single_wall_s = time.perf_counter() - wall_start
    reference_json = canon(reference.to_dict())
    single_pps = PACKETS / single_cpu_s

    arms = {}
    for shards in SHARD_COUNTS:
        net, workload = fresh_arm()
        wall_start = time.perf_counter()
        report = run_sharded(
            net,
            workload,
            shards,
            backend="process",
            seed=PLAN_SEED,
            drain_s=DRAIN_S,
        )
        wall_s = time.perf_counter() - wall_start
        max_cpu_s = report.max_shard_cpu_s
        arms[shards] = {
            "shards": shards,
            "populated_shards": len(report.plan.populated_shards),
            "divergences": 0 if canon(report.traffic_dict()) == reference_json else 1,
            "windows": report.windows,
            "handoffs": report.handoffs,
            "wall_s": round(wall_s, 3),
            "max_shard_cpu_s": round(max_cpu_s, 3),
            "aggregate_pps": round(PACKETS / max_cpu_s, 1),
            "speedup_vs_single": round(PACKETS / max_cpu_s / single_pps, 2),
            "per_shard_cpu_s": {
                str(result.shard_id): round(result.cpu_s, 3)
                for result in report.shard_results
            },
        }

    return {
        "pods": PODS,
        "packets": PACKETS,
        "rate_pps": RATE_PPS,
        "workload_seed": WORKLOAD_SEED,
        "plan_seed": PLAN_SEED,
        "host_cpu_count": os.cpu_count(),
        "capacity_metric": "packets / max(per-shard CPU seconds)",
        "single_process": {
            "wall_s": round(single_wall_s, 3),
            "cpu_s": round(single_cpu_s, 3),
            "pps": round(single_pps, 1),
        },
        "sharded": {str(shards): arm for shards, arm in arms.items()},
    }


def test_e20_scale(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    single = results["single_process"]
    arms = results["sharded"]

    rows = [
        ["single", "—", fmt(single["cpu_s"]), fmt(single["pps"], 4), "1.00x", "—"]
    ]
    for shards in SHARD_COUNTS:
        arm = arms[str(shards)]
        rows.append(
            [
                f"{shards} shard(s)",
                arm["divergences"],
                fmt(arm["max_shard_cpu_s"]),
                fmt(arm["aggregate_pps"], 4),
                f"{arm['speedup_vs_single']:.2f}x",
                arm["handoffs"],
            ]
        )
    print_table(
        f"E20: FlexScale capacity on the {PODS}-pod composed pipeline "
        f"({PACKETS} packets @ {RATE_PPS:.0f} pps, "
        f"{results['host_cpu_count']} host core(s); "
        f"capacity = packets / max shard CPU-s)",
        ["arm", "divergences", "max cpu (s)", "capacity pps", "speedup", "handoffs"],
        rows,
    )

    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")

    # Identity gate: every sharded arm reproduces the single-process
    # traffic report byte-for-byte.
    for shards in SHARD_COUNTS:
        assert arms[str(shards)]["divergences"] == 0, f"{shards} shard(s) diverged"
    # The 4-shard plan actually uses 4 workers with real boundaries.
    assert arms["4"]["populated_shards"] == 4
    assert arms["4"]["handoffs"] > 0
    # Capacity gate: 4 shards carry at least twice the single-process
    # load per CPU second.
    assert arms["4"]["speedup_vs_single"] >= MIN_SPEEDUP_4_SHARDS, arms["4"]
