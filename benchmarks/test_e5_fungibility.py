"""E5 — Resource fungibility across device architectures (§3.3 (i)-(iv)).

Claim: "Resource fungibility varies across device architectures" with
the ordering fully-fungible (host/NIC/FPGA) >= pooled (dRMT) >=
tile-typed >= stage-local (stock RMT). Expected shape: under identical
random program churn (install/remove cycles leaving residents in
place), the probability that a new arrival still fits — the
fungibility score — follows that ordering; stage-local RMT degrades
first because freed capacity is stranded inside stages.
"""

import random


from benchmarks.harness import print_table

from repro.compiler.fungibility import fungibility_score
from repro.lang.analyzer import ElementProfile
from repro.targets import drmt_switch, fpga, host, rmt_switch, smartnic, tiled_switch

ARCHES = {
    "host (full)": host,
    "FPGA (full)": fpga,
    "SmartNIC (full)": smartnic,
    "dRMT (pooled)": drmt_switch,
    "tiles (tile-typed)": tiled_switch,
    "RMT (stage-local)": lambda name: rmt_switch(name, runtime_capable=False),
}

#: Resident load level as a fraction of the reference switch capacity.
LOAD_STEPS = [0.2, 0.4, 0.6]


def random_profile(rng: random.Random, index: int, scale: float) -> ElementProfile:
    kind = rng.choice(["table", "table", "function", "map"])
    if kind == "function":
        return ElementProfile(
            name=f"r{index}", kind="function", max_ops=rng.randint(4, 40)
        )
    entries = int(rng.randint(2_000, 40_000) * scale)
    return ElementProfile(
        name=f"r{index}",
        kind=kind,
        max_ops=3,
        table_entries=max(entries, 16),
        key_bits=rng.choice([32, 64]),
        is_ternary=(kind == "table" and rng.random() < 0.25),
        is_stateful=(kind == "map"),
    )


def probe_profile(rng: random.Random) -> ElementProfile:
    return ElementProfile(
        name="probe",
        kind="table",
        max_ops=3,
        table_entries=rng.randint(20_000, 120_000),
        key_bits=64,
        is_ternary=False,
    )


def run_experiment():
    rng = random.Random(42)
    trials = 60
    results: dict[str, dict[float, float]] = {}
    for arch_name, factory in ARCHES.items():
        results[arch_name] = {}
        for load in LOAD_STEPS:
            admitted = 0
            for trial in range(trials):
                target = factory("d")
                # scale resident footprints to roughly `load` of a switch
                residents = [
                    random_profile(rng, i, scale=load * 1.6) for i in range(8)
                ]
                score = fungibility_score(target, residents, probe_profile(rng))
                admitted += score
            results[arch_name][load] = admitted / trials
    return results


def test_e5_fungibility(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [arch] + [f"{results[arch][load]:.2f}" for load in LOAD_STEPS]
        for arch in ARCHES
    ]
    print_table(
        "E5: probe admission probability vs resident load (fungibility score)",
        ["architecture"] + [f"load {load:.0%}" for load in LOAD_STEPS],
        rows,
    )
    heavy = LOAD_STEPS[-1]
    # The paper's ordering at the heaviest load: full >= pooled >= stage-local.
    assert results["host (full)"][heavy] >= results["dRMT (pooled)"][heavy]
    assert results["dRMT (pooled)"][heavy] >= results["RMT (stage-local)"][heavy]
    # Stage-local RMT is strictly worse than pooled somewhere in the sweep.
    assert any(
        results["dRMT (pooled)"][load] > results["RMT (stage-local)"][load]
        for load in LOAD_STEPS
    )
    # Fully fungible targets stay accommodating even when switches saturate.
    assert results["host (full)"][heavy] >= 0.9
