"""E19 — Controller fail-over, fencing, and resync (FlexHA).

The paper's §3.4 makes the controller itself distributed: "logically
centralized controllers are realized in physically distributed nodes,
which brings classic distributed systems concerns on consensus and
availability". E16 hardened the device side of the fault model; this
experiment closes the controller side. Three seeded scenarios on the
same slice, all with the firewall delta committed through the
replicated controller mid-traffic:

* **leader crash mid-two-phase** — the Raft leader dies 20ms after the
  update commits, while device windows are opening. The successor's
  no-op barrier drains the committed log, its resync sweep re-reads
  device ground truth, and the network must converge with **zero**
  consistency violations and **zero** stale-epoch writes applied. The
  leader-handoff downtime (leadership lost -> first resync complete) is
  the headline number.
* **leader partition (fenced)** — the leader is partitioned away but
  keeps believing it leads; every lease renewal and in-flight write it
  issues must bounce off the device fencing watermarks.
* **leader partition (unfenced baseline)** — the same partition with
  fencing disabled: the deposed leader's stale writes land, which is
  the corruption fencing buys out of.

Byte-identical reports across same-seed runs are asserted for the
crash scenario (the chaos-report reproducibility guarantee, extended to
controller faults). The run writes ``BENCH_e19.json`` at the repo root
(CI's bench-smoke reads it) in addition to the bench_tables.txt rows.
"""

from __future__ import annotations

import json
import pathlib

from benchmarks.harness import print_table

from repro.apps import base_infrastructure, firewall_delta
from repro.faults import (
    ControllerCrash,
    FaultPlan,
    LeaderPartition,
    run_controller_chaos,
)

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_e19.json"

SEED = 7
RATE_PPS = 1000
DURATION_S = 10.0
UPDATE_AT_S = 5.0
FAULT_AT_S = 5.02  # post-commit, mid two-phase transition
MAX_HANDOFF_S = 1.0  # election timeout ceiling + barrier commit + sweep


def crash_run():
    plan = FaultPlan(
        seed=SEED,
        controller_crashes=(
            ControllerCrash(node="leader", at_s=FAULT_AT_S, restart_after_s=2.0),
        ),
    )
    return run_controller_chaos(
        base_infrastructure(),
        firewall_delta(),
        plan,
        rate_pps=RATE_PPS,
        duration_s=DURATION_S,
        update_at_s=UPDATE_AT_S,
    )


def partition_run(fencing: bool):
    plan = FaultPlan(
        seed=SEED,
        partitions=(LeaderPartition(at_s=FAULT_AT_S, heal_after_s=3.0),),
    )
    return run_controller_chaos(
        base_infrastructure(),
        firewall_delta(),
        plan,
        fencing=fencing,
        rate_pps=RATE_PPS,
        duration_s=DURATION_S,
        update_at_s=UPDATE_AT_S,
    )


def run_experiment():
    return {
        "crash": crash_run(),
        "crash_repeat": crash_run(),
        "partition_fenced": partition_run(fencing=True),
        "partition_unfenced": partition_run(fencing=False),
    }


def test_e19_controller_ha(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    crash = results["crash"]
    repeat = results["crash_repeat"]
    fenced = results["partition_fenced"]
    unfenced = results["partition_unfenced"]

    rows = []
    for label, report in (
        ("leader crash mid-2-phase", crash),
        ("partition, fenced", fenced),
        ("partition, unfenced", unfenced),
    ):
        handoff = (
            f"{max(report.handoff_downtimes_s) * 1000:.0f}ms"
            if report.handoff_downtimes_s
            else "-"
        )
        rows.append(
            [
                label,
                report.sent,
                report.violations,
                "yes" if report.converged else "NO",
                report.failovers,
                handoff,
                report.epoch_rejections,
                report.stale_writes_applied,
            ]
        )
    print_table(
        f"E19: controller fail-over under a committed update "
        f"({RATE_PPS} pps, {DURATION_S:.0f}s, fault at t={FAULT_AT_S:g}s)",
        [
            "scenario",
            "sent",
            "inconsistent",
            "converged",
            "failovers",
            "handoff",
            "stale rejected",
            "stale applied",
        ],
        rows,
    )

    handoff_s = max(crash.handoff_downtimes_s) if crash.handoff_downtimes_s else None
    RESULT_PATH.write_text(
        json.dumps(
            {
                "seed": SEED,
                "rate_pps": RATE_PPS,
                "duration_s": DURATION_S,
                "crash_converged": crash.converged,
                "crash_violations": crash.violations,
                "crash_stale_writes_applied": crash.stale_writes_applied,
                "crash_failovers": crash.failovers,
                "leader_handoff_downtime_s": handoff_s,
                "crash_resyncs": crash.resyncs,
                "crash_devices_redriven": crash.devices_redriven,
                "reports_byte_identical": crash.to_dict() == repeat.to_dict(),
                "fenced_epoch_rejections": fenced.epoch_rejections,
                "fenced_stale_writes_applied": fenced.stale_writes_applied,
                "fenced_converged": fenced.converged,
                "unfenced_stale_writes_applied": unfenced.stale_writes_applied,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # The gate: kill the leader mid two-phase transition and the network
    # still converges — zero consistency violations, zero stale-epoch
    # writes applied, and the hand-off is bounded.
    assert crash.converged
    assert crash.violations == 0
    assert crash.stale_writes_applied == 0
    assert not crash.stranded
    assert crash.failovers == 1
    assert handoff_s is not None and 0.0 < handoff_s <= MAX_HANDOFF_S
    # Reproducibility: identical seeded runs produce identical reports.
    assert crash.to_dict() == repeat.to_dict()
    # Fencing: the deposed leader's writes bounce; without fencing the
    # same scenario corrupts.
    assert fenced.converged and fenced.violations == 0
    assert fenced.epoch_rejections > 0
    assert fenced.stale_writes_applied == 0
    assert unfenced.stale_writes_applied > 0
