"""E2 — Hitless updates and per-packet consistency (§2).

Claims: runtime reconfiguration proceeds "without packet loss" and
"during this transition, packets are either processed by the new
program or old one in a consistent manner". Expected shape: zero
infrastructure loss and zero consistency violations for the runtime
path; the compile-time baseline loses every packet in its drain window
(loss proportional to downtime x offered rate).
"""

import pytest

from benchmarks.harness import print_table

from repro.apps import base_infrastructure, firewall_delta
from repro.baselines.compile_time import CompileTimeNetwork
from repro.core.flexnet import FlexNet
from repro.runtime.consistency import ConsistencyLevel
from repro.simulator.flowgen import constant_rate

RATE_PPS = 2000
DURATION_S = 40.0


def runtime_run(level: ConsistencyLevel) -> dict:
    net = FlexNet.standard()
    net.install(base_infrastructure())
    net.schedule(5.0, lambda: net.update(firewall_delta(), consistency=level))
    report = net.run_traffic(
        rate_pps=RATE_PPS, duration_s=DURATION_S, consistency_level=level,
        extra_time_s=5.0,
    )
    consistency = report.consistency.report()
    return {
        "sent": report.metrics.sent,
        "lost": report.metrics.lost_by_infrastructure,
        "violations": consistency.violations,
        "versions": report.metrics.versions_on("sw1"),
    }


def baseline_run() -> dict:
    baseline = CompileTimeNetwork.standard()
    baseline.install(base_infrastructure())
    baseline.loop.schedule_at(5.0, lambda: baseline.update(firewall_delta()))
    metrics = baseline.run_traffic(
        list(constant_rate(RATE_PPS, DURATION_S)), extra_time_s=5.0
    )
    return {
        "sent": metrics.sent,
        "lost": metrics.lost_by_infrastructure,
        "downtime": baseline.reflashes[0].downtime_s,
    }


def run_experiment():
    results = {}
    for level in (
        ConsistencyLevel.PER_PACKET_PER_DEVICE,
        ConsistencyLevel.PER_PACKET_PATH,
        ConsistencyLevel.PER_FLOW,
    ):
        results[level.value] = runtime_run(level)
    results["compile_time"] = baseline_run()
    return results


def test_e2_hitless_consistency(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for level in ("per_packet_per_device", "per_packet_path", "per_flow"):
        data = results[level]
        rows.append(
            [f"runtime / {level}", data["sent"], data["lost"], data["violations"]]
        )
    baseline = results["compile_time"]
    rows.append(
        [
            "compile-time reflash",
            baseline["sent"],
            baseline["lost"],
            "n/a (one program at a time)",
        ]
    )
    print_table(
        "E2: loss and consistency during a live firewall injection "
        f"({RATE_PPS} pps, {DURATION_S:.0f}s)",
        ["mechanism / level", "sent", "lost", "consistency violations"],
        rows,
    )

    for level in ("per_packet_per_device", "per_packet_path", "per_flow"):
        assert results[level]["lost"] == 0, level
        assert results[level]["violations"] == 0, level
        # both versions actually served traffic (the transition was real)
        assert len(results[level]["versions"]) == 2

    expected_loss = RATE_PPS * baseline["downtime"]
    assert baseline["lost"] == pytest.approx(expected_loss, rel=0.15)
