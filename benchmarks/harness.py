"""Shared utilities for the experiment benchmarks.

Each benchmark module reproduces one experiment from DESIGN.md's index
(the paper has no numeric tables, so each experiment operationalizes
one of its quantitative/directional claims). Benchmarks print the rows
EXPERIMENTS.md records and assert the claim's *shape* (who wins, by
roughly what factor) — absolute numbers come from the simulator's cost
models, not the authors' testbed.
"""

from __future__ import annotations

import pathlib

from repro.core.flexnet import FlexNet
from repro.apps.base import base_infrastructure

#: The experiment tables are artifacts: in addition to stdout (visible
#: with ``pytest -s``), every table is appended to this file so a plain
#: ``pytest benchmarks/ --benchmark-only`` run still leaves a record.
TABLES_PATH = pathlib.Path(__file__).resolve().parent.parent / "bench_tables.txt"
_session_started = False


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render one experiment table to stdout and to ``bench_tables.txt``."""
    global _session_started
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    rendered = [f"\n== {title} ==", line, "-" * len(line)]
    rendered += [
        "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)) for row in rows
    ]
    text = "\n".join(rendered)
    print(text)
    mode = "a" if _session_started else "w"
    _session_started = True
    with open(TABLES_PATH, mode, encoding="utf-8") as handle:
        handle.write(text + "\n")


def standard_net(**infra_kwargs) -> FlexNet:
    """The canonical slice with the base program installed."""
    net = FlexNet.standard()
    net.install(base_infrastructure(**infra_kwargs))
    return net


def fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}g}"
