"""E10 — Data plane RPC services (§3.4).

Claim: common utilities (migration chunks, state read/replicate) are
exposed as in-band dRPC services so tenant datapaths "need not reinvent
the wheel", with execution "handed over to the data plane ... for
efficient, distributed execution" instead of controller round trips;
discovery happens via an in-network registry in real time. Expected
shape: dRPC invocation latency is microseconds (link RTT + ns-scale
handler) vs milliseconds through the controller — 2-3 orders of
magnitude — and a freshly registered service becomes discoverable a
propagation delay later.
"""


from benchmarks.harness import fmt, print_table

from repro.errors import RpcError
from repro.lang import builder as b
from repro.lang.ir import MapDef
from repro.lang.maps import MapState
from repro.lang.types import BitsType
from repro.runtime.drpc import (
    DrpcFabric,
    RpcRegistry,
    make_migrate_service,
    make_state_read_service,
    make_state_write_service,
)

CALLS = 200


def make_state(entries=256):
    state = MapState(
        MapDef(
            name="m",
            key_fields=(b.field("ipv4.src"),),
            value_type=BitsType(64),
            max_entries=4096,
        )
    )
    for index in range(entries):
        state.put((index,), index * 3)
    return state


def run_experiment():
    registry = RpcRegistry(advertisement_interval_s=0.05)
    fabric = DrpcFabric(registry, link_latency_s=1e-6)
    fabric.set_device_speed("sw1", 1.2)  # switch-hosted services
    state = make_state()
    registry.register(make_state_read_service("sw1", state), now=0.0)
    registry.register(make_state_write_service("sw1", state), now=0.0)
    registry.register(make_migrate_service("sw1", state), now=0.0)

    services = ["state_read", "state_write", "migrate_chunk"]
    results = {}
    for service in services:
        in_band_total = 0.0
        software_total = 0.0
        for index in range(CALLS):
            args = {
                "state_read": (index % 256,),
                "state_write": (index % 256, index),
                "migrate_chunk": (index % 240, 16),
            }[service]
            _, latency = fabric.call(service, args, caller_device="nic1", now=1.0)
            in_band_total += latency
            _, latency = fabric.call_via_controller(service, args, now=1.0)
            software_total += latency
        results[service] = {
            "in_band_us": in_band_total / CALLS * 1e6,
            "software_us": software_total / CALLS * 1e6,
        }

    # Discovery timing: a tenant 3 hops away sees a new service only
    # after gossip propagation.
    registry.register(make_state_read_service("sw1", state, name="late_svc"), now=5.0)
    try:
        registry.lookup("late_svc", now=5.10, hops_from_provider=3)
        visible_early = True
    except RpcError:
        visible_early = False
    registry.lookup("late_svc", now=5.20, hops_from_provider=3)

    return {"services": results, "visible_early": visible_early}


def test_e10_drpc(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for service, data in results["services"].items():
        speedup = data["software_us"] / data["in_band_us"]
        rows.append(
            [service, fmt(data["in_band_us"]), fmt(data["software_us"]),
             f"{speedup:.0f}x"]
        )
    print_table(
        f"E10: utility invocation latency, {CALLS} calls each",
        ["service", "dRPC in-band (us)", "via controller (us)", "speedup"],
        rows,
    )
    for service, data in results["services"].items():
        assert data["in_band_us"] < 10.0  # microseconds
        assert data["software_us"] > 1000.0  # milliseconds
        assert data["software_us"] / data["in_band_us"] > 100
    # Gossip discovery: invisible before propagation, visible after.
    assert not results["visible_early"]
