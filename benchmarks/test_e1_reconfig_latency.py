"""E1 — Reconfiguration latency: runtime vs compile-time (§2).

Claim: on runtime programmable switches "program changes complete
within a second" while the device stays live; the compile-time
alternative isolates, reflashes, and redeploys the device — tens of
seconds of virtual downtime. Expected shape: runtime transitions are
1-2 orders of magnitude faster, on every runtime-capable architecture.
"""


from benchmarks.harness import fmt, print_table

from repro.apps import base_infrastructure, firewall_delta
from repro.baselines.compile_time import CompileTimeNetwork
from repro.core.flexnet import FlexNet


RUNTIME_ARCHES = ["drmt", "tiles", "rmt"]  # rmt == hypothetical runtime upgrade


def runtime_transition_makespan(arch: str) -> float:
    net = FlexNet.standard(switch_arch=arch)
    net.install(base_infrastructure())
    outcome = net.update(firewall_delta())
    net.loop.run()
    return outcome.report.duration_s


def compile_time_downtime() -> float:
    baseline = CompileTimeNetwork.standard()
    baseline.install(base_infrastructure())
    event = baseline.update(firewall_delta())
    return event.downtime_s


def run_experiment() -> list[list]:
    rows = []
    for arch in RUNTIME_ARCHES:
        makespan = runtime_transition_makespan(arch)
        rows.append([f"runtime ({arch})", fmt(makespan), "no", "0"])
    downtime = compile_time_downtime()
    rows.append(["compile-time (stock RMT)", fmt(downtime), "yes (drained)",
                 "all in window"])
    return rows


def test_e1_reconfig_latency(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E1: firewall injection — transition time by update mechanism",
        ["mechanism", "transition (virtual s)", "traffic interrupted", "packets lost"],
        rows,
    )
    runtime_times = [float(row[1]) for row in rows[:-1]]
    reflash_time = float(rows[-1][1])
    # Paper: runtime changes complete within a second.
    assert all(t < 1.0 for t in runtime_times)
    # Compile-time baseline is at least an order of magnitude slower.
    assert reflash_time > 10 * max(runtime_times)


def test_e1_per_primitive_costs(benchmark):
    """Per-primitive runtime reconfiguration costs across architectures."""
    from repro.targets import drmt_switch, fpga, host, smartnic, tiled_switch

    targets = {
        "dRMT switch": drmt_switch("d"),
        "tiled switch": tiled_switch("d"),
        "SmartNIC": smartnic("d"),
        "FPGA": fpga("d"),
        "host eBPF": host("d"),
    }

    def collect():
        return [
            [
                name,
                fmt(target.reconfig.add_table_s),
                fmt(target.reconfig.remove_table_s),
                fmt(target.reconfig.parser_change_s),
            ]
            for name, target in targets.items()
        ]

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_table(
        "E1b: per-primitive reconfiguration cost models (virtual s)",
        ["target", "add table", "remove table", "parser change"],
        rows,
    )
    for row in rows:
        assert float(row[1]) < 1.0  # every runtime target is sub-second
    # eBPF reload is the fastest mechanism (§2: milliseconds)
    assert float(rows[-1][1]) < 0.01
