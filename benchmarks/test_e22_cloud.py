"""E22 — FlexCloud batched tenant admission at cloud churn.

The paper's §1.1 story ("summon the DDoS defense") at fleet scale: a
seeded 100k-tenant flash crowd churns through the FlexCloud admission
engine — bounded per-SLA queues, weighted scheduling rounds, and the
coalescer folding each round's deltas into **one batched WriteRequest
per home device** instead of one reconfiguration window per tenant.

Gates (the ISSUE 9 acceptance criteria):

* the flash crowd **converges**: every delta applies, zero isolation
  violations against per-slice ground truth and live datapath probes;
* coalescing runs **>=5x fewer** reconfiguration windows than naive
  per-delta admission while landing on the *same end state* (digest,
  applied/shed counts equal);
* the report is **byte-identical** across same-seed runs *and* across
  ``shards=2`` (the executor's rotated device-sweep partitioning), the
  determinism FlexScale's merge rests on.

A seeded 20k-tenant DDoS-defense burst (evict attackers + harden gold
tenants mid-run) rides along as a secondary row. The run writes
``BENCH_e22.json`` at the repo root (CI's bench-smoke reads it).
"""

from __future__ import annotations

import json
import pathlib
import time

from benchmarks.harness import fmt, print_table

from repro.cloud.scenarios import ddos_defense, flash_crowd, run_scenario

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_e22.json"

TENANTS = 100_000
SEED = 2026
TARGET_COALESCE = 5.0


def _timed(events, **kwargs):
    start = time.perf_counter()
    report = run_scenario(events, **kwargs)
    return report, time.perf_counter() - start


def run_experiment() -> dict:
    events = flash_crowd(tenants=TENANTS, seed=SEED)
    coalesced, coalesced_s = _timed(
        events, scenario="flash-crowd", seed=SEED, probes=16
    )
    repeat, _ = _timed(events, scenario="flash-crowd", seed=SEED, probes=16)
    sharded, _ = _timed(
        events, scenario="flash-crowd", seed=SEED, probes=16, shards=2
    )
    naive, naive_s = _timed(
        events, scenario="flash-crowd", seed=SEED, probes=16, coalesce=False
    )

    ddos_events = ddos_defense(tenants=20_000, seed=SEED)
    ddos, ddos_s = _timed(ddos_events, scenario="ddos-defense", seed=SEED, probes=16)

    return {
        "tenants": TENANTS,
        "seed": SEED,
        "flash_crowd": coalesced.to_dict(),
        "flash_crowd_naive": naive.to_dict(),
        "ddos_defense": ddos.to_dict(),
        "window_ratio_naive_over_coalesced": naive.windows / coalesced.windows,
        "same_seed_byte_identical": coalesced.to_dict() == repeat.to_dict(),
        "shards2_byte_identical": coalesced.to_dict() == sharded.to_dict(),
        "coalesced_wall_s": coalesced_s,
        "naive_wall_s": naive_s,
        "ddos_wall_s": ddos_s,
        "deltas_per_s_coalesced": len(events) / max(coalesced_s, 1e-9),
    }


def test_e22_cloud(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    crowd = results["flash_crowd"]
    naive = results["flash_crowd_naive"]
    ddos = results["ddos_defense"]
    print_table(
        f"E22: FlexCloud admission at {results['tenants']} tenants "
        f"(seed {results['seed']})",
        ["scenario", "windows", "coalesce", "violations", "deltas/s"],
        [
            [
                "flash crowd (coalesced)",
                crowd["windows"],
                f"{crowd['coalesce_ratio']:.1f}x",
                crowd["violations"],
                fmt(results["deltas_per_s_coalesced"], 4),
            ],
            [
                "flash crowd (naive serial)",
                naive["windows"],
                "1.0x",
                naive["violations"],
                fmt(naive["applied"] / max(results["naive_wall_s"], 1e-9), 4),
            ],
            [
                "ddos defense (20k, burst)",
                ddos["windows"],
                f"{ddos['coalesce_ratio']:.1f}x",
                ddos["violations"],
                fmt(ddos["applied"] / max(results["ddos_wall_s"], 1e-9), 4),
            ],
        ],
    )

    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")

    # Convergence: every delta lands, isolation holds end to end.
    assert crowd["applied"] == crowd["events"] and crowd["shed"] == 0
    assert crowd["violations"] == 0
    assert ddos["violations"] == 0 and ddos["failed"] == 0

    # Coalescing: >=5x fewer windows than naive, *equal* end state.
    ratio = results["window_ratio_naive_over_coalesced"]
    assert ratio >= TARGET_COALESCE, ratio
    assert naive["end_state_digest"] == crowd["end_state_digest"]
    assert (naive["applied"], naive["shed"]) == (crowd["applied"], crowd["shed"])

    # Determinism: byte-identical across runs and across shard counts.
    assert results["same_seed_byte_identical"]
    assert results["shards2_byte_identical"]
