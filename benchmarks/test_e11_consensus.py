"""E11 — Distributed controllers: consensus, availability, replication (§3.4).

Claims: "logically centralized controllers are realized in physically
distributed nodes, which brings classic distributed systems concerns on
consensus and availability"; device state is kept resilient via "state
replication and update protocols". Expected shape: a 3-node Raft
controller keeps committing management commands across a leader crash
(availability gap = one election timeout, not an outage); replicated
datapath state fails over with loss bounded by the sync interval.
"""


from benchmarks.harness import fmt, print_table

from repro.control.consensus import ControllerCluster
from repro.control.replication import ReplicationManager
from repro.lang import builder as b
from repro.lang.ir import MapDef
from repro.lang.maps import MapState
from repro.lang.types import BitsType
from repro.simulator.engine import EventLoop


def consensus_run() -> dict:
    loop = EventLoop()
    cluster = ControllerCluster(loop, node_count=3, seed=3)

    def wait_for_leader(deadline):
        while loop.now < deadline:
            loop.run_until(loop.now + 0.05)
            leader = cluster.leader()
            if leader is not None:
                return leader
        return None

    first_leader = wait_for_leader(5.0)
    election_1 = loop.now

    # Commit a stream of management commands.
    committed_before = 0
    for index in range(10):
        if cluster.submit({"op": "deploy", "seq": index}):
            committed_before += 1
        loop.run_until(loop.now + 0.05)

    # Kill the leader mid-operation.
    crash_time = loop.now
    cluster.bus.crash(first_leader.node_id)
    second_leader = wait_for_leader(crash_time + 5.0)
    failover_gap = loop.now - crash_time

    committed_after = 0
    for index in range(10, 20):
        if cluster.submit({"op": "deploy", "seq": index}):
            committed_after += 1
        loop.run_until(loop.now + 0.05)
    loop.run_until(loop.now + 1.0)

    applied = cluster.committed_commands()
    sequences = [c["seq"] for c in applied]
    return {
        "election_s": election_1,
        "failover_gap_s": failover_gap,
        "committed_before": committed_before,
        "committed_after": committed_after,
        "applied_in_order": sequences == sorted(sequences),
        "leader_changed": second_leader.node_id != first_leader.node_id,
        "applied_count": len(applied),
    }


def replication_run() -> dict:
    loop = EventLoop()
    manager = ReplicationManager(loop)

    def make_state():
        return MapState(
            MapDef(
                name="important",
                key_fields=(b.field("ipv4.dst"),),
                value_type=BitsType(64),
                max_entries=8192,
            )
        )

    primary = make_state()
    replica = make_state()
    group = manager.replicate(
        "important", "sw1", primary, {"sw2": replica}, mode="periodic", interval_s=0.1
    )
    # 100 writes/s for 2 s, then the primary dies.
    for index in range(200):
        loop.run_until(index * 0.01)
        manager.write("important", (index,), index)
    device, promoted, lost = manager.fail_over("important")
    return {
        "writes": 200,
        "sync_interval_s": group.interval_s,
        "lost_on_failover": lost,
        "promoted": device,
        "replica_entries": len(promoted),
    }


def run_experiment():
    return {"consensus": consensus_run(), "replication": replication_run()}


def test_e11_consensus(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    consensus = results["consensus"]
    replication = results["replication"]
    print_table(
        "E11: replicated controller through a leader crash",
        ["metric", "observed"],
        [
            ["initial election (s)", fmt(consensus["election_s"])],
            ["commands committed before crash", consensus["committed_before"]],
            ["leader fail-over gap (s)", fmt(consensus["failover_gap_s"])],
            ["commands committed after crash", consensus["committed_after"]],
            ["total applied, in submission order",
             f"{consensus['applied_count']} ({'yes' if consensus['applied_in_order'] else 'NO'})"],
        ],
    )
    print_table(
        "E11b: datapath state replication + fail-over",
        ["metric", "observed"],
        [
            ["writes to primary", replication["writes"]],
            ["sync interval (s)", replication["sync_interval_s"]],
            ["updates lost at fail-over", replication["lost_on_failover"]],
            ["replica promoted", replication["promoted"]],
        ],
    )
    assert consensus["committed_before"] >= 9
    assert consensus["committed_after"] >= 9
    assert consensus["leader_changed"]
    assert consensus["failover_gap_s"] < 2.0  # an election, not an outage
    assert consensus["applied_in_order"]
    # Replication loss bounded by one sync interval's worth of writes
    # (100 writes/s x 0.1 s = ~10, plus scheduling slack).
    assert replication["lost_on_failover"] <= 25
    assert replication["replica_entries"] > 150
