"""E6 — Compiling with garbage collection (§3.3).

Claim: "If compiling a FlexNet datapath to its resource slice fails,
the compiler recursively invokes optimization primitives ... to perform
resource reallocation and garbage collection, before attempting another
round of compilation." Expected shape: a single-pass compiler rejects a
program the network could host; the GC loop retires a removable app and
fits it on the next iteration.
"""


from benchmarks.harness import print_table

from repro.apps.base import base_infrastructure
from repro.control.apps_api import AppSla
from repro.core.flexnet import FlexNet
from repro.errors import PlacementError
from repro.lang.delta import parse_delta
from repro.targets import drmt_switch

CACHE_DELTA = """
delta cache {
  add map cache { key: ipv4.src, ipv4.dst; value: u64; max_entries: 120000; }
  add func cache_touch() {
    let v: u64 = map_get(cache, ipv4.src, ipv4.dst);
    map_put(cache, ipv4.src, ipv4.dst, v + 1);
  }
  insert cache_touch after count_flow;
}
"""

NEEDY_DELTA = """
delta needy {
  add map need { key: ipv4.src, ipv4.dst; value: u64; max_entries: 120000; }
  add func need_touch() {
    let v: u64 = map_get(need, ipv4.src, ipv4.dst);
    map_put(need, ipv4.src, ipv4.dst, v + 1);
  }
  insert need_touch after count_flow;
}
"""


def tight_network() -> FlexNet:
    """A slice whose only stateful-capable hosts are one small switch —
    so the two big apps cannot coexist anywhere."""
    net = FlexNet()
    net.add_host("h1", cores=1, memory_mb=1.0, kernel_maps=2)
    net.add_switch("sw1", arch="drmt", sram_mb=3.0, tcam_mb=0.3, processors=12, alus=24)
    net.add_host("h2", cores=1, memory_mb=1.0, kernel_maps=2)
    net.connect("h1", "sw1")
    net.connect("sw1", "h2")
    net.build_datapath("h1", "h2")
    net.install(base_infrastructure(acl_size=128, l2_size=256, l3_size=256,
                                    flow_entries=2048))
    return net


def run_experiment():
    # Without GC: deploying both big apps must fail.
    first = tight_network()
    first.controller.deploy_app(
        "flexnet://infrastructure/cache", parse_delta(CACHE_DELTA),
        sla=AppSla(removable=False),  # nothing is GC-eligible
    )
    first.loop.run_until(first.loop.now + 2.0)
    failed_without_gc = False
    try:
        first.controller.deploy_app(
            "flexnet://infrastructure/needy", parse_delta(NEEDY_DELTA)
        )
    except PlacementError:
        failed_without_gc = True

    # With GC: mark the cache app removable; the loop evicts it.
    second = tight_network()
    second.controller.deploy_app(
        "flexnet://infrastructure/cache", parse_delta(CACHE_DELTA),
        sla=AppSla(removable=True),
    )
    second.loop.run_until(second.loop.now + 2.0)
    outcome = second.controller.deploy_app(
        "flexnet://infrastructure/needy", parse_delta(NEEDY_DELTA)
    )
    return {
        "failed_without_gc": failed_without_gc,
        "gc_evicted": outcome.gc_evicted,
        "iterations": outcome.compile_iterations,
        "needy_placed": "need" in outcome.result.new_plan.placement,
        "cache_gone": not second.program.has_map("cache"),
    }


def test_e6_gc_compilation(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E6: over-committed deployment — single-pass vs GC loop",
        ["outcome", "observed"],
        [
            ["single-pass compile (no removable apps)",
             "REJECTED" if result["failed_without_gc"] else "accepted"],
            ["GC loop compile iterations", result["iterations"]],
            ["apps evicted by GC", ", ".join(result["gc_evicted"]) or "none"],
            ["new app placed", result["needy_placed"]],
            ["evicted app removed from program", result["cache_gone"]],
        ],
    )
    assert result["failed_without_gc"]
    assert result["gc_evicted"] == ["flexnet://infrastructure/cache"]
    assert result["iterations"] >= 2  # needed at least one GC round
    assert result["needy_placed"]
    assert result["cache_gone"]
