"""E15 — FlexCheck: static reconfiguration-safety analysis (§3.3/§3.4).

The paper's admission story certifies *resource* safety (bounded ops
and state). FlexCheck adds *semantic* safety: it proves a runtime
change cannot race with in-flight packets, that co-resident tenants
cannot interfere through shared writable state, and that a program's
certified demand actually fits the targets — all before anything
touches a device.

This experiment demonstrates three concretely unsafe plans the
pre-FlexCheck system accepted (or only rejected late, deep inside
placement) and FlexCheck now rejects at analysis time:

1. a delta that shrinks a map while surviving elements still access it
   (a transition-window race under relaxed consistency);
2. a tenant extension that writes a base header field the operator's
   own pipeline reads, without a ``writable_fields`` grant;
3. a program whose certified TCAM demand no target in the slice can
   host (previously a late ``PlacementError``, now a pre-placement
   ``RES-ELEMENT-UNPLACEABLE`` with per-target deficits).
"""

from benchmarks.harness import print_table

from repro import analysis
from repro.apps.base import STANDARD_HEADERS, base_infrastructure, standard_builder
from repro.core.flexnet import FlexNet
from repro.errors import AnalysisError
from repro.lang import builder as b
from repro.lang.composition import Permission, TenantSpec
from repro.lang.delta import apply_delta, parse_delta
from repro.targets import drmt_switch

SHRINK = """
delta shrink {
  resize map flow_counts 1024;
}
"""


def racy_delta_case() -> dict:
    base = base_infrastructure()
    shrink = parse_delta(SHRINK)

    # The seed accepted this silently: the delta is well-typed, so
    # apply_delta and recertification both succeed.
    patched, changes = apply_delta(base, shrink)
    seed_accepted = patched.version == base.version + 1

    report = analysis.check(base, delta=shrink)
    codes = [f.code for f in report.errors]

    # Live wiring: non-strict updates escalate to the two-phase path,
    # strict ones refuse outright.
    net = FlexNet.standard()
    net.install(base_infrastructure())
    outcome = net.update(parse_delta(SHRINK))
    strict_rejected = False
    net2 = FlexNet.standard()
    net2.install(base_infrastructure())
    try:
        net2.update(parse_delta(SHRINK), strict=True)
    except AnalysisError:
        strict_rejected = True

    return {
        "seed_accepted": seed_accepted,
        "codes": codes,
        "forced_two_phase": outcome.forced_two_phase,
        "strict_rejected": strict_rejected,
    }


def tenant_interference_case() -> dict:
    base = base_infrastructure()

    ext = b.ProgramBuilder("ttl_rewriter", owner="tenant")
    for header, fields in STANDARD_HEADERS.items():
        ext.header(header, **fields)
    ext.function("bump", [b.assign("ipv4.ttl", 255)])
    ext.apply("bump")
    extension = ext.build()

    # The seed's composition layer only caught two *tenants* writing the
    # same field; one tenant silently clobbering a field the operator's
    # own ttl_guard reads sailed through.
    legacy = TenantSpec(name="t1", vlan_id=100, permission=Permission())
    seed_findings = analysis.check(base, tenants=[(legacy, extension)])
    seed_blocking = [
        f.code for f in seed_findings.errors if f.pass_name == "interference"
    ]

    restricted = TenantSpec(
        name="t1", vlan_id=100, permission=Permission(writable_fields=())
    )
    report = analysis.check(base, tenants=[(restricted, extension)])
    codes = [f.code for f in report.errors]

    return {"seed_blocking": seed_blocking, "codes": codes}


def overcommit_case() -> dict:
    program = standard_builder("tcam_hog")
    program.action("drop", [b.call("mark_drop")])
    program.table(
        "mega_acl",
        keys=[("ipv4.src", "ternary"), ("ipv4.dst", "ternary")],
        actions=["drop"],
        size=4_000_000,
        default="drop",
    )
    program.apply("mega_acl")
    built = program.build()

    # The seed's analyzer happily certified this; rejection only came
    # later, as a PlacementError mid-compilation.
    from repro.lang.analyzer import certify

    certificate = certify(built)
    seed_certified = certificate.max_packet_ops > 0

    report = analysis.check(built, target=drmt_switch("sw1"))
    codes = [f.code for f in report.errors]
    detail = next(
        (f.message for f in report.errors if f.code == "RES-ELEMENT-UNPLACEABLE"), ""
    )
    return {
        "seed_certified": seed_certified,
        "codes": codes,
        "names_deficit": "short" in detail,
    }


def run_experiment():
    return {
        "race": racy_delta_case(),
        "tenant": tenant_interference_case(),
        "overcommit": overcommit_case(),
    }


def test_e15_static_analysis(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    race, tenant, over = results["race"], results["tenant"], results["overcommit"]
    print_table(
        "E15: unsafe plans the seed accepted, now rejected at analysis time",
        ["case", "seed behaviour", "flexcheck verdict"],
        [
            ["map shrink vs live readers",
             "applied silently" if race["seed_accepted"] else "?",
             ", ".join(race["codes"])],
            ["tenant writes base ipv4.ttl",
             "composed silently" if not tenant["seed_blocking"] else "?",
             ", ".join(tenant["codes"])],
            ["4M-entry ternary ACL on dRMT",
             "certified, failed late in placement" if over["seed_certified"] else "?",
             ", ".join(over["codes"])],
        ],
    )
    print_table(
        "E15b: live enforcement",
        ["behaviour", "observed"],
        [
            ["relaxed update escalated to two-phase path", race["forced_two_phase"]],
            ["strict update rejected with AnalysisError", race["strict_rejected"]],
            ["unplaceable finding names per-target deficit", over["names_deficit"]],
        ],
    )

    # Case 1: the seed applied the racy shrink; FlexCheck flags it and
    # the controller either escalates or (strict) refuses.
    assert race["seed_accepted"]
    assert "RACE-MAP-RESIZE" in race["codes"]
    assert race["forced_two_phase"]
    assert race["strict_rejected"]

    # Case 2: legacy permissions let the write through silently (the
    # interference pass only notes it as informational); an explicit
    # writable_fields grant turns it into a blocking error.
    assert tenant["seed_blocking"] == []
    assert "TENANT-FIELD-PERM" in tenant["codes"]

    # Case 3: certification alone accepted the TCAM hog; the overcommit
    # pass rejects it before placement, naming the deficit.
    assert over["seed_certified"]
    assert "RES-ELEMENT-UNPLACEABLE" in over["codes"]
    assert over["names_deficit"]
