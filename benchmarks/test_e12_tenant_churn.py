"""E12 — Tenant churn at runtime (§1.1, §3 scenario).

Claims: "the number of virtual networks and their needs change rapidly
due to tenant churn"; FlexNet injects extensions on arrival and
"tenant departures trigger program removal to trim the network and
release unused resources" — all without downtime. Expected shape: a
Poisson arrival/departure process is absorbed entirely at runtime,
resource commitment on the switch tracks the live tenant count, the
composed program never leaks departed tenants' elements, and traffic
flows losslessly throughout.
"""


from benchmarks.harness import print_table

from repro.apps.base import STANDARD_HEADERS, base_infrastructure
from repro.core.flexnet import FlexNet
from repro.lang import builder as b
from repro.lang.builder import ProgramBuilder
from repro.lang.composition import Permission, TenantSpec
from repro.simulator.flowgen import tenant_churn


def tenant_extension(name: str):
    program = ProgramBuilder(f"{name}_ext", owner=name)
    for header, fields in STANDARD_HEADERS.items():
        program.header(header, **fields)
    program.map("hits", keys=["ipv4.src"], value_type="u32", max_entries=2048)
    program.function(
        "watch",
        [
            b.let("n", "u32", b.map_get("hits", "ipv4.src")),
            b.map_put("hits", "ipv4.src", b.binop("+", "n", 1)),
        ],
    )
    program.apply("watch")
    return program.build()


def run_experiment():
    net = FlexNet.standard()
    net.install(base_infrastructure())
    events = tenant_churn(
        arrival_rate_per_s=0.25, mean_lifetime_s=8.0, duration_s=30.0, seed=31
    )
    vlan = {"next": 100}
    log = {"arrivals": 0, "departures": 0, "live_peaks": []}
    demand_samples = []

    def handle(event):
        def run():
            if event.kind == "arrive":
                vlan["next"] += 1
                spec = TenantSpec(
                    name=event.tenant, vlan_id=vlan["next"], permission=Permission()
                )
                net.admit_tenant(spec, tenant_extension(event.tenant))
                log["arrivals"] += 1
            else:
                if event.tenant in net.controller.tenant_names:
                    net.evict_tenant(event.tenant)
                    log["departures"] += 1
            log["live_peaks"].append(len(net.controller.tenant_names))
            demand = net.controller.plan.device_demand.get("sw1")
            demand_samples.append(
                (len(net.controller.tenant_names), demand["sram_kb"] if demand else 0)
            )

        return run

    for event in events:
        net.schedule(event.time, handle(event))

    report = net.run_traffic(rate_pps=500, duration_s=30.0, extra_time_s=10.0)

    # After all events, evict any stragglers to verify full cleanup.
    for name in list(net.controller.tenant_names):
        net.evict_tenant(name)
        net.loop.run_until(net.loop.now + 1.0)
    leftover = [
        e for e in net.program.element_names if "__" in e
    ]
    return {
        "events": len(events),
        "arrivals": log["arrivals"],
        "departures": log["departures"],
        "max_live": max(log["live_peaks"], default=0),
        "lost": report.metrics.lost_by_infrastructure,
        "sent": report.metrics.sent,
        "leftover_elements": leftover,
        "demand_samples": demand_samples,
        "final_version": net.program.version,
    }


def test_e12_tenant_churn(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E12: Poisson tenant churn absorbed at runtime (30 s)",
        ["metric", "observed"],
        [
            ["churn events processed", results["events"]],
            ["arrivals / departures handled",
             f"{results['arrivals']} / {results['departures']}"],
            ["peak concurrent tenants", results["max_live"]],
            ["program versions applied", results["final_version"]],
            ["packets sent / lost", f"{results['sent']} / {results['lost']}"],
            ["tenant elements left after all depart", len(results["leftover_elements"])],
        ],
    )
    assert results["arrivals"] >= 3
    assert results["lost"] == 0
    assert results["leftover_elements"] == []
    # Resource commitment tracked the tenant count: samples with more
    # tenants never show less committed SRAM than the empty network.
    by_count = {}
    for count, sram in results["demand_samples"]:
        by_count.setdefault(count, []).append(sram)
    if 0 in by_count and results["max_live"] in by_count:
        assert min(by_count[results["max_live"]]) > min(by_count[0]) - 1e-9
