"""E17 — FlexPath compiled fast path vs the tree-walking interpreter.

The data-plane simulator's reference executor walks the IR tree with
isinstance dispatch on every packet. FlexPath compiles each program
version once into a closure tree (plus indexed table lookup and an
optional flow micro-cache) and must (a) run the E2 workload — base
infrastructure with the firewall delta applied, realistic rules — at
least **3x faster** in packets/second, and (b) produce **byte-identical
outcomes**: verdicts, fields, metadata, digests, op counts, map state,
and table counters.

The run writes ``BENCH_e17.json`` at the repo root (CI's bench-smoke
reads it) in addition to the bench_tables.txt row.
"""

from __future__ import annotations

import copy
import json
import pathlib
import time

from benchmarks.harness import fmt, print_table

from repro.apps import base_infrastructure, firewall_delta
from repro.lang.delta import apply_delta
from repro.lang.ir import ActionCall
from repro.simulator import fastpath
from repro.simulator.packet import make_packet
from repro.simulator.pipeline_exec import ProgramInstance
from repro.simulator.tables import Rule, exact, lpm, ternary

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_e17.json"

N_PACKETS = 4000
N_FLOWS = 64
TARGET_SPEEDUP = 3.0


def e2_program():
    """The E2 workload program: base infrastructure + firewall delta."""
    program, _ = apply_delta(base_infrastructure(), firewall_delta())
    return program


def realistic_rules(instance: ProgramInstance) -> None:
    """Operator-realistic rule content: a handful of entries that the
    traffic actually hits (L2 station entry, L3 prefixes, one ACL deny,
    one firewall block) — the regime the fast path is built for."""
    instance.rules["l2"].insert(
        Rule(matches=(exact(0x0000AABBCCDD),), action=ActionCall("forward", (2,)))
    )
    for prefix, port in ((0x0A010000, 3), (0x0A020000, 4), (0x0A030000, 5)):
        instance.rules["l3"].insert(
            Rule(matches=(lpm(prefix, 16),), action=ActionCall("forward", (port,)))
        )
    instance.rules["l3"].insert(
        Rule(matches=(lpm(0x0A000000, 8),), action=ActionCall("dec_ttl", ()))
    )
    # Deny one /24 of sources outright, and firewall-block one server.
    instance.rules["acl"].insert(
        Rule(
            matches=(ternary(0x0A00FF00, 0xFFFFFF00), ternary(0, 0)),
            action=ActionCall("drop", ()),
            priority=10,
        )
    )
    instance.rules["fw_block"].insert(
        Rule(
            matches=(ternary(0, 0), ternary(0x0A0200FE, 0xFFFFFFFF)),
            action=ActionCall("fw_drop", ()),
            priority=10,
        )
    )


def e2_corpus(count: int = N_PACKETS) -> list:
    """A flow mix over the installed prefixes: mostly forwarded, some
    ACL-denied, some firewall-blocked — every table exercised."""
    packets = []
    for i in range(count):
        flow = i % N_FLOWS
        src = 0x0A000000 | ((flow % 7) << 16) | ((0xFF00 if flow % 13 == 0 else flow) << 8) | (flow & 0xFF)
        dst = 0x0A010000 + (flow % 3) * 0x10000 + (0xFE if flow % 11 == 0 else flow)
        packets.append(
            make_packet(src, dst, src_port=1000 + flow, dst_port=80 + (flow % 4))
        )
    return packets


def _bench(instance: ProgramInstance, packets: list, cache=None) -> float:
    """Packets/second over one pass (packets are deep-copied per run so
    executors never see each other's header writes)."""
    work = [copy.deepcopy(p) for p in packets]
    start = time.perf_counter()
    if cache is None:
        process = instance.process
        for i, packet in enumerate(work):
            process(packet, i * 1e-4)
    else:
        process = cache.process
        for i, packet in enumerate(work):
            if process(instance, packet, i * 1e-4) is None:
                instance.process(packet, i * 1e-4)
    elapsed = time.perf_counter() - start
    return len(work) / elapsed


def run_experiment() -> dict:
    program = e2_program()
    packets = e2_corpus()

    # -- differential: compiled outcomes byte-identical to interpreted --
    diff = fastpath.differential_check(program, packets, setup=realistic_rules)

    # -- throughput: interpreted vs compiled (full program) --------------
    interp = ProgramInstance(program)
    realistic_rules(interp)
    compiled = ProgramInstance(program)
    realistic_rules(compiled)
    compiled.enable_fastpath()

    _bench(interp, packets[:500])  # warm both paths (index/closure build)
    _bench(compiled, packets[:500])
    # Best of two passes per executor: pps is noise-bounded from above,
    # so the max is the better estimate of each executor's true rate.
    interp_pps = max(_bench(interp, packets) for _ in range(2))
    compiled_pps = max(_bench(compiled, packets) for _ in range(2))

    # -- compiled + flow cache on the stateless hosted slice -------------
    # (the whole program writes flow_counts, so whole-program caching is
    # statically rejected; a device hosting only the stateless tables —
    # the paper's disaggregation story — caches its slice.)
    hosted = {"acl", "fw_block", "l2", "l3", "ttl_guard"}
    sliced = ProgramInstance(program, hosted_elements=set(hosted))
    realistic_rules(sliced)
    sliced.enable_fastpath()
    cache = fastpath.FlowCache()
    _bench(sliced, packets[:500], cache=cache)
    cached_pps = _bench(sliced, packets, cache=cache)

    return {
        "packets": len(packets),
        "flows": N_FLOWS,
        "divergences": len(diff.divergences),
        "interpreted_pps": interp_pps,
        "compiled_pps": compiled_pps,
        "compiled_cached_pps": cached_pps,
        "speedup_compiled": compiled_pps / interp_pps,
        "speedup_cached": cached_pps / interp_pps,
        "cache_stats": cache.stats.to_dict(),
    }


def test_e17_fastpath(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_table(
        f"E17: FlexPath fast path on the E2 workload "
        f"({results['packets']} packets, {results['flows']} flows)",
        ["executor", "pps", "speedup", "divergences"],
        [
            ["interpreter (reference)", fmt(results["interpreted_pps"], 4), "1.0x", 0],
            [
                "FlexPath compiled",
                fmt(results["compiled_pps"], 4),
                f"{results['speedup_compiled']:.2f}x",
                results["divergences"],
            ],
            [
                "FlexPath + flow cache (stateless slice)",
                fmt(results["compiled_cached_pps"], 4),
                f"{results['speedup_cached']:.2f}x",
                f"hit rate {results['cache_stats']['hit_rate']:.0%}",
            ],
        ],
    )

    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")

    assert results["divergences"] == 0
    assert results["speedup_compiled"] >= TARGET_SPEEDUP, results["speedup_compiled"]
    assert results["cache_stats"]["hits"] > 0
    assert results["cache_stats"]["bypasses"] == 0
