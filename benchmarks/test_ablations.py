"""A1-A4 — Ablations of FlexNet design choices (DESIGN.md §4).

Each ablation disables one mechanism and shows the property it buys:

* A1 epoch stamping — without honouring upstream version stamps,
  per-packet path consistency breaks during multi-device transitions.
* A2 batched device transactions — applying a delta's steps serially
  instead of as one batched transaction pushes multi-element changes
  past the paper's one-second envelope.
* A3 survivor pinning — the incremental compiler without pins degrades
  to full recompilation (gratuitous moves + state migrations).
* A4 routing detours — without routing/placement co-design, capacity
  stranded off-path is unreachable.
"""


from benchmarks.harness import fmt, print_table

from repro.apps.base import base_infrastructure
from repro.apps.firewall import firewall_delta
from repro.core.flexnet import FlexNet
from repro.errors import PlacementError
from repro.lang.delta import parse_delta
from repro.runtime import reconfig as reconfig_module
from repro.runtime.consistency import ConsistencyLevel


def multi_device_net() -> FlexNet:
    net = FlexNet()
    net.add_host("h1")
    net.add_smartnic("nic1")
    net.add_switch("swA", arch="drmt", sram_mb=0.35, tcam_mb=0.2, processors=8, alus=16)
    net.add_switch("swB", arch="drmt")
    net.add_smartnic("nic2")
    net.add_host("h2")
    for a, b in [("h1", "nic1"), ("nic1", "swA"), ("swA", "swB"), ("swB", "nic2"), ("nic2", "h2")]:
        net.connect(a, b, 2e-6)
    net.build_datapath("h1", "h2")
    net.install(base_infrastructure())
    return net


def a1_epoch_stamping() -> dict:
    """Run the same multi-device transition with and without stamping."""
    from repro.runtime.device import DeviceRuntime

    def run(stamping: bool) -> int:
        original = DeviceRuntime.process
        if not stamping:
            def process_no_stamp(self, packet, now):
                packet.meta.pop("_epoch", None)  # forget upstream decisions
                return original(self, packet, now)

            DeviceRuntime.process = process_no_stamp
        try:
            net = multi_device_net()
            net.schedule(
                0.5,
                lambda: net.update(
                    firewall_delta(), consistency=ConsistencyLevel.PER_PACKET_PATH
                ),
            )
            report = net.run_traffic(
                rate_pps=3000, duration_s=2.0,
                consistency_level=ConsistencyLevel.PER_PACKET_PATH, extra_time_s=3.0,
            )
            return report.consistency.report().violations
        finally:
            DeviceRuntime.process = original

    return {"with": run(True), "without": run(False)}


def a2_batched_transactions() -> dict:
    def run(batched: bool) -> float:
        original = reconfig_module.BATCH_OVERHEAD_FRACTION
        reconfig_module.BATCH_OVERHEAD_FRACTION = 0.2 if batched else 1.0
        try:
            net = FlexNet.standard()
            net.install(base_infrastructure())
            outcome = net.update(firewall_delta())
            net.loop.run()
            return outcome.report.duration_s
        finally:
            reconfig_module.BATCH_OVERHEAD_FRACTION = original

    return {"with": run(True), "without": run(False)}


def a3_survivor_pinning() -> dict:
    from benchmarks.test_e7_incremental import run_experiment

    results = run_experiment()
    return {
        "with": results["totals"]["incremental"]["moved"],
        "without": results["totals"]["full"]["moved"],
    }


def a4_detours() -> dict:
    from tests.control.test_detour import BIG_APP, diamond_controller

    without = diamond_controller()
    rejected = False
    try:
        without.deploy_app("flexnet://infrastructure/big", parse_delta(BIG_APP))
    except PlacementError:
        rejected = True

    with_detour = diamond_controller()
    with_detour.deploy_app(
        "flexnet://infrastructure/big", parse_delta(BIG_APP), allow_detour=True
    )
    return {
        "without_rejected": rejected,
        "with_path": with_detour.datapath_path,
    }


def run_experiment():
    return {
        "a1": a1_epoch_stamping(),
        "a2": a2_batched_transactions(),
        "a3": a3_survivor_pinning(),
        "a4": a4_detours(),
    }


def test_ablations(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    a1, a2, a3, a4 = results["a1"], results["a2"], results["a3"], results["a4"]
    print_table(
        "A1-A4: design-choice ablations",
        ["mechanism", "with", "without"],
        [
            ["epoch stamping (path violations)", a1["with"], a1["without"]],
            ["batched transactions (transition s)", fmt(a2["with"]), fmt(a2["without"])],
            ["survivor pinning (moved elements)", a3["with"], a3["without"]],
            ["routing detours (big app deployable)",
             f"yes via {a4['with_path'][1]}", "no" if a4["without_rejected"] else "yes"],
        ],
    )
    assert a1["with"] == 0
    assert a1["without"] > 0  # stamping is load-bearing for path consistency
    assert a2["with"] < a2["without"]  # batching is what keeps windows sub-second
    assert a3["with"] < a3["without"]  # pinning is what makes changes adjacent
    assert a4["without_rejected"]
    assert a4["with_path"] == ["h1", "swB", "h2"]
