"""F1 — Figure 1: the full FlexNet pipeline, end to end.

The paper's only figure shows the system shape: a FlexBPF program plus
runtime extensions enter the compiler, which distributes components
vertically and horizontally over the fungible datapath; a central
controller pilots the network in real time. This benchmark drives that
entire pipeline — program authoring, certification, placement,
cold install, live traffic, two runtime extensions (security + CC),
an app migration, and a tenant arrival — and measures the wall-clock
cost of the whole control loop.
"""

from benchmarks.harness import print_table

from repro.apps import base_infrastructure, dctcp_delta, firewall_delta, STANDARD_HEADERS
from repro.core.flexnet import FlexNet
from repro.lang import builder as b
from repro.lang.builder import ProgramBuilder
from repro.lang.composition import Permission, TenantSpec
from repro.runtime.consistency import ConsistencyLevel


def tenant_extension():
    program = ProgramBuilder("ext", owner="tenant")
    for header, fields in STANDARD_HEADERS.items():
        program.header(header, **fields)
    program.map("hits", keys=["ipv4.src"], value_type="u32", max_entries=512)
    program.function(
        "watch",
        [
            b.let("n", "u32", b.map_get("hits", "ipv4.src")),
            b.map_put("hits", "ipv4.src", b.binop("+", "n", 1)),
        ],
    )
    program.apply("watch")
    return program.build()


def full_pipeline() -> dict:
    net = FlexNet.standard()
    plan = net.install(base_infrastructure())

    net.schedule(0.5, lambda: net.update(
        firewall_delta(), consistency=ConsistencyLevel.PER_PACKET_PATH))
    net.schedule(2.0, lambda: net.update(dctcp_delta()))
    net.schedule(3.5, lambda: net.admit_tenant(
        TenantSpec(name="t1", vlan_id=100, permission=Permission()), tenant_extension()))
    net.schedule(5.0, lambda: net.controller.migrate_app(
        "flexnet://t1/extension", "nic2"))

    report = net.run_traffic(
        rate_pps=1000,
        duration_s=6.0,
        consistency_level=ConsistencyLevel.PER_PACKET_PATH,
        extra_time_s=4.0,
    )
    final_plan = net.controller.plan
    consistency = report.consistency.report()
    return {
        "initial_elements": len(plan.placement),
        "final_elements": len(final_plan.placement),
        "final_version": net.program.version,
        "devices_used": final_plan.devices_used,
        "sent": report.metrics.sent,
        "lost": report.metrics.lost_by_infrastructure,
        "violation_fraction": consistency.violations / max(consistency.packets_checked, 1),
        "tenant_on": net.controller.app("flexnet://t1/extension").devices,
    }


def test_fig1_pipeline(benchmark):
    result = benchmark.pedantic(full_pipeline, rounds=1, iterations=1)
    print_table(
        "F1: Figure-1 pipeline (program -> compiler -> controller -> live network)",
        ["stage", "observed"],
        [
            ["elements placed (initial -> final)",
             f"{result['initial_elements']} -> {result['final_elements']}"],
            ["program versions applied", result["final_version"]],
            ["devices hosting components", ", ".join(result["devices_used"])],
            ["packets sent / lost", f"{result['sent']} / {result['lost']}"],
            ["path-mixture fraction (mixed-level updates)",
             f"{result['violation_fraction']:.3%}"],
            ["tenant app after migration", ", ".join(result["tenant_on"])],
        ],
    )
    assert result["lost"] == 0
    # Only the firewall update requested path consistency; the CC, tenant
    # and migration transitions ran at per-device level, so a small
    # cross-device mixture during their windows is expected (and bounded).
    # E2 verifies the strict guarantee per level in isolation.
    assert result["violation_fraction"] < 0.10
    assert result["final_version"] >= 4
    assert result["tenant_on"] == ["nic2"]
    assert len(result["devices_used"]) >= 2  # vertical distribution happened
