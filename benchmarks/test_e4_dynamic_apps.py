"""E4 — Dynamic apps without compile-time anticipation (§1.1).

Claims: today's approximations "work by baking all needed logic at
compile time" (Mantis/DynamiQ) or emulating programs behind a
virtualization layer with overheads (HyPer4); FlexNet deploys exactly
what is needed, when needed. Expected shape, as the number of distinct
runtime-requested behaviours grows past what was provisioned:

* Mantis-style satisfies only pre-baked behaviours (instantly), fails
  the rest, and pins resources for idle slots;
* HyPer4-style satisfies everything at rule-install speed but pays a
  multiplicative per-packet overhead on all traffic;
* FlexNet satisfies everything hitlessly at sub-second cost with no
  standing overhead.
"""


from benchmarks.harness import fmt, print_table

from repro.apps.base import base_infrastructure, standard_builder
from repro.baselines.hyper4 import Hyper4Device
from repro.baselines.mantis import MantisDevice, ProvisionedSlot
from repro.core.flexnet import FlexNet
from repro.lang import builder as b
from repro.lang import ir
from repro.lang.analyzer import certify
from repro.lang.delta import AddFunction, AddMap, Delta, InsertApply
from repro.lang.types import BitsType
from repro.targets import drmt_switch, rmt_switch
from repro.targets.resources import ResourceVector

PROVISIONED = 4  # behaviours anticipated at compile time
DEMANDED = 10  # behaviours actually requested at runtime


def behaviour_delta(index: int) -> Delta:
    """A small distinct monitoring behaviour (per-key counter)."""
    map_def = ir.MapDef(
        name=f"beh{index}_state",
        key_fields=(b.field("ipv4.src"),),
        value_type=BitsType(32),
        max_entries=1024,
    )
    function = ir.FunctionDef(
        name=f"beh{index}",
        body=(
            b.let("v", "u32", b.map_get(f"beh{index}_state", "ipv4.src")),
            b.map_put(f"beh{index}_state", "ipv4.src", b.binop("+", "v", index + 1)),
        ),
    )
    return Delta(
        name=f"behaviour{index}",
        ops=(AddMap(map_def), AddFunction(function), InsertApply(element=f"beh{index}")),
    )


def flexnet_run() -> dict:
    net = FlexNet.standard()
    net.install(base_infrastructure())
    satisfied = 0
    total_window = 0.0
    for index in range(DEMANDED):
        outcome = net.update(behaviour_delta(index))
        net.loop.run_until(net.loop.now + 2.0)
        satisfied += 1
        total_window += outcome.report.duration_s
    report = net.run_traffic(rate_pps=500, duration_s=1.0)
    return {
        "satisfied": satisfied,
        "mean_deploy_s": total_window / DEMANDED,
        "lost": report.metrics.lost_by_infrastructure,
        "per_packet_overhead": 1.0,  # native execution
    }


def mantis_run() -> dict:
    device = MantisDevice(target=rmt_switch("sw", runtime_capable=False))
    for index in range(PROVISIONED):
        device.provision(
            ProvisionedSlot(f"beh{index}", ResourceVector(sram_kb=600, alus=2))
        )
    satisfied = 0
    reflashes = 0
    latencies = []
    for index in range(DEMANDED):
        result = device.activate(f"beh{index}")
        latencies.append(result.latency_s)
        if result.satisfied:
            satisfied += 1
        else:
            reflashes += 1
    return {
        "satisfied": satisfied,
        "reflashes_needed": reflashes,
        "mean_deploy_s": sum(latencies) / len(latencies),
        "idle_pinned_sram_kb": device.wasted_resources["sram_kb"],
    }


def hyper4_run() -> dict:
    device = Hyper4Device(drmt_switch("sw"))
    satisfied = 0
    deploys = []
    overhead = 1.0
    for index in range(DEMANDED):
        program = standard_builder(f"beh{index}")
        program.map("state", keys=["ipv4.src"], value_type="u32", max_entries=1024)
        program.function(
            "f",
            [
                b.let("v", "u32", b.map_get("state", "ipv4.src")),
                b.map_put("state", "ipv4.src", b.binop("+", "v", 1)),
            ],
        )
        program.apply("f")
        report = device.deploy(certify(program.build()))
        deploys.append(report.deploy_latency_s)
        if report.fits:
            satisfied += 1
            overhead = max(overhead, report.latency_overhead)
    return {
        "satisfied": satisfied,
        "mean_deploy_s": sum(deploys) / len(deploys),
        "per_packet_overhead": overhead,
    }


def run_experiment():
    return {"flexnet": flexnet_run(), "mantis": mantis_run(), "hyper4": hyper4_run()}


def test_e4_dynamic_apps(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    flex, mantis, hyper4 = results["flexnet"], results["mantis"], results["hyper4"]
    rows = [
        ["behaviours satisfied (of 10 demanded)", flex["satisfied"],
         mantis["satisfied"], hyper4["satisfied"]],
        ["mean deploy latency (s)", fmt(flex["mean_deploy_s"]),
         fmt(mantis["mean_deploy_s"]), fmt(hyper4["mean_deploy_s"])],
        ["per-packet latency overhead", "1.0x", "1.0x",
         f"{hyper4['per_packet_overhead']:.2f}x"],
        ["idle resources pinned (SRAM KB)", 0,
         fmt(mantis["idle_pinned_sram_kb"]), "interpreter scaffolding"],
    ]
    print_table(
        f"E4: {DEMANDED} runtime behaviours, {PROVISIONED} anticipated at compile time",
        ["metric", "FlexNet", "Mantis-style", "HyPer4-style"],
        rows,
    )
    assert flex["satisfied"] == DEMANDED
    assert flex["lost"] == 0
    assert mantis["satisfied"] == PROVISIONED  # only what was anticipated
    assert mantis["reflashes_needed"] == DEMANDED - PROVISIONED
    assert hyper4["satisfied"] == DEMANDED
    assert hyper4["per_packet_overhead"] > 1.2  # emulation tax on every packet
    assert flex["mean_deploy_s"] < 1.0
