"""Packet model tests."""

import pytest

from repro.simulator.packet import (
    PACKET_ID_SHARD_SHIFT,
    FiveTuple,
    Packet,
    Verdict,
    make_packet,
    reset_packet_ids,
)


class TestPacket:
    def test_make_packet_standard_headers(self):
        packet = make_packet(src_ip=1, dst_ip=2, proto=6)
        assert packet.get_field("ipv4", "src") == 1
        assert packet.get_field("ipv4", "dst") == 2
        assert packet.has_header("ethernet")
        assert packet.has_header("tcp")

    def test_unique_ids(self):
        assert make_packet(1, 2).packet_id != make_packet(1, 2).packet_id

    def test_absent_field_reads_zero(self):
        assert make_packet(1, 2).get_field("vxlan", "vni") == 0

    def test_set_field(self):
        packet = make_packet(1, 2)
        packet.set_field("ipv4", "ttl", 9)
        assert packet.get_field("ipv4", "ttl") == 9

    def test_verdict_default_forward(self):
        packet = make_packet(1, 2)
        assert packet.verdict is Verdict.FORWARD
        assert not packet.dropped

    def test_latency_requires_delivery(self):
        packet = make_packet(1, 2, created_at=1.0)
        assert packet.latency_s is None
        packet.delivered_at = 1.5
        assert packet.latency_s == 0.5

    def test_meta_defaults(self):
        packet = make_packet(1, 2, vlan_id=7)
        assert packet.meta["vlan_id"] == 7
        assert packet.meta["drop_flag"] == 0


class TestPacketIdNamespaces:
    def test_reset_restarts_default_namespace_at_one(self):
        reset_packet_ids()
        assert make_packet(1, 2).packet_id == 1
        assert make_packet(1, 2).packet_id == 2

    def test_shard_namespace_offsets_counter(self):
        try:
            reset_packet_ids(3)
            first = make_packet(1, 2).packet_id
            second = make_packet(1, 2).packet_id
            assert first == (3 << PACKET_ID_SHARD_SHIFT) + 1
            assert second == first + 1
        finally:
            reset_packet_ids()

    def test_namespaces_cannot_collide(self):
        # A worker would have to allocate 2**48 packets to run into the
        # next shard's namespace.
        try:
            ids = []
            for shard in (0, 1, 2):
                reset_packet_ids(shard)
                ids.append(make_packet(1, 2).packet_id)
            assert len(set(ids)) == 3
            assert ids == sorted(ids)
        finally:
            reset_packet_ids()

    def test_negative_namespace_rejected(self):
        with pytest.raises(ValueError):
            reset_packet_ids(-1)


class TestFiveTuple:
    def test_of_packet(self):
        packet = make_packet(1, 2, proto=17, src_port=5, dst_port=53)
        flow = FiveTuple.of(packet)
        assert flow == FiveTuple(src_ip=1, dst_ip=2, proto=17, src_port=5, dst_port=53)

    def test_hashable_key(self):
        first = FiveTuple.of(make_packet(1, 2))
        second = FiveTuple.of(make_packet(1, 2))
        assert first == second
        assert hash(first) == hash(second)
