"""FlexPath tests: compiled execution is byte-identical to the
interpreter, and the flow micro-cache never serves a stale verdict."""

import copy

import pytest

from repro.analysis.cacheability import decide
from repro.analysis.corpus import bundled_programs
from repro.analysis.dataflow import analyze
from repro.apps import base_infrastructure, firewall_delta
from repro.control.p4runtime import P4RuntimeClient
from repro.lang.delta import apply_delta
from repro.lang.ir import ActionCall
from repro.runtime.device import DeviceRuntime
from repro.simulator import fastpath
from repro.simulator.packet import Verdict, make_packet
from repro.simulator.pipeline_exec import ProgramInstance
from repro.simulator.tables import Rule, exact, ternary
from repro.targets import drmt_switch

PROGRAMS = bundled_programs()


def stateless_slice(program) -> set:
    """The hosted elements a cache-friendly device would run: every
    applied element that writes no map."""
    info = analyze(program)
    return {
        name for name in info.applied if not info.element_access(name).map_writes
    }


# ---------------------------------------------------------------------------
# Differential: compiled vs interpreted
# ---------------------------------------------------------------------------


class TestDifferential:
    @pytest.mark.parametrize(
        "label,program", PROGRAMS, ids=[label for label, _ in PROGRAMS]
    )
    def test_bundled_program_default_rules(self, label, program):
        packets = fastpath.seeded_corpus(120, seed=7)
        report = fastpath.differential_check(program, packets)
        assert report.ok, "\n".join(str(d) for d in report.divergences)

    @pytest.mark.parametrize(
        "label,program", PROGRAMS, ids=[label for label, _ in PROGRAMS]
    )
    def test_bundled_program_seeded_rules(self, label, program):
        packets = fastpath.seeded_corpus(120, seed=11)

        def setup(instance):
            fastpath.seeded_rules(program, instance, seed=13)

        report = fastpath.differential_check(program, packets, setup=setup)
        assert report.ok, "\n".join(str(d) for d in report.divergences)

    def test_hosted_slice_differential(self):
        program, _ = apply_delta(base_infrastructure(), firewall_delta())
        hosted = stateless_slice(program)
        packets = fastpath.seeded_corpus(100, seed=3)
        report = fastpath.differential_check(
            program, packets, hosted_elements=hosted
        )
        assert report.ok, "\n".join(str(d) for d in report.divergences)

    def test_ops_accounting_exact(self):
        """The certificate-facing op counter is bit-for-bit identical —
        not approximately: FlexCheck's bounds must mean the same thing
        under both executors."""
        program = base_infrastructure()
        interp = ProgramInstance(program)
        compiled = ProgramInstance(program)
        compiled.enable_fastpath()
        for i, packet in enumerate(fastpath.seeded_corpus(60, seed=21)):
            a = interp.process(copy.deepcopy(packet), i * 1e-4)
            b = compiled.process(copy.deepcopy(packet), i * 1e-4)
            assert a.ops == b.ops

    def test_recirculation_counted(self):
        """A compiled program that recirculates reports the same count
        as the interpreter (the seeded differentials above compare the
        field on every packet; this pins the plumbing explicitly)."""
        from repro.apps.base import standard_builder
        from repro.lang import builder as b

        builder = standard_builder("recirc")
        builder.function(
            "bounce",
            [
                b.if_(
                    b.binop("==", "meta.bounced", 0),
                    [b.assign("meta.bounced", 1), b.call("recirculate")],
                )
            ],
        )
        builder.apply("bounce")
        program = builder.build()
        interp = ProgramInstance(program)
        compiled = ProgramInstance(program)
        compiled.enable_fastpath()
        a = interp.process(make_packet(1, 2), 0.0)
        b_ = compiled.process(make_packet(1, 2), 0.0)
        assert a.recirculations == b_.recirculations == 1
        assert a.ops == b_.ops


class TestEnableDisable:
    def test_disable_falls_back_to_interpreter(self):
        program = base_infrastructure()
        instance = ProgramInstance(program)
        instance.enable_fastpath()
        instance.process(make_packet(1, 2), 0.0)
        assert instance._compiled is not None
        instance.enable_fastpath(False)
        assert instance._compiled is None
        packet = make_packet(1, 2)
        instance.process(packet, 0.0)
        assert packet.verdict is Verdict.FORWARD

    def test_compiled_artifact_reused_across_packets(self):
        instance = ProgramInstance(base_infrastructure())
        instance.enable_fastpath()
        instance.process(make_packet(1, 2), 0.0)
        artifact = instance._compiled
        instance.process(make_packet(3, 4), 1e-4)
        assert instance._compiled is artifact

    def test_rules_inserted_after_compile_visible(self):
        """The compiled closures index the live rule stores — a rule
        inserted after the first packet must take effect."""
        instance = ProgramInstance(base_infrastructure())
        instance.enable_fastpath()
        packet = make_packet(0xDEAD, 2)
        instance.process(copy.deepcopy(packet), 0.0)
        instance.rules["acl"].insert(
            Rule(
                matches=(ternary(0xDEAD, 0xFFFFFFFF), ternary(0, 0)),
                action=ActionCall("drop"),
                priority=5,
            )
        )
        blocked = copy.deepcopy(packet)
        instance.process(blocked, 1e-4)
        assert blocked.verdict is Verdict.DROP


# ---------------------------------------------------------------------------
# Cacheability analysis
# ---------------------------------------------------------------------------


class TestCacheability:
    def test_whole_program_with_map_write_rejected(self):
        program = base_infrastructure()  # count_flow writes flow_counts
        decision = decide(program)
        assert not decision.cacheable
        assert any("flow_counts" in reason for reason in decision.reasons)

    def test_stateless_hosted_slice_cacheable(self):
        program, _ = apply_delta(base_infrastructure(), firewall_delta())
        decision = decide(program, stateless_slice(program))
        assert decision.cacheable
        assert "acl" in decision.applied_tables
        assert "fw_block" in decision.applied_tables
        # written fields participate in the key (replay validity).
        assert ("ipv4", "ttl") in decision.key_fields

    def test_slice_including_map_writer_rejected(self):
        program, _ = apply_delta(base_infrastructure(), firewall_delta())
        hosted = stateless_slice(program) | {"fw_track"}
        decision = decide(program, hosted)
        assert not decision.cacheable  # fw_track writes fw_conns
        assert any("fw_conns" in reason for reason in decision.reasons)


# ---------------------------------------------------------------------------
# Flow cache: correctness and invalidation
# ---------------------------------------------------------------------------


def cached_device(program=None, hosted=None):
    program = program or base_infrastructure()
    hosted = hosted if hosted is not None else stateless_slice(program)
    device = DeviceRuntime("sw1", drmt_switch("sw1"))
    device.install(program, hosted_elements=set(hosted))
    device.enable_fastpath(flow_cache=True, cache_capacity=64)
    return device


class TestFlowCache:
    def test_hits_and_identical_outcomes(self):
        plain = DeviceRuntime("ref", drmt_switch("ref"))
        plain.install(base_infrastructure(), hosted_elements=stateless_slice(
            base_infrastructure()
        ))
        device = cached_device()
        flows = [make_packet(i % 8, 100 + i % 8) for i in range(64)]
        for i, packet in enumerate(flows):
            mine, theirs = copy.deepcopy(packet), copy.deepcopy(packet)
            device.process(mine, i * 1e-4)
            plain.process(theirs, i * 1e-4)
            assert mine.verdict is theirs.verdict
            assert mine.fields == theirs.fields
            assert mine.meta == theirs.meta
        stats = device.flow_cache.stats
        assert stats.hits > 0 and stats.bypasses == 0

    def test_table_counters_replayed(self):
        device = cached_device()
        reference = DeviceRuntime("ref", drmt_switch("ref"))
        reference.install(
            base_infrastructure(),
            hosted_elements=stateless_slice(base_infrastructure()),
        )
        for i in range(30):
            packet = make_packet(i % 3, 50)
            device.process(copy.deepcopy(packet), i * 1e-4)
            reference.process(copy.deepcopy(packet), i * 1e-4)
        mine = device.active_instance.rules["l3"]
        theirs = reference.active_instance.rules["l3"]
        assert mine.miss_count == theirs.miss_count
        assert mine.hit_counts == theirs.hit_counts

    def test_rule_insert_invalidates(self):
        device = cached_device()
        blocked = make_packet(0xBAD, 7)
        device.process(copy.deepcopy(blocked), 0.0)
        device.process(copy.deepcopy(blocked), 1e-4)  # cached now
        assert device.flow_cache.stats.hits >= 1
        client = P4RuntimeClient(device)
        from repro.control.p4runtime import TableEntry

        client.insert_entry(
            TableEntry(
                table="acl",
                matches=(ternary(0xBAD, 0xFFFFFFFF), ternary(0, 0)),
                action="drop",
                priority=9,
            )
        )
        after = copy.deepcopy(blocked)
        device.process(after, 2e-4)
        assert after.verdict is Verdict.DROP  # not the stale FORWARD
        assert device.flow_cache.stats.invalidations >= 1

    def test_rule_remove_invalidates(self):
        device = cached_device()
        rule = Rule(
            matches=(ternary(0xBAD, 0xFFFFFFFF), ternary(0, 0)),
            action=ActionCall("drop"),
            priority=9,
        )
        device.active_instance.rules["acl"].insert(rule)
        blocked = make_packet(0xBAD, 7)
        device.process(copy.deepcopy(blocked), 0.0)
        device.process(copy.deepcopy(blocked), 1e-4)
        device.active_instance.rules["acl"].remove(rule)
        after = copy.deepcopy(blocked)
        device.process(after, 2e-4)
        assert after.verdict is Verdict.FORWARD

    def test_meter_set_forces_bypass_and_clear_resumes(self):
        from repro.simulator.meters import Meter, MeterConfig

        device = cached_device()
        packet = make_packet(1, 2)
        device.process(copy.deepcopy(packet), 0.0)
        device.process(copy.deepcopy(packet), 1e-4)
        hits_before = device.flow_cache.stats.hits
        assert hits_before >= 1

        table = device.active_instance.rules["acl"]
        table.meter = Meter(MeterConfig(rate_pps=1000.0, burst_packets=10.0))
        device.process(copy.deepcopy(packet), 2e-4)
        assert device.flow_cache.stats.bypasses >= 1

        table.meter = None  # detach: caching resumes
        device.process(copy.deepcopy(packet), 3e-4)
        device.process(copy.deepcopy(packet), 4e-4)
        assert device.flow_cache.stats.hits > hits_before

    def test_map_write_invalidates_via_mutation_counter(self):
        """A control-plane write to a map the program *reads* must drop
        cached outcomes (the map's mutation counter is in the token)."""
        from repro.apps.base import standard_builder
        from repro.lang import builder as b

        builder = standard_builder("blocklist")
        builder.map("blocked", keys=["ipv4.src"], value_type="u64", max_entries=64)
        builder.function(
            "check",
            [
                b.if_(
                    b.binop("==", b.map_get("blocked", "ipv4.src"), 1),
                    [b.call("mark_drop")],
                )
            ],
        )
        builder.apply("check")
        program = builder.build()
        assert decide(program).cacheable  # read-only: whole program caches

        device = cached_device(program)
        packet = make_packet(5, 2)
        device.process(copy.deepcopy(packet), 0.0)
        cached = copy.deepcopy(packet)
        device.process(cached, 1e-4)
        assert cached.verdict is Verdict.FORWARD
        assert device.flow_cache.stats.hits >= 1

        device.active_instance.maps.state("blocked").put((5,), 1)
        after = copy.deepcopy(packet)
        device.process(after, 2e-4)
        assert after.verdict is Verdict.DROP  # not the stale FORWARD
        assert device.flow_cache.stats.invalidations >= 1

    def test_mid_run_reconfig_no_stale_verdicts(self):
        program = base_infrastructure()
        hosted = stateless_slice(program)
        device = cached_device(program, hosted)
        reference = DeviceRuntime("ref", drmt_switch("ref"))
        reference.install(program, hosted_elements=set(hosted))

        flows = [make_packet(i % 6, 40 + i % 6) for i in range(24)]
        for i, packet in enumerate(flows):
            device.process(copy.deepcopy(packet), i * 1e-4)
            reference.process(copy.deepcopy(packet), i * 1e-4)

        patched, _ = apply_delta(program, firewall_delta())
        new_hosted = stateless_slice(patched)
        device.begin_hitless_update(patched, now=1.0, duration_s=0.2,
                                    hosted_elements=set(new_hosted))
        reference.begin_hitless_update(patched, now=1.0, duration_s=0.2,
                                       hosted_elements=set(new_hosted))

        # During and after the window, cached and uncached agree packet
        # for packet (the cache bypasses mid-transition, then re-keys).
        for i, packet in enumerate(flows * 2):
            now = 1.05 + i * 0.01
            mine, theirs = copy.deepcopy(packet), copy.deepcopy(packet)
            device.process(mine, now)
            reference.process(theirs, now)
            assert mine.verdict is theirs.verdict, (i, now)
            assert mine.fields == theirs.fields
            assert mine.meta == theirs.meta

    def test_lru_eviction_bounded(self):
        device = cached_device()
        for i in range(200):
            device.process(make_packet(i, i + 1), i * 1e-4)
        assert len(device.flow_cache) <= 64


class TestFlexNetFacade:
    def test_enable_fastpath_all_devices(self, flexnet):
        flexnet.engine(fastpath=True)
        for device in flexnet.controller.devices.values():
            assert device._fastpath
        report = flexnet.run_traffic(rate_pps=500, duration_s=0.2)
        assert report.metrics.lost_by_infrastructure == 0
        assert report.metrics.delivered > 0
