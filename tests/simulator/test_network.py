"""Network transport tests."""

import pytest

from repro.errors import SimulationError
from repro.simulator.engine import EventLoop
from repro.simulator.metrics import RunMetrics
from repro.simulator.network import Network
from repro.simulator.packet import Verdict, make_packet


class FakeNode:
    """A configurable PacketProcessor."""

    def __init__(self, name, latency_s=1e-6, drop=False, down_until=0.0):
        self.name = name
        self.latency_s = latency_s
        self.drop = drop
        self.down_until = down_until
        self.seen = []

    def available(self, now):
        return now >= self.down_until

    def process(self, packet, now):
        self.seen.append(packet.packet_id)
        if self.drop:
            packet.meta["drop_flag"] = 1
            packet.verdict = Verdict.DROP
        return self.latency_s


def two_hop_network():
    net = Network(EventLoop())
    a, b_ = FakeNode("a"), FakeNode("b")
    net.add_node(a)
    net.add_node(b_)
    net.add_link("a", "b", 1e-3)
    net.define_path("p", ["a", "b"])
    return net, a, b_


class TestTopology:
    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_node(FakeNode("a"))
        with pytest.raises(SimulationError):
            net.add_node(FakeNode("a"))

    def test_unknown_node_rejected(self):
        with pytest.raises(SimulationError):
            Network().node("ghost")

    def test_link_requires_nodes(self):
        net = Network()
        net.add_node(FakeNode("a"))
        with pytest.raises(SimulationError):
            net.add_link("a", "ghost")

    def test_path_requires_links(self):
        net = Network()
        net.add_node(FakeNode("a"))
        net.add_node(FakeNode("b"))
        with pytest.raises(SimulationError):
            net.define_path("p", ["a", "b"])

    def test_links_bidirectional(self):
        net, *_ = two_hop_network()
        assert net.link_latency("b", "a") == 1e-3


class TestTransport:
    def test_packet_traverses_path(self):
        net, a, b_ = two_hop_network()
        metrics = RunMetrics()
        packet = make_packet(1, 2)
        net.inject(packet, "p", 0.0, metrics)
        net.loop.run()
        assert a.seen == [packet.packet_id]
        assert b_.seen == [packet.packet_id]
        assert packet.path == ["a", "b"]
        assert metrics.delivered == 1

    def test_latency_accumulates_links_and_processing(self):
        net, a, b_ = two_hop_network()
        a.latency_s = 0.5e-3
        metrics = RunMetrics()
        packet = make_packet(1, 2, created_at=0.0)
        net.inject(packet, "p", 0.0, metrics)
        net.loop.run()
        # link 1ms + processing a 0.5ms (+ b's processing)
        assert packet.latency_s == pytest.approx(1.5e-3 + b_.latency_s, rel=1e-6)

    def test_program_drop_stops_path(self):
        net, a, b_ = two_hop_network()
        a.drop = True
        metrics = RunMetrics()
        net.inject(make_packet(1, 2), "p", 0.0, metrics)
        net.loop.run()
        assert b_.seen == []
        assert metrics.dropped_by_program == 1

    def test_unavailable_node_loses_packet(self):
        net, a, b_ = two_hop_network()
        b_.down_until = 10.0
        metrics = RunMetrics()
        net.inject(make_packet(1, 2), "p", 0.0, metrics)
        net.loop.run()
        assert metrics.lost_by_infrastructure == 1
        assert metrics.delivered == 0

    def test_on_done_callback(self):
        net, *_ = two_hop_network()
        done = []
        net.inject(make_packet(1, 2), "p", 0.0, None, on_done=done.append)
        net.loop.run()
        assert len(done) == 1

    def test_explicit_hop_list(self):
        net, a, b_ = two_hop_network()
        metrics = RunMetrics()
        net.inject(make_packet(1, 2), ["a"], 0.0, metrics)
        net.loop.run()
        assert metrics.delivered == 1
        assert b_.seen == []

    def test_empty_path_rejected(self):
        net, *_ = two_hop_network()
        with pytest.raises(SimulationError):
            net.inject(make_packet(1, 2), [], 0.0)


class TestMetrics:
    def test_loss_and_delivery_rates(self):
        net, a, b_ = two_hop_network()
        b_.down_until = 0.0005  # in-flight packets at t<~0 lost at b
        metrics = RunMetrics()
        for i in range(10):
            net.inject(make_packet(1, 2, created_at=i * 0.001), "p", i * 0.001, metrics)
        net.loop.run()
        assert metrics.sent == 10
        assert metrics.delivered + metrics.lost_by_infrastructure == 10
        assert metrics.loss_rate == pytest.approx(
            metrics.lost_by_infrastructure / 10
        )

    def test_latency_percentiles(self):
        from repro.simulator.metrics import LatencyStats

        stats = LatencyStats()
        for value in [1.0, 2.0, 3.0, 4.0, 5.0]:
            stats.record(value)
        assert stats.mean == 3.0
        assert stats.percentile(0.0) == 1.0
        assert stats.percentile(0.99) == 5.0
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0


class TestLatencyReservoir:
    """The percentile reservoir is bounded and seeded: long runs stay
    O(reservoir_size) in memory, exact stats stay exact, and repeated
    runs reproduce the same percentile estimates."""

    def test_memory_bounded_exact_stats_intact(self):
        from repro.simulator.metrics import LatencyStats

        stats = LatencyStats(reservoir_size=256)
        n = 50_000
        for i in range(n):
            stats.record(float(i))
        assert len(stats.samples) == 256
        assert stats.count == n
        assert stats.minimum == 0.0
        assert stats.maximum == float(n - 1)
        assert stats.mean == pytest.approx((n - 1) / 2)
        # The estimate comes from a uniform sample of the stream.
        assert stats.percentile(0.5) == pytest.approx(n / 2, rel=0.15)

    def test_deterministic_across_runs(self):
        from repro.simulator.metrics import LatencyStats

        def run():
            stats = LatencyStats(reservoir_size=64)
            for i in range(5000):
                stats.record(float((i * 7919) % 1000))
            return stats

        first, second = run(), run()
        assert first.samples == second.samples
        assert first.percentile(0.9) == second.percentile(0.9)

    def test_below_cap_percentiles_exact(self):
        from repro.simulator.metrics import LatencyStats

        stats = LatencyStats(reservoir_size=4096)
        for value in range(100):
            stats.record(float(value))
        assert stats.percentile(0.5) == 50.0
        assert stats.percentile(0.99) == 99.0
