"""FlexBatch unit tests: the struct-of-arrays buffer, the batched table
lookup, the tiered executor (memo / closure / fallback), live admission
revocation, and the FlexScale window reset."""

import copy

import pytest

from repro.analysis.dataflow import analyze
from repro.apps import base_infrastructure
from repro.errors import SimulationError
from repro.lang.ir import ActionCall, MatchKind, TableDef, TableKey
from repro.lang import builder as b
from repro.simulator import fastpath
from repro.simulator.batch import BatchExecutor, PacketBatch, batched_differential
from repro.simulator.meters import Meter, MeterConfig
from repro.simulator.packet import make_packet
from repro.simulator.pipeline_exec import ProgramInstance
from repro.simulator.tables import Rule, TableRules, exact, lpm, ternary


def stateless_slice(program) -> set:
    info = analyze(program)
    return {
        name for name in info.applied if not info.element_access(name).map_writes
    }


def sliced_instance(memo_capacity: int = 4096):
    """A cacheable hosted slice of the base program — the memo tier."""
    program = base_infrastructure()
    instance = ProgramInstance(program, hosted_elements=stateless_slice(program))
    fastpath.seeded_rules(program, instance, seed=5)
    return instance, BatchExecutor(instance, memo_capacity=memo_capacity)


def reference_results(instance_factory, packets, times):
    reference = instance_factory()
    work = [copy.deepcopy(p) for p in packets]
    results = [reference.process(p, t) for p, t in zip(work, times)]
    return reference, work, results


# ---------------------------------------------------------------------------
# PacketBatch
# ---------------------------------------------------------------------------


class TestPacketBatch:
    def test_columns_and_presence(self):
        packets = [make_packet(1, 2), make_packet(3, 4, ttl=9)]
        batch = PacketBatch(packets, now=0.5)
        assert batch.size == 2
        assert batch.times == [0.5, 0.5]
        assert batch.column("ipv4", "src") == [1, 3]
        assert batch.column("ipv4", "ttl")[1] == 9
        assert batch.presence("ipv4") == [True, True]
        assert batch.presence("vlan") == [False, False]
        assert batch.meta_column("no_such_key") == [0, 0]

    def test_times_length_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            PacketBatch([make_packet(1, 2)], times=[0.0, 1.0])


# ---------------------------------------------------------------------------
# Batched table lookup
# ---------------------------------------------------------------------------


def _table(kinds):
    return TableDef(
        name="t",
        keys=tuple(
            TableKey(field=b.field(f"h.k{i}"), match_kind=kind)
            for i, kind in enumerate(kinds)
        ),
        actions=("a0", "a1", "a2"),
        size=4096,
        default_action=ActionCall(action="a0"),
    )


class TestLookupBatch:
    def _check_equivalence(self, kinds, rules_spec, probes):
        sequential = TableRules(_table(kinds))
        batched = TableRules(_table(kinds))
        for rule in rules_spec:
            sequential.insert(rule)
            batched.insert(copy.deepcopy(rule))
        expected = [sequential.lookup(key) for key in probes]
        got = batched.lookup_batch(list(probes))
        assert got == expected
        # Counters must land identically: hit multiplicity is applied
        # per unique key, not once.
        assert batched.hit_counts == sequential.hit_counts
        assert batched.miss_count == sequential.miss_count

    def test_exact_index_gather(self):
        rules = [
            Rule(matches=(exact(v),), action=ActionCall("a1", (v,)))
            for v in (1, 2, 3)
        ]
        self._check_equivalence(
            (MatchKind.EXACT,),
            rules,
            [(1,), (2,), (2,), (9,), (3,), (2,), (9,)],
        )

    def test_ordered_scan_residuals(self):
        rules = [
            Rule(matches=(lpm(0x0A000000, 8), ternary(0, 0)), action=ActionCall("a1")),
            Rule(
                matches=(lpm(0x0A010000, 16), ternary(7, 0xFF)),
                action=ActionCall("a2"),
                priority=5,
            ),
        ]
        self._check_equivalence(
            (MatchKind.LPM, MatchKind.TERNARY),
            rules,
            [(0x0A010001, 7), (0x0A020000, 1), (0xC0000000, 7), (0x0A010001, 7)],
        )

    def test_empty_batch(self):
        rules = TableRules(_table((MatchKind.EXACT,)))
        assert rules.lookup_batch([]) == []
        assert rules.miss_count == 0


# ---------------------------------------------------------------------------
# BatchExecutor tiers
# ---------------------------------------------------------------------------


class TestBatchExecutor:
    def test_memo_capacity_must_be_positive(self):
        instance = ProgramInstance(base_infrastructure())
        with pytest.raises(SimulationError):
            BatchExecutor(instance, memo_capacity=0)

    def test_size_one_batch_matches_per_packet(self):
        program = base_infrastructure()

        def factory():
            instance = ProgramInstance(program)
            fastpath.seeded_rules(program, instance, seed=5)
            return instance

        packet = make_packet(0x0A000001, 0x0A000002)
        _, work, expected = reference_results(factory, [packet], [0.0])
        instance = factory()
        result = instance.batch_executor().execute(
            PacketBatch([copy.deepcopy(packet)], times=[0.0])
        )
        assert len(result) == 1
        assert result[0].ops == expected[0].ops

    def test_memo_tier_groups_and_hits(self):
        instance, executor = sliced_instance()
        packets = [make_packet(0x0A000001, 0x0A000002) for _ in range(8)]
        executor.execute(PacketBatch(packets))
        stats = executor.stats
        assert stats.batches == 1
        assert stats.packets == 8
        assert stats.groups == 1  # one flow -> one observation key
        assert stats.memo_misses == 1
        assert stats.memo_hits == 7
        assert stats.fallback_packets == 0

    def test_memo_eviction_is_bounded_and_exact(self):
        instance, executor = sliced_instance(memo_capacity=2)
        corpus = fastpath.seeded_corpus(40, seed=3)
        times = [i * 1e-4 for i in range(len(corpus))]

        program = base_infrastructure()

        def factory():
            reference = ProgramInstance(
                program, hosted_elements=stateless_slice(program)
            )
            fastpath.seeded_rules(program, reference, seed=5)
            return reference

        reference, ref_work, ref_results = reference_results(factory, corpus, times)

        work = [copy.deepcopy(p) for p in corpus]
        results = executor.execute(PacketBatch(work, times=times))
        assert len(executor._memo) <= 2  # FIFO never exceeds capacity
        assert executor.stats.memo_misses > 2  # ...so it actually evicted
        for left, right, a, c in zip(ref_work, work, ref_results, results):
            assert left.verdict is right.verdict
            assert left.fields == right.fields
            assert a.ops == c.ops
        for name, rules in reference.rules.items():
            assert rules.hit_counts == instance.rules[name].hit_counts
            assert rules.miss_count == instance.rules[name].miss_count

    def test_counter_multiplicity_exact(self):
        instance, executor = sliced_instance()
        packets = [make_packet(0x0A000001, 0x0A000002) for _ in range(5)]
        executor.execute(PacketBatch(packets))

        program = base_infrastructure()

        def factory():
            reference = ProgramInstance(
                program, hosted_elements=stateless_slice(program)
            )
            fastpath.seeded_rules(program, reference, seed=5)
            return reference

        reference, _, _ = reference_results(
            factory, packets, [0.0] * len(packets)
        )
        for name, rules in reference.rules.items():
            assert rules.hit_counts == instance.rules[name].hit_counts
            assert rules.miss_count == instance.rules[name].miss_count

    def test_reset_window_flushes_memo(self):
        instance, executor = sliced_instance()
        executor.execute(PacketBatch([make_packet(1, 2), make_packet(1, 2)]))
        assert executor._memo
        dropped_before = executor.stats.memo_entries_dropped
        executor.reset_window()
        assert not executor._memo
        assert executor.stats.memo_entries_dropped > dropped_before
        # The next batch re-records and stays exact.
        results = executor.execute(PacketBatch([make_packet(1, 2)]))
        assert results[0] is not None

    def test_rule_mutation_flushes_memo_live(self):
        instance, executor = sliced_instance()
        executor.execute(PacketBatch([make_packet(0x0A000001, 2)] * 3))
        assert executor.stats.revocations == 0
        instance.rules["l2"].insert(
            Rule(matches=(exact(0xBEEF),), action=ActionCall("forward", (1,)))
        )
        executor.execute(PacketBatch([make_packet(0x0A000001, 2)] * 3))
        assert executor.stats.revocations == 1
        assert executor.stats.memo_entries_dropped >= 1

    def test_meter_attach_revokes_batches_live(self):
        instance, executor = sliced_instance()
        executor.execute(PacketBatch([make_packet(1, 2)]))
        assert executor.stats.revoked_batches == 0
        assert executor.admission().admitted
        instance.rules["l2"].meter = Meter(
            MeterConfig(rate_pps=1000.0, burst_packets=10.0)
        )
        assert not executor.admission().admitted
        results = executor.execute(PacketBatch([make_packet(1, 2), make_packet(3, 4)]))
        assert executor.stats.revoked_batches == 1
        assert executor.stats.fallback_packets == 2
        assert all(r is not None for r in results)
        # Detach: admission returns, batching resumes.
        instance.rules["l2"].meter = None
        assert executor.admission().admitted
        executor.execute(PacketBatch([make_packet(1, 2)]))
        assert executor.stats.revoked_batches == 1

    def test_empty_batch(self):
        instance, executor = sliced_instance()
        assert executor.execute(PacketBatch([])) == []


# ---------------------------------------------------------------------------
# ProgramInstance / device facade
# ---------------------------------------------------------------------------


class TestFacades:
    def test_enable_batching_implies_fastpath(self):
        instance = ProgramInstance(base_infrastructure())
        instance.enable_batching()
        assert instance.batching_enabled
        assert instance.fastpath_enabled

    def test_process_batch_accepts_plain_lists(self):
        instance = ProgramInstance(base_infrastructure())
        instance.enable_batching()
        results = instance.process_batch([make_packet(1, 2), make_packet(3, 4)])
        assert len(results) == 2

    def test_process_batch_without_batching_falls_back(self):
        instance = ProgramInstance(base_infrastructure())
        results = instance.process_batch([make_packet(1, 2)])
        assert len(results) == 1
        assert instance._batch_executor is None

    def test_disable_batching_drops_executor(self):
        instance = ProgramInstance(base_infrastructure())
        instance.enable_batching()
        instance.process_batch([make_packet(1, 2)])
        assert instance._batch_executor is not None
        instance.enable_batching(False)
        assert not instance.batching_enabled
        assert instance._batch_executor is None


# ---------------------------------------------------------------------------
# FlowCacheStats: the entries-dropped counter (fast-path satellite)
# ---------------------------------------------------------------------------


class TestFlowCacheEntriesDropped:
    def test_invalidation_counts_dropped_entries(self):
        program = base_infrastructure()
        instance = ProgramInstance(
            program, hosted_elements=stateless_slice(program)
        )
        fastpath.seeded_rules(program, instance, seed=5)
        instance.enable_fastpath()
        cache = fastpath.FlowCache()
        for i in range(4):
            cache.process(instance, make_packet(1, 2 + i), i * 1e-4)
        assert len(cache) > 0
        populated = len(cache)
        assert cache.stats.entries_dropped == 0
        instance.rules["l2"].insert(
            Rule(matches=(exact(0xBEEF),), action=ActionCall("forward", (1,)))
        )
        cache.process(instance, make_packet(1, 2), 1.0)
        assert cache.stats.entries_dropped == populated
        assert cache.stats.to_dict()["entries_dropped"] == populated
