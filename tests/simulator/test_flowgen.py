"""Traffic generator tests."""

from repro.simulator.flowgen import (
    constant_rate,
    merge_streams,
    poisson_flows,
    syn_flood,
    tenant_churn,
)


class TestConstantRate:
    def test_count_matches_rate_and_duration(self):
        packets = list(constant_rate(100, 2.0))
        assert len(packets) == 200

    def test_even_spacing(self):
        packets = list(constant_rate(10, 1.0))
        gaps = {
            round(second.time - first.time, 9)
            for first, second in zip(packets, packets[1:])
        }
        assert gaps == {0.1}

    def test_start_offset(self):
        packets = list(constant_rate(10, 1.0, start_s=5.0))
        assert packets[0].time == 5.0

    def test_zero_rate_empty(self):
        assert list(constant_rate(0, 1.0)) == []

    def test_vlan_and_ports_propagate(self):
        packet = next(iter(constant_rate(10, 1.0, vlan_id=9, dst_port=443))).packet
        assert packet.meta["vlan_id"] == 9
        assert packet.get_field("tcp", "dport") == 443


class TestPoissonFlows:
    def test_deterministic_given_seed(self):
        first = [(tp.time, tp.packet.get_field("ipv4", "src")) for tp in poisson_flows(100, 1.0, 10, seed=3)]
        second = [(tp.time, tp.packet.get_field("ipv4", "src")) for tp in poisson_flows(100, 1.0, 10, seed=3)]
        assert first == second

    def test_rate_approximately_respected(self):
        packets = list(poisson_flows(1000, 2.0, 10, seed=1))
        assert 1500 < len(packets) < 2500

    def test_zipf_popularity(self):
        packets = list(poisson_flows(2000, 2.0, 20, seed=2))
        counts = {}
        for tp in packets:
            src = tp.packet.get_field("ipv4", "src")
            counts[src] = counts.get(src, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        assert ordered[0] > ordered[-1] * 2  # heavy head

    def test_times_within_window(self):
        packets = list(poisson_flows(100, 1.0, 5, seed=4, start_s=2.0))
        assert all(2.0 <= tp.time < 3.0 for tp in packets)


class TestSynFlood:
    def test_ramp_hold_decay_envelope(self):
        packets = list(syn_flood(2000, ramp_s=1.0, hold_s=1.0, decay_s=1.0, seed=5))
        def count(window):
            return sum(1 for tp in packets if window[0] <= tp.time < window[1])
        ramp_head = count((0.0, 0.3))
        hold = count((1.2, 1.5))
        decay_tail = count((2.7, 3.0))
        assert hold > ramp_head * 2
        assert hold > decay_tail * 2

    def test_all_syn_to_victim(self):
        packets = list(syn_flood(500, 0.5, 0.5, 0.5, victim_ip=77, seed=6))
        assert packets
        for tp in packets:
            assert tp.packet.get_field("ipv4", "dst") == 77
            assert tp.packet.get_field("tcp", "flags") & 0x02

    def test_spoofed_sources_diverse(self):
        packets = list(syn_flood(2000, 0.5, 0.5, 0.5, seed=7))
        sources = {tp.packet.get_field("ipv4", "src") for tp in packets}
        assert len(sources) > len(packets) * 0.9


class TestTenantChurn:
    def test_arrivals_before_departures(self):
        events = tenant_churn(2.0, 5.0, 20.0, seed=8)
        first_seen = {}
        for event in events:
            if event.kind == "arrive":
                assert event.tenant not in first_seen
                first_seen[event.tenant] = event.time
            else:
                assert event.tenant in first_seen
                assert event.time > first_seen[event.tenant]

    def test_sorted_by_time(self):
        events = tenant_churn(3.0, 2.0, 10.0, seed=9)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_deterministic(self):
        assert tenant_churn(2.0, 5.0, 10.0, seed=1) == tenant_churn(2.0, 5.0, 10.0, seed=1)


class TestMerge:
    def test_merge_sorts_by_time(self):
        merged = merge_streams(
            constant_rate(10, 1.0),
            constant_rate(10, 1.0, start_s=0.05),
        )
        times = [tp.time for tp in merged]
        assert times == sorted(times)
        assert len(merged) == 20
