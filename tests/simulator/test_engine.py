"""Discrete-event loop tests."""

import pytest

from repro.errors import SimulationError
from repro.simulator.engine import EventLoop


class TestScheduling:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda: order.append("b"))
        loop.schedule(1.0, lambda: order.append("a"))
        loop.run()
        assert order == ["a", "b"]

    def test_ties_break_by_insertion_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda: order.append("first"))
        loop.schedule(1.0, lambda: order.append("second"))
        loop.run()
        assert order == ["first", "second"]

    def test_tie_break_is_time_then_sequence(self):
        # The documented (time, seq) ordering: scheduling order decides
        # ties even when registrations interleave across timestamps —
        # FlexScale's cross-shard replay depends on this being exact.
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda: order.append("t2-first"))
        loop.schedule(1.0, lambda: order.append("t1-first"))
        loop.schedule(2.0, lambda: order.append("t2-second"))
        loop.schedule(1.0, lambda: order.append("t1-second"))
        loop.run()
        assert order == ["t1-first", "t1-second", "t2-first", "t2-second"]

    def test_tie_break_survives_schedule_at_and_cancellation(self):
        loop = EventLoop()
        order = []
        loop.schedule_at(3.0, lambda: order.append("a"))
        doomed = loop.schedule_at(3.0, lambda: order.append("cancelled"))
        loop.schedule_at(3.0, lambda: order.append("b"))
        doomed.cancel()
        loop.schedule_at(3.0, lambda: order.append("c"))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_now_advances_during_run(self):
        loop = EventLoop()
        seen = []
        loop.schedule(0.5, lambda: seen.append(loop.now))
        loop.schedule(1.5, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [0.5, 1.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventLoop().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self):
        loop = EventLoop()
        loop.run_until(5.0)
        seen = []
        loop.schedule_at(7.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [7.0]

    def test_nested_scheduling(self):
        loop = EventLoop()
        order = []

        def outer():
            order.append("outer")
            loop.schedule(1.0, lambda: order.append("inner"))

        loop.schedule(1.0, outer)
        loop.run()
        assert order == ["outer", "inner"]


class TestRunUntil:
    def test_stops_at_boundary(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(3.0, lambda: seen.append(3))
        loop.run_until(2.0)
        assert seen == [1]
        assert loop.now == 2.0
        loop.run_until(4.0)
        assert seen == [1, 3]

    def test_boundary_inclusive(self):
        loop = EventLoop()
        seen = []
        loop.schedule(2.0, lambda: seen.append(1))
        loop.run_until(2.0)
        assert seen == [1]

    def test_backwards_run_until_rejected(self):
        loop = EventLoop()
        loop.run_until(5.0)
        with pytest.raises(SimulationError):
            loop.run_until(1.0)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        loop = EventLoop()
        seen = []
        handle = loop.schedule(1.0, lambda: seen.append(1))
        handle.cancel()
        loop.run()
        assert seen == []

    def test_pending_count(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        assert loop.pending() == 2
        handle.cancel()
        assert loop.pending() == 1
