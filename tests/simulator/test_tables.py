"""Runtime table rule tests."""

import pytest

from repro.lang import builder as b
from repro.lang.ir import ActionCall, MatchKind, TableDef, TableKey
from repro.simulator.tables import (
    Rule,
    TableError,
    TableRules,
    exact,
    lpm,
    rng,
    ternary,
)


def table_def(kinds=("exact",), size=8, actions=("allow", "deny"), default="allow"):
    keys = tuple(
        TableKey(field=b.field(f"ipv4.f{i}"), match_kind=MatchKind(kind))
        for i, kind in enumerate(kinds)
    )
    return TableDef(
        name="t",
        keys=keys,
        actions=actions,
        size=size,
        default_action=ActionCall(action=default),
    )


class TestMatchSpecs:
    def test_exact(self):
        assert exact(5).matches(5)
        assert not exact(5).matches(6)

    def test_lpm(self):
        spec = lpm(0x0A000000, 8)
        assert spec.matches(0x0A123456)
        assert not spec.matches(0x0B000000)

    def test_lpm_zero_length_matches_all(self):
        assert lpm(0, 0).matches(0xFFFFFFFF)

    def test_ternary(self):
        spec = ternary(0x0A000000, 0xFF000000)
        assert spec.matches(0x0AFFFFFF)
        assert not spec.matches(0x0B000000)

    def test_range(self):
        spec = rng(10, 20)
        assert spec.matches(10) and spec.matches(20) and spec.matches(15)
        assert not spec.matches(9) and not spec.matches(21)


class TestInsertValidation:
    def test_wrong_arity_rejected(self):
        rules = TableRules(table_def(("exact", "exact")))
        with pytest.raises(TableError, match="keys"):
            rules.insert(Rule(matches=(exact(1),), action=ActionCall("allow")))

    def test_wrong_kind_rejected(self):
        rules = TableRules(table_def(("exact",)))
        with pytest.raises(TableError, match="expects exact"):
            rules.insert(Rule(matches=(ternary(1, 1),), action=ActionCall("allow")))

    def test_unknown_action_rejected(self):
        rules = TableRules(table_def())
        with pytest.raises(TableError, match="does not allow"):
            rules.insert(Rule(matches=(exact(1),), action=ActionCall("explode")))

    def test_capacity_enforced(self):
        rules = TableRules(table_def(size=2))
        rules.insert(Rule(matches=(exact(1),), action=ActionCall("allow")))
        rules.insert(Rule(matches=(exact(2),), action=ActionCall("allow")))
        with pytest.raises(TableError, match="full"):
            rules.insert(Rule(matches=(exact(3),), action=ActionCall("allow")))


class TestLookup:
    def test_miss_returns_default(self):
        rules = TableRules(table_def())
        assert rules.lookup((99,)) == ActionCall("allow")
        assert rules.miss_count == 1

    def test_hit_returns_rule_action(self):
        rules = TableRules(table_def())
        rules.insert(Rule(matches=(exact(5),), action=ActionCall("deny")))
        assert rules.lookup((5,)) == ActionCall("deny")
        assert rules.hit_counts == [1]

    def test_priority_wins(self):
        rules = TableRules(table_def(("ternary",)))
        rules.insert(Rule(matches=(ternary(0, 0),), action=ActionCall("allow"), priority=1))
        rules.insert(Rule(matches=(ternary(5, 0xFF),), action=ActionCall("deny"), priority=10))
        assert rules.lookup((5,)) == ActionCall("deny")

    def test_specificity_breaks_priority_ties(self):
        rules = TableRules(table_def(("lpm",)))
        rules.insert(Rule(matches=(lpm(0x0A000000, 8),), action=ActionCall("allow")))
        rules.insert(Rule(matches=(lpm(0x0A0A0000, 16),), action=ActionCall("deny")))
        assert rules.lookup((0x0A0A0101,)) == ActionCall("deny")  # /16 beats /8
        assert rules.lookup((0x0A0B0101,)) == ActionCall("allow")

    def test_remove(self):
        rules = TableRules(table_def())
        rule = Rule(matches=(exact(5),), action=ActionCall("deny"))
        rules.insert(rule)
        assert rules.remove(rule)
        assert not rules.remove(rule)
        assert rules.lookup((5,)) == ActionCall("allow")

    def test_clear(self):
        rules = TableRules(table_def())
        rules.insert(Rule(matches=(exact(5),), action=ActionCall("deny")))
        rules.clear()
        assert len(rules) == 0

    def test_multi_key_all_must_match(self):
        rules = TableRules(table_def(("exact", "ternary")))
        rules.insert(
            Rule(matches=(exact(1), ternary(0x10, 0xF0)), action=ActionCall("deny"))
        )
        assert rules.lookup((1, 0x1F)) == ActionCall("deny")
        assert rules.lookup((2, 0x1F)) == ActionCall("allow")
        assert rules.lookup((1, 0x2F)) == ActionCall("allow")


class TestMatchesKeyArity:
    def test_length_mismatch_raises(self):
        """Regression: a key-arity mismatch used to zip-truncate and
        silently 'match' on the shorter side; it is a caller bug and
        must raise."""
        rule = Rule(matches=(exact(1), exact(2)), action=ActionCall(action="allow"))
        with pytest.raises(TableError, match="match specs"):
            rule.matches_key((1,))
        with pytest.raises(TableError, match="match specs"):
            rule.matches_key((1, 2, 3))
        assert rule.matches_key((1, 2))

    def test_lookup_arity_mismatch_raises(self):
        rules = TableRules(table_def(kinds=("exact", "exact")))
        with pytest.raises(TableError, match="keys"):
            rules.lookup((1,))


class TestEpoch:
    def test_mutations_bump_epoch(self):
        rules = TableRules(table_def())
        start = rules.epoch
        rule = Rule(matches=(exact(1),), action=ActionCall(action="deny"))
        rules.insert(rule)
        assert rules.epoch == start + 1
        rules.remove(rule)
        assert rules.epoch == start + 2
        rules.clear()
        assert rules.epoch == start + 3

    def test_meter_attach_detach_bumps_epoch(self):
        from repro.simulator.meters import Meter, MeterConfig

        rules = TableRules(table_def())
        start = rules.epoch
        rules.meter = Meter(MeterConfig(rate_pps=10.0, burst_packets=5.0))
        assert rules.epoch == start + 1
        rules.meter = None
        assert rules.epoch == start + 2

    def test_lookup_does_not_bump_epoch(self):
        rules = TableRules(table_def())
        rules.insert(Rule(matches=(exact(1),), action=ActionCall(action="deny")))
        start = rules.epoch
        rules.lookup((1,))
        rules.lookup((9,))
        assert rules.epoch == start
