"""FlexBPF interpreter tests."""


from repro.lang import builder as b
from repro.lang.ir import ActionCall
from repro.apps.base import standard_builder
from repro.simulator.packet import Verdict, make_packet
from repro.simulator.pipeline_exec import MAX_RECIRCULATIONS, ProgramInstance
from repro.simulator.tables import Rule, exact, ternary


def run(program, packet=None, hosted=None):
    instance = ProgramInstance(program, hosted)
    packet = packet or make_packet(0x0A000001, 0x0A000002)
    result = instance.process(packet)
    return instance, packet, result


class TestParsing:
    def test_parsed_headers_visible(self, base_program):
        _, packet, _ = run(base_program)
        # count_flow read ipv4 fields and wrote the map
        assert packet.verdict is Verdict.FORWARD

    def test_unparsed_header_reads_zero(self):
        program = standard_builder("p")
        program.function("f", [b.assign("meta.seen", b.expr("ipv4.src"))])
        program.apply("f")
        built = program.build()
        packet = make_packet(7, 8)
        packet.fields[("ethernet", "ethertype")] = 0x86DD  # not ipv4 -> not parsed
        _, packet, _ = run(built, packet)
        assert packet.meta["seen"] == 0

    def test_unparsed_header_writes_ignored(self):
        program = standard_builder("p")
        program.function("f", [b.assign("ipv4.ttl", 1)])
        program.apply("f")
        packet = make_packet(7, 8, ttl=64)
        packet.fields[("ethernet", "ethertype")] = 0x86DD
        _, packet, _ = run(program.build(), packet)
        assert packet.get_field("ipv4", "ttl") == 64

    def test_missing_start_header_skips_program(self):
        program = standard_builder("p")
        program.function("f", [b.call("mark_drop")])
        program.apply("f")
        packet = make_packet(7, 8)
        packet.fields = {k: v for k, v in packet.fields.items() if k[0] != "ethernet"}
        _, packet, _ = run(program.build(), packet)
        # parse failed at start; apply still runs but field reads are 0;
        # mark_drop doesn't depend on fields so it drops.
        assert packet.verdict is Verdict.DROP


class TestTables:
    def test_default_action_on_miss(self, base_program):
        instance, packet, _ = run(base_program)
        # l2 default forwards to port 1
        assert packet.meta["egress_port"] == 1

    def test_installed_rule_hit(self, base_program):
        instance = ProgramInstance(base_program)
        instance.rules["acl"].insert(
            Rule(
                matches=(ternary(0x0A000001, 0xFFFFFFFF), ternary(0, 0)),
                action=ActionCall("drop"),
                priority=5,
            )
        )
        packet = make_packet(0x0A000001, 0x0A000002)
        instance.process(packet)
        assert packet.verdict is Verdict.DROP

    def test_action_args_bound_to_params(self, base_program):
        # host only l2 so the later l3 default does not overwrite the port
        instance = ProgramInstance(base_program, hosted_elements={"l2"})
        instance.rules["l2"].insert(
            Rule(matches=(exact(0x0000AABBCCDD),), action=ActionCall("forward", (42,)))
        )
        packet = make_packet(1, 2)
        instance.process(packet)
        assert packet.meta["egress_port"] == 42

    def test_drop_continues_pipeline(self, base_program):
        """mark_drop sets the flag but later stages still execute
        (hardware drops at egress)."""
        instance = ProgramInstance(base_program)
        instance.rules["acl"].insert(
            Rule(
                matches=(ternary(0, 0), ternary(0, 0)),
                action=ActionCall("drop"),
                priority=1,
            )
        )
        packet = make_packet(3, 4)
        instance.process(packet)
        assert packet.verdict is Verdict.DROP
        # count_flow still ran: the flow is in the map
        assert instance.maps.state("flow_counts").get((3, 4)) == 1


class TestFunctionsAndState:
    def test_map_update_per_packet(self, base_program):
        instance = ProgramInstance(base_program)
        for _ in range(5):
            instance.process(make_packet(9, 10))
        assert instance.maps.state("flow_counts").get((9, 10)) == 5

    def test_ttl_guard_drops_zero_ttl(self, base_program):
        packet = make_packet(1, 2, ttl=0)
        _, packet, _ = run(base_program, packet)
        assert packet.verdict is Verdict.DROP

    def test_hash_expression_deterministic(self):
        program = standard_builder("p")
        program.function(
            "f", [b.assign("meta.bucket", b.hash_of("ipv4.src", modulus=8))]
        )
        program.apply("f")
        built = program.build()
        first = make_packet(123, 1)
        second = make_packet(123, 2)
        run(built, first)
        run(built, second)
        assert first.meta["bucket"] == second.meta["bucket"]
        assert 0 <= first.meta["bucket"] < 8

    def test_field_write_truncated_to_width(self):
        program = standard_builder("p")
        program.function("f", [b.assign("ipv4.ttl", 300)])
        program.apply("f")
        packet = make_packet(1, 2)
        run(program.build(), packet)
        assert packet.get_field("ipv4", "ttl") == 300 & 0xFF

    def test_division_by_zero_yields_zero(self):
        program = standard_builder("p")
        program.function(
            "f", [b.assign("meta.x", b.binop("/", "ipv4.ttl", 0))]
        )
        program.apply("f")
        packet = make_packet(1, 2)
        run(program.build(), packet)
        assert packet.meta["x"] == 0

    def test_apply_if_branches(self):
        program = standard_builder("p")
        program.function("mark", [b.assign("meta.hit", 1)])
        program.apply(
            program.apply_if(b.binop(">", "ipv4.ttl", 10), ["mark"])
        )
        built = program.build()
        high = make_packet(1, 2, ttl=64)
        low = make_packet(1, 2, ttl=5)
        run(built, high)
        run(built, low)
        assert high.meta.get("hit") == 1
        assert "hit" not in low.meta


class TestPrimitives:
    def test_emit_digest(self):
        program = standard_builder("p")
        program.function("f", [b.call("emit_digest", "ipv4.dst", "ipv4.src")])
        program.apply("f")
        packet = make_packet(5, 6)
        run(program.build(), packet)
        assert packet.digests == [("p", (6, 5))]

    def test_clone_counts(self):
        program = standard_builder("p")
        program.function("f", [b.call("clone")])
        program.apply("f")
        packet = make_packet(1, 2)
        run(program.build(), packet)
        assert packet.meta["clones"] == 1

    def test_recirculate_bounded(self):
        program = standard_builder("p")
        program.function("f", [b.call("recirculate")])
        program.apply("f")
        _, _, result = run(program.build())
        assert result.recirculations == MAX_RECIRCULATIONS

    def test_set_queue(self):
        program = standard_builder("p")
        program.function("f", [b.call("set_queue", 3)])
        program.apply("f")
        packet = make_packet(1, 2)
        run(program.build(), packet)
        assert packet.meta["queue_id"] == 3


class TestHostedFiltering:
    def test_unhosted_elements_skipped(self, base_program):
        instance = ProgramInstance(base_program, hosted_elements={"acl"})
        packet = make_packet(11, 12)
        instance.process(packet)
        # count_flow not hosted here -> no map update
        assert instance.maps.state("flow_counts").get((11, 12)) == 0
        # l2 default (forward 1) not applied either
        assert packet.meta["egress_port"] == 0

    def test_version_recorded(self, base_program):
        _, packet, result = run(base_program)
        assert result.version == base_program.version

    def test_ops_counted(self, base_program):
        _, _, result = run(base_program)
        assert result.ops > 0
