"""LatencyStats / RunMetrics aggregation tests (FlexScale merging).

The merge contract: exact aggregates add losslessly, the merged
reservoir is the sorted union of the inputs (exact percentiles while the
union fits the cap, deterministic rank-downsample beyond it), and the
result is independent of shard interleaving. The seeded cases pin the
exact percentile values so any change to the merge math is visible.
"""

from __future__ import annotations

import random

from repro.simulator.metrics import LatencyStats, RunMetrics
from repro.simulator.packet import Verdict, make_packet


def _stats(values, seed=2024, reservoir_size=4096):
    stats = LatencyStats(seed=seed, reservoir_size=reservoir_size)
    for value in values:
        stats.record(value)
    return stats


class TestLatencyStatsMerge:
    def test_exact_aggregates_add(self):
        merged = _stats([1.0, 3.0]).merge(_stats([2.0]), _stats([5.0, 0.5]))
        assert merged.count == 5
        assert merged.total == 11.5
        assert merged.minimum == 0.5
        assert merged.maximum == 5.0
        assert merged.mean == 2.3

    def test_below_cap_percentiles_match_single_stream(self):
        rng = random.Random(7)
        values = [rng.uniform(1e-6, 1e-3) for _ in range(900)]
        single = _stats(values)
        parts = [_stats(values[i::3], seed=100 + i) for i in range(3)]
        merged = parts[0].merge(*parts[1:])
        for fraction in (0.5, 0.9, 0.99):
            assert merged.percentile(fraction) == single.percentile(fraction)

    def test_merge_is_order_independent(self):
        parts = [
            _stats([float(i) for i in range(start, start + 50)], seed=start)
            for start in (0, 50, 100)
        ]
        forward = parts[0].merge(parts[1], parts[2])
        backward = parts[2].merge(parts[1], parts[0])
        assert forward.samples == backward.samples
        assert forward.percentile(0.99) == backward.percentile(0.99)

    def test_seeded_pinned_percentiles(self):
        # Pinned values: 3 shards x 100 evenly spaced samples in
        # [0, 300) merge to the identity sequence, so percentiles are
        # the rank values themselves.
        parts = [
            _stats([float(v) for v in range(start, 300, 3)], seed=start)
            for start in (0, 1, 2)
        ]
        merged = parts[0].merge(*parts[1:])
        assert merged.count == 300
        assert merged.percentile(0.50) == 150.0
        assert merged.percentile(0.99) == 297.0
        assert merged.percentile(1.0) == 299.0

    def test_beyond_cap_downsample_is_deterministic_and_ranked(self):
        # Each part is below its own cap (every sample retained) but the
        # union exceeds the merged cap, so exactly the merge-time
        # rank-downsample runs: evenly spaced ranks over the sorted
        # union, endpoints included.
        values = [float(v) for v in range(400)]
        parts = [_stats(values[i::2], reservoir_size=256) for i in range(2)]
        merged = parts[0].merge(parts[1])
        again = parts[0].merge(parts[1])
        assert merged.samples == again.samples
        assert len(merged.samples) == 256
        assert merged.samples == sorted(merged.samples)
        assert merged.samples[0] == 0.0
        assert merged.samples[-1] == 399.0
        # Evenly spaced ranks: the sketch median sits at the true one.
        assert abs(merged.percentile(0.5) - 200.0) <= 2.0


def _delivered(latency_s: float, device: str = "sw", version: int = 1):
    packet = make_packet(1, 2, created_at=0.0)
    packet.delivered_at = latency_s
    packet.versions_seen[device] = version
    return packet


class TestRunMetricsMerge:
    def _part(self, latencies, device="sw", version=1, seed=2024):
        metrics = RunMetrics(latency=LatencyStats(seed=seed))
        for latency in latencies:
            metrics.record_sent()
            metrics.record_outcome(_delivered(latency, device, version))
        return metrics

    def test_counts_and_version_counts_add(self):
        first = self._part([1e-4, 2e-4], device="s0")
        second = self._part([3e-4], device="s1", seed=9)
        dropped = make_packet(1, 2)
        dropped.verdict = Verdict.DROP
        second.record_sent()
        second.record_outcome(dropped)
        merged = first.merge(second)
        assert merged.sent == 4
        assert merged.delivered == 3
        assert merged.dropped_by_program == 1
        assert merged.version_counts == {("s0", 1): 2, ("s1", 1): 1}
        assert merged.latency.count == 3
        assert merged.latency.maximum == 3e-4

    def test_merged_to_dict_matches_single_stream(self):
        latencies = [i * 1e-5 + 1e-6 for i in range(200)]
        single = self._part(latencies)
        merged = self._part(latencies[0::2]).merge(
            self._part(latencies[1::2], seed=31)
        )
        assert merged.to_dict() == single.to_dict()
