"""Meter model tests."""

import pytest

from repro.errors import FlexNetError
from repro.simulator.meters import Meter, MeterColor, MeterConfig


class TestTokenBucket:
    def test_burst_then_red(self):
        meter = Meter(MeterConfig(rate_pps=10.0, burst_packets=5.0))
        colors = [meter.mark(0.0) for _ in range(8)]
        assert colors[:5] == [MeterColor.GREEN] * 5
        assert colors[5:] == [MeterColor.RED] * 3

    def test_refill_over_time(self):
        meter = Meter(MeterConfig(rate_pps=10.0, burst_packets=2.0))
        assert meter.mark(0.0) is MeterColor.GREEN
        assert meter.mark(0.0) is MeterColor.GREEN
        assert meter.mark(0.0) is MeterColor.RED
        # 0.1 s refills one token at 10 pps
        assert meter.mark(0.1) is MeterColor.GREEN
        assert meter.mark(0.1) is MeterColor.RED

    def test_burst_caps_refill(self):
        meter = Meter(MeterConfig(rate_pps=1000.0, burst_packets=3.0))
        meter.mark(0.0)
        # a long quiet period refills at most to the burst size
        colors = [meter.mark(100.0) for _ in range(5)]
        assert colors.count(MeterColor.GREEN) == 3

    def test_steady_state_rate_enforced(self):
        meter = Meter(MeterConfig(rate_pps=100.0, burst_packets=5.0))
        greens = 0
        for index in range(1000):  # 1000 packets over 1 s = 10x the rate
            if meter.mark(index * 0.001) is MeterColor.GREEN:
                greens += 1
        assert greens == pytest.approx(100, rel=0.15)

    def test_counters(self):
        meter = Meter(MeterConfig(rate_pps=10.0, burst_packets=1.0))
        meter.mark(0.0)
        meter.mark(0.0)
        assert (meter.green_count, meter.red_count) == (1, 1)
        assert meter.observed_green_fraction == 0.5

    def test_invalid_config_rejected(self):
        with pytest.raises(FlexNetError):
            Meter(MeterConfig(rate_pps=0.0, burst_packets=1.0))
        with pytest.raises(FlexNetError):
            Meter(MeterConfig(rate_pps=1.0, burst_packets=0.0))
