"""Type-system tests."""

import pytest

from repro.errors import TypeCheckError
from repro.lang.types import BitsType, BoolType, parse_type, require_bits, require_bool, unify


class TestBitsType:
    def test_max_value(self):
        assert BitsType(8).max_value == 255
        assert BitsType(1).max_value == 1

    def test_truncate_wraps(self):
        assert BitsType(8).truncate(256) == 0
        assert BitsType(8).truncate(257) == 1
        assert BitsType(8).truncate(255) == 255

    def test_invalid_width_rejected(self):
        with pytest.raises(TypeCheckError):
            BitsType(0)
        with pytest.raises(TypeCheckError):
            BitsType(129)

    def test_repr(self):
        assert repr(BitsType(32)) == "u32"


class TestParseType:
    def test_named_aliases(self):
        assert parse_type("u8") == BitsType(8)
        assert parse_type("u64") == BitsType(64)

    def test_bit_angle_syntax(self):
        assert parse_type("bit<9>") == BitsType(9)

    def test_arbitrary_u_width(self):
        assert parse_type("u24") == BitsType(24)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeCheckError):
            parse_type("float")

    def test_malformed_bit_syntax(self):
        with pytest.raises(TypeCheckError):
            parse_type("bit<abc>")


class TestUnify:
    def test_same_widths(self):
        assert unify(BitsType(8), BitsType(8), "t") == BitsType(8)

    def test_widening(self):
        assert unify(BitsType(8), BitsType(32), "t") == BitsType(32)

    def test_bools_unify(self):
        assert unify(BoolType(), BoolType(), "t") == BoolType()

    def test_bool_int_mismatch(self):
        with pytest.raises(TypeCheckError):
            unify(BoolType(), BitsType(8), "t")


class TestRequire:
    def test_require_bits_passes(self):
        assert require_bits(BitsType(16), "x") == BitsType(16)

    def test_require_bits_rejects_bool(self):
        with pytest.raises(TypeCheckError):
            require_bits(BoolType(), "x")

    def test_require_bool_passes(self):
        assert require_bool(BoolType(), "x") == BoolType()

    def test_require_bool_rejects_bits(self):
        with pytest.raises(TypeCheckError):
            require_bool(BitsType(1), "x")
