"""Error-path coverage for ``lang/composition.py::validate_extension``.

Complements test_composition.py (which covers quotas, primitives, base
map reads/writes, and parser permission at the top level) with the
paths that were previously unexercised: violations nested inside
control flow, map reads hidden in map-op keys, the new
``writable_fields`` permission, and namespace-collision behaviour of
the composed program.
"""

import pytest

from repro.apps.base import STANDARD_HEADERS
from repro.errors import AccessControlError, CompositionError, TypeCheckError
from repro.lang import builder as b
from repro.lang.builder import ProgramBuilder
from repro.lang.composition import (
    Composer,
    Permission,
    TenantSpec,
    validate_extension,
)


def ext_builder(name="ext"):
    program = ProgramBuilder(name, owner="tenant")
    for header, fields in STANDARD_HEADERS.items():
        program.header(header, **fields)
    return program


def spec(name="t1", vlan=100, **permission_kwargs):
    return TenantSpec(name=name, vlan_id=vlan, permission=Permission(**permission_kwargs))


class TestNestedViolations:
    def test_map_write_inside_if_rejected(self, base_program):
        program = ext_builder()
        program.function(
            "f",
            [
                b.if_(
                    b.binop("==", "ipv4.proto", 6),
                    [b.map_put("flow_counts", "ipv4.src", "ipv4.dst", 0)],
                )
            ],
        )
        program.apply("f")
        with pytest.raises(AccessControlError, match="non-local map"):
            validate_extension(program.build(validate=False), spec(), base_program)

    def test_map_write_inside_repeat_rejected(self, base_program):
        program = ext_builder()
        program.function(
            "f", [b.repeat(2, [b.map_put("flow_counts", "ipv4.src", "ipv4.dst", 0)])]
        )
        program.apply("f")
        with pytest.raises(AccessControlError, match="non-local map"):
            validate_extension(program.build(validate=False), spec(), base_program)

    def test_forbidden_primitive_inside_else_rejected(self, base_program):
        program = ext_builder()
        program.function(
            "f",
            [
                b.if_(
                    b.binop("==", "ipv4.proto", 6),
                    [b.call("no_op")],
                    [b.call("recirculate")],
                )
            ],
        )
        program.apply("f")
        with pytest.raises(AccessControlError, match="forbidden primitive"):
            validate_extension(program.build(), spec(), base_program)

    def test_base_map_read_in_map_key_rejected(self, base_program):
        # The unpermitted read is buried in the key expression of a write
        # to the tenant's own (legal) map.
        program = ext_builder()
        program.map("mine", keys=["ipv4.src"], value_type="u32", max_entries=16)
        program.function(
            "f",
            [
                b.map_put(
                    "mine",
                    b.map_get("flow_counts", "ipv4.src", "ipv4.dst"),
                    1,
                )
            ],
        )
        program.apply("f")
        with pytest.raises(AccessControlError, match="without permission"):
            validate_extension(program.build(validate=False), spec(), base_program)

    def test_action_bodies_checked_too(self, base_program):
        program = ext_builder()
        program.action("evil", [b.map_put("flow_counts", "ipv4.src", "ipv4.dst", 0)])
        program.table("t", keys=["ipv4.src"], actions=["evil"], size=8)
        program.apply("t")
        with pytest.raises(AccessControlError, match="non-local map"):
            validate_extension(program.build(validate=False), spec(), base_program)


class TestWritableFields:
    def _ttl_writer(self):
        program = ext_builder()
        program.function("bump", [b.assign("ipv4.ttl", b.binop("-", "ipv4.ttl", 1))])
        program.apply("bump")
        return program.build()

    def test_base_field_write_rejected_with_empty_grant(self, base_program):
        with pytest.raises(AccessControlError, match="writable_fields"):
            validate_extension(
                self._ttl_writer(), spec(writable_fields=()), base_program
            )

    def test_base_field_write_allowed_by_exact_grant(self, base_program):
        validate_extension(
            self._ttl_writer(), spec(writable_fields=("ipv4.ttl",)), base_program
        )

    def test_base_field_write_allowed_by_glob_grant(self, base_program):
        validate_extension(
            self._ttl_writer(), spec(writable_fields=("ipv4.*",)), base_program
        )

    def test_glob_grant_does_not_leak_to_other_headers(self, base_program):
        program = ext_builder()
        program.function("rewrite", [b.assign("ethernet.dst", 42)])
        program.apply("rewrite")
        with pytest.raises(AccessControlError, match="ethernet.dst"):
            validate_extension(
                program.build(), spec(writable_fields=("ipv4.*",)), base_program
            )

    def test_legacy_none_permission_is_unrestricted(self, base_program):
        validate_extension(self._ttl_writer(), spec(), base_program)

    def test_tenant_local_header_always_writable(self, base_program):
        program = ext_builder()
        program.header("probe", marker=8)
        program.function("stamp", [b.assign("probe.marker", 1)])
        program.apply("stamp")
        validate_extension(program.build(), spec(writable_fields=()), base_program)

    def test_write_inside_if_checked(self, base_program):
        program = ext_builder()
        program.function(
            "bump",
            [
                b.if_(
                    b.binop("==", "ipv4.proto", 6),
                    [b.assign("ipv4.ttl", 1)],
                )
            ],
        )
        program.apply("bump")
        with pytest.raises(AccessControlError, match="writable_fields"):
            validate_extension(program.build(), spec(writable_fields=()), base_program)

    def test_admit_enforces_writable_fields(self, base_program):
        composer = Composer(base_program)
        with pytest.raises(AccessControlError, match="writable_fields"):
            composer.admit(spec(writable_fields=()), self._ttl_writer())


class TestNamespaceCollisions:
    def test_extension_colliding_with_base_element_is_namespaced(self, base_program):
        # A tenant may reuse a base element name; namespacing keeps them
        # distinct in the composed program.
        program = ext_builder()
        program.map("flow_counts", keys=["ipv4.src"], value_type="u32", max_entries=8)
        program.function(
            "f",
            [
                b.let("n", "u32", b.map_get("flow_counts", "ipv4.src")),
                b.map_put("flow_counts", "ipv4.src", b.binop("+", "n", 1)),
            ],
        )
        program.apply("f")
        composer = Composer(base_program)
        composer.admit(spec(), program.build())
        composed = composer.compose().composed
        assert composed.has_map("flow_counts")  # base copy untouched
        assert composed.has_map("t1__flow_counts")
        assert composed.map("flow_counts").max_entries != 8

    def test_two_tenants_same_element_names_coexist(self, base_program):
        def make():
            program = ext_builder()
            program.map("hits", keys=["ipv4.src"], value_type="u32", max_entries=8)
            program.function(
                "f",
                [
                    b.let("n", "u32", b.map_get("hits", "ipv4.src")),
                    b.map_put("hits", "ipv4.src", b.binop("+", "n", 1)),
                ],
            )
            program.apply("f")
            return program.build()

        composer = Composer(base_program)
        composer.admit(spec("t1", vlan=100), make())
        composer.admit(spec("t2", vlan=200), make())
        composed = composer.compose().composed
        assert composed.has_map("t1__hits") and composed.has_map("t2__hits")

    def test_duplicate_headers_must_agree(self, base_program):
        program = ext_builder()
        program.header("extra", x=8)
        composer = Composer(base_program)
        composer.admit(spec(may_extend_parser=True), program.build())
        # identical layouts are fine; a second tenant redefining "extra"
        # differently is caught at admission or joint validation.
        bad = ext_builder("ext2")
        bad.header("extra", x=16)
        with pytest.raises((AccessControlError, CompositionError, TypeCheckError)):
            composer.admit(
                spec("t2", vlan=200, may_extend_parser=True), bad.build()
            )
            composer.compose()
