"""Tenant datapath composition tests."""

import pytest

from repro.errors import AccessControlError, CompositionError
from repro.lang import builder as b
from repro.lang import ir
from repro.lang.builder import ProgramBuilder
from repro.lang.composition import Composer, Permission, TenantSpec
from repro.apps.base import STANDARD_HEADERS


def tenant_extension(name="ext", drop_dst=None, entries=64):
    """A small tenant program against the standard headers."""
    program = ProgramBuilder(name, owner="tenant")
    for header, fields in STANDARD_HEADERS.items():
        program.header(header, **fields)
    program.map("hits", keys=["ipv4.src"], value_type="u32", max_entries=entries)
    program.function(
        "watch",
        [
            b.let("n", "u32", b.map_get("hits", "ipv4.src")),
            b.map_put("hits", "ipv4.src", b.binop("+", "n", 1)),
        ],
    )
    program.apply("watch")
    return program.build()


def tenant(name="t1", vlan=100, **permission_kwargs):
    return TenantSpec(
        name=name, vlan_id=vlan, permission=Permission(**permission_kwargs)
    )


class TestAdmission:
    def test_admit_and_compose(self, base_program):
        composer = Composer(base_program)
        composer.admit(tenant(), tenant_extension())
        report = composer.compose()
        assert report.tenants == ("t1",)
        composed = report.composed
        assert composed.has_map("t1__hits")
        assert composed.has_function("t1__watch")

    def test_double_admit_rejected(self, base_program):
        composer = Composer(base_program)
        composer.admit(tenant(), tenant_extension())
        with pytest.raises(CompositionError, match="already admitted"):
            composer.admit(tenant(), tenant_extension())

    def test_evict(self, base_program):
        composer = Composer(base_program)
        composer.admit(tenant(), tenant_extension())
        composer.evict("t1")
        assert composer.tenant_names == []
        composed = composer.compose().composed
        assert not composed.has_map("t1__hits")

    def test_evict_unknown_rejected(self, base_program):
        with pytest.raises(CompositionError):
            Composer(base_program).evict("ghost")

    def test_header_layout_conflict_rejected(self, base_program):
        program = ProgramBuilder("bad", owner="tenant")
        program.header("ipv4", src=32, dst=32)  # different layout
        extension = program.build()
        with pytest.raises(CompositionError, match="different layout"):
            Composer(base_program).admit(tenant(), extension)


class TestAccessControl:
    def test_map_quota_enforced(self, base_program):
        extension = tenant_extension(entries=200_000)
        with pytest.raises(AccessControlError, match="quota"):
            Composer(base_program).admit(tenant(max_map_entries=100), extension)

    def test_table_quota_enforced(self, base_program):
        program = ProgramBuilder("ext", owner="tenant")
        program.header("ipv4", **STANDARD_HEADERS["ipv4"])
        program.action("nop2", [b.call("no_op")])
        program.table("big", keys=["ipv4.src"], actions=["nop2"], size=999_999)
        program.apply("big")
        with pytest.raises(AccessControlError, match="quota"):
            Composer(base_program).admit(tenant(), program.build())

    def test_forbidden_primitive_rejected(self, base_program):
        program = ProgramBuilder("ext", owner="tenant")
        program.header("ipv4", **STANDARD_HEADERS["ipv4"])
        program.function("f", [b.call("recirculate")])
        program.apply("f")
        with pytest.raises(AccessControlError, match="forbidden primitive"):
            Composer(base_program).admit(tenant(), program.build())

    def test_base_map_read_needs_permission(self, base_program):
        program = ProgramBuilder("ext", owner="tenant")
        program.header("ipv4", **STANDARD_HEADERS["ipv4"])
        program.function(
            "peek", [b.let("x", "u64", b.map_get("flow_counts", "ipv4.src", "ipv4.dst"))]
        )
        program.apply("peek")
        extension = program.build(validate=False)
        with pytest.raises(AccessControlError, match="without permission"):
            Composer(base_program).admit(tenant(), extension)
        # with the right permission it is admitted
        composer = Composer(base_program)
        composer.admit(tenant(readable_base_maps=("flow_*",)), extension)
        assert composer.tenant_names == ["t1"]

    def test_base_map_write_always_rejected(self, base_program):
        program = ProgramBuilder("ext", owner="tenant")
        program.header("ipv4", **STANDARD_HEADERS["ipv4"])
        program.function("poison", [b.map_put("flow_counts", "ipv4.src", "ipv4.dst", 0)])
        program.apply("poison")
        with pytest.raises(AccessControlError, match="non-local map"):
            Composer(base_program).admit(
                tenant(readable_base_maps=("*",)), program.build(validate=False)
            )

    def test_new_header_needs_parser_permission(self, base_program):
        program = ProgramBuilder("ext", owner="tenant")
        program.header("ipv4", **STANDARD_HEADERS["ipv4"])
        program.header("vxlan", vni=24)
        program.parser("ipv4", ("ipv4.proto", 17, "vxlan"))
        extension = program.build()
        with pytest.raises(AccessControlError, match="parser permission"):
            Composer(base_program).admit(tenant(), extension)
        composer = Composer(base_program)
        composer.admit(tenant(may_extend_parser=True), extension)


class TestIsolation:
    def test_vlan_guard_wraps_tenant_apply(self, base_program):
        composer = Composer(base_program)
        composer.admit(tenant(vlan=42), tenant_extension())
        composed = composer.compose().composed
        guard = composed.apply[-1]
        assert isinstance(guard, ir.ApplyIf)
        assert guard.condition.right == ir.Const(value=42)
        assert guard.condition.left == ir.MetaRef(key="vlan_id")

    def test_two_tenants_namespaced_independently(self, base_program):
        composer = Composer(base_program)
        composer.admit(tenant("t1", 100), tenant_extension())
        composer.admit(tenant("t2", 200), tenant_extension())
        composed = composer.compose().composed
        assert composed.has_map("t1__hits") and composed.has_map("t2__hits")

    def stateless_extension(self):
        program = ProgramBuilder("stamped", owner="tenant")
        for header, fields in STANDARD_HEADERS.items():
            program.header(header, **fields)
        program.function("stamp_queue", [b.call("set_queue", 3)])
        program.apply("stamp_queue")
        return program.build()

    def test_shared_code_detected(self, base_program):
        composer = Composer(base_program)
        composer.admit(tenant("t1", 100), self.stateless_extension())
        composer.admit(tenant("t2", 200), self.stateless_extension())
        report = composer.compose()
        assert len(report.shared_code) == 1
        assert report.shared_code[0].canonical == "t1__stamp_queue"
        assert report.shared_code[0].duplicates == ("t2__stamp_queue",)

    def test_stateful_functions_never_shared(self, base_program):
        """watch() touches each tenant's own map — sharing would merge
        tenant state, so it must not be a dedup candidate."""
        composer = Composer(base_program)
        composer.admit(tenant("t1", 100), tenant_extension())
        composer.admit(tenant("t2", 200), tenant_extension())
        assert composer.compose().shared_code == ()

    def test_dedupe_collapses_stateless_duplicates(self, base_program):
        composer = Composer(base_program)
        composer.admit(tenant("t1", 100), self.stateless_extension())
        composer.admit(tenant("t2", 200), self.stateless_extension())
        plain = composer.compose().composed
        deduped = composer.compose(dedupe_shared_code=True).composed
        assert plain.has_function("t2__stamp_queue")
        assert not deduped.has_function("t2__stamp_queue")
        assert deduped.has_function("t1__stamp_queue")
        assert len(deduped.functions) == len(plain.functions) - 1
        # t2's guarded apply now references the canonical copy
        guard = deduped.apply[-1]
        assert guard.then_steps == (ir.ApplyFunction(function="t1__stamp_queue"),)
        deduped.validate()

    def test_dedupe_preserves_behaviour(self, base_program):
        from repro.simulator.packet import make_packet
        from repro.simulator.pipeline_exec import ProgramInstance

        composer = Composer(base_program)
        composer.admit(tenant("t1", 100), self.stateless_extension())
        composer.admit(tenant("t2", 200), self.stateless_extension())
        deduped = composer.compose(dedupe_shared_code=True).composed
        instance = ProgramInstance(deduped)
        packet = make_packet(1, 2, vlan_id=200)  # t2 traffic
        instance.process(packet)
        assert packet.meta["queue_id"] == 3  # canonical copy served t2

    def test_field_write_conflict_rejected(self, base_program):
        def writer(name):
            program = ProgramBuilder(name, owner="tenant")
            program.header("ipv4", **STANDARD_HEADERS["ipv4"])
            program.function("stamp", [b.assign("ipv4.ttl", 1)])
            program.apply("stamp")
            return program.build()

        composer = Composer(base_program)
        composer.admit(tenant("t1", 100), writer("w1"))
        composer.admit(tenant("t2", 200), writer("w2"))
        with pytest.raises(CompositionError, match="conflict"):
            composer.compose()

    def test_composed_program_validates(self, base_program):
        composer = Composer(base_program)
        composer.admit(tenant(), tenant_extension())
        composed = composer.compose().composed
        assert composed.validate() is composed
