"""Tokenizer tests."""

import pytest

from repro.errors import ParseError
from repro.lang.lexer import TokenKind, parse_int, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]  # strip EOF


class TestTokenize:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifiers(self):
        assert texts("foo bar_baz _x1") == ["foo", "bar_baz", "_x1"]

    def test_numbers_decimal_hex_binary(self):
        assert texts("42 0x1F 0b101") == ["42", "0x1F", "0b101"]

    def test_punctuation_single(self):
        assert texts("{ } ( ) ; : , .") == ["{", "}", "(", ")", ";", ":", ",", "."]

    def test_multichar_operators_are_greedy(self):
        assert texts("== != <= >= << >> && ||") == [
            "==", "!=", "<=", ">=", "<<", ">>", "&&", "||",
        ]

    def test_lt_followed_by_eq_space_not_merged(self):
        assert texts("< =") == ["<", "="]

    def test_shift_vs_comparison(self):
        assert texts("a<<b a<b") == ["a", "<<", "b", "a", "<", "b"]

    def test_line_comment_discarded(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_block_comment_discarded(self):
        assert texts("a /* multi\nline */ b") == ["a", "b"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unknown_character_raises_with_location(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("a\n$")
        assert excinfo.value.line == 2

    def test_whitespace_variants(self):
        assert texts("a\tb\r\nc") == ["a", "b", "c"]

    def test_ident_with_digits(self):
        assert texts("table1 x2y") == ["table1", "x2y"]

    def test_number_kind(self):
        token = tokenize("123")[0]
        assert token.kind is TokenKind.NUMBER


class TestParseInt:
    def test_decimal(self):
        assert parse_int("42") == 42

    def test_hex(self):
        assert parse_int("0x0800") == 0x0800

    def test_binary(self):
        assert parse_int("0b1010") == 10

    def test_zero(self):
        assert parse_int("0") == 0
