"""Programmatic builder tests."""

import pytest

from repro.errors import TypeCheckError
from repro.lang import builder as b
from repro.lang import ir
from repro.lang.builder import ProgramBuilder


class TestExprCoercion:
    def test_int_to_const(self):
        assert b.expr(5) == ir.Const(value=5)

    def test_dotted_string_to_field_ref(self):
        assert b.expr("ipv4.src") == ir.FieldRef("ipv4", "src")

    def test_meta_string_to_meta_ref(self):
        assert b.expr("meta.vlan_id") == ir.MetaRef(key="vlan_id")

    def test_bare_name_to_var_ref(self):
        assert b.expr("x") == ir.VarRef(name="x")

    def test_ir_passthrough(self):
        node = ir.Const(value=1)
        assert b.expr(node) is node

    def test_bool_rejected(self):
        with pytest.raises(TypeCheckError):
            b.expr(True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeCheckError):
            b.expr(3.14)


class TestStatementHelpers:
    def test_assign_requires_lvalue(self):
        with pytest.raises(TypeCheckError):
            b.assign(5, 1)

    def test_map_put_needs_key_and_value(self):
        with pytest.raises(TypeCheckError):
            b.map_put("m", 1)

    def test_if_defaults_empty_else(self):
        stmt = b.if_(b.binop(">", "x", 1), [b.call("no_op")])
        assert stmt.else_body == ()

    def test_hash_of(self):
        expr = b.hash_of("ipv4.src", 7, modulus=128)
        assert expr.modulus == 128
        assert len(expr.args) == 2


class TestBuilderFlow:
    def test_full_program_builds(self, base_program):
        assert base_program.name == "infra"
        assert base_program.version == 1
        assert base_program.has_table("acl")

    def test_apply_unknown_step_rejected(self):
        program = ProgramBuilder("t").header("h", a=8)
        with pytest.raises(TypeCheckError, match="matches no declared"):
            program.apply("ghost")

    def test_apply_if_builder(self):
        program = ProgramBuilder("t")
        program.header("h", a=8)
        program.function("f", [b.call("no_op")])
        program.apply(program.apply_if(b.binop(">", "h.a", 1), ["f"]))
        built = program.build()
        assert isinstance(built.apply[0], ir.ApplyIf)

    def test_owner_propagates(self):
        built = ProgramBuilder("t", owner="tenantA").header("h", a=8).build()
        assert built.owner == "tenantA"

    def test_default_as_plain_string(self):
        program = ProgramBuilder("t")
        program.header("h", a=8)
        program.action("nop", [b.call("no_op")])
        program.table("t1", keys=["h.a"], actions=["nop"], size=4, default="nop")
        built = program.build()
        assert built.table("t1").default_action == ir.ActionCall(action="nop")
