"""Program validation (name resolution + type checking) tests."""

import pytest

from repro.errors import TypeCheckError
from repro.lang import builder as b
from repro.lang import ir
from repro.lang.builder import ProgramBuilder


def simple_builder():
    program = ProgramBuilder("t")
    program.header("h", a=8, b=32)
    return program


class TestUniqueness:
    def test_duplicate_headers_rejected(self):
        program = ProgramBuilder("t").header("h", a=8).header("h", b=8)
        with pytest.raises(TypeCheckError, match="duplicate header"):
            program.build()

    def test_duplicate_tables_rejected(self):
        program = simple_builder()
        program.action("nop", [b.call("no_op")])
        program.table("t1", keys=["h.a"], actions=["nop"], size=4)
        program.table("t1", keys=["h.b"], actions=["nop"], size=4)
        with pytest.raises(TypeCheckError, match="duplicate table"):
            program.build()

    def test_table_function_name_collision_rejected(self):
        program = simple_builder()
        program.action("nop", [b.call("no_op")])
        program.table("x", keys=["h.a"], actions=["nop"], size=4)
        program.function("x", [b.call("no_op")])
        with pytest.raises(TypeCheckError, match="duplicate element"):
            program.build()


class TestTableValidation:
    def test_unknown_action_rejected(self):
        program = simple_builder()
        program.table("t1", keys=["h.a"], actions=["ghost"], size=4)
        with pytest.raises(TypeCheckError, match="unknown action"):
            program.build()

    def test_unknown_key_field_rejected(self):
        program = simple_builder()
        program.action("nop", [b.call("no_op")])
        program.table("t1", keys=["h.zzz"], actions=["nop"], size=4)
        with pytest.raises(TypeCheckError, match="no field"):
            program.build()

    def test_nonpositive_size_rejected(self):
        program = simple_builder()
        program.action("nop", [b.call("no_op")])
        program.table("t1", keys=["h.a"], actions=["nop"], size=0)
        with pytest.raises(TypeCheckError, match="positive size"):
            program.build()

    def test_default_action_arity_checked(self):
        program = simple_builder()
        program.action("fwd", [b.call("set_port", "p")], params=[("p", "u16")])
        program.table("t1", keys=["h.a"], actions=["fwd"], size=4, default=("fwd", ()))
        with pytest.raises(TypeCheckError, match="expects 1 args"):
            program.build()

    def test_default_action_arg_overflow_checked(self):
        program = simple_builder()
        program.action("fwd", [b.call("set_port", "p")], params=[("p", "u8")])
        program.table("t1", keys=["h.a"], actions=["fwd"], size=4, default=("fwd", (300,)))
        with pytest.raises(TypeCheckError, match="overflows"):
            program.build()

    def test_keyless_table_needs_default(self):
        program = simple_builder()
        program.action("nop", [b.call("no_op")])
        program.table("t1", keys=[], actions=["nop"], size=1)
        with pytest.raises(TypeCheckError, match="keyless"):
            program.build()


class TestActionValidation:
    def test_control_flow_in_action_rejected(self):
        program = simple_builder()
        program.action("bad", [b.if_(b.binop(">", "h.a", 1), [b.call("mark_drop")])])
        with pytest.raises(TypeCheckError, match="control flow"):
            program.build()

    def test_unknown_primitive_rejected(self):
        program = simple_builder()
        program.action("bad", [ir.PrimitiveCall(name="teleport")])
        with pytest.raises(TypeCheckError, match="unknown primitive"):
            program.build()


class TestFunctionValidation:
    def test_undeclared_variable_rejected(self):
        program = simple_builder()
        program.function("f", [b.assign("x", 1)])
        with pytest.raises(TypeCheckError, match="undeclared"):
            program.build()

    def test_variable_redeclaration_rejected(self):
        program = simple_builder()
        program.function("f", [b.let("x", "u8", 1), b.let("x", "u8", 2)])
        with pytest.raises(TypeCheckError, match="redeclared"):
            program.build()

    def test_if_condition_must_be_bool(self):
        program = simple_builder()
        program.function("f", [b.if_(b.expr("h.a"), [b.call("no_op")])])
        with pytest.raises(TypeCheckError, match="boolean"):
            program.build()

    def test_repeat_count_positive(self):
        program = simple_builder()
        program.function("f", [b.repeat(0, [b.call("no_op")])])
        with pytest.raises(TypeCheckError, match="positive"):
            program.build()

    def test_map_key_arity_checked(self):
        program = simple_builder()
        program.map("m", keys=["h.a", "h.b"], value_type="u64", max_entries=4)
        program.function("f", [b.map_put("m", "h.a", 1)])
        with pytest.raises(TypeCheckError, match="key parts"):
            program.build()

    def test_negative_literal_rejected(self):
        program = simple_builder()
        program.function("f", [b.let("x", "u8", ir.Const(value=-1))])
        with pytest.raises(TypeCheckError, match="unsigned"):
            program.build()

    def test_scoping_between_branches(self):
        # a let inside then-branch is not visible in else-branch
        program = simple_builder()
        program.function(
            "f",
            [
                b.if_(
                    b.binop(">", "h.a", 1),
                    [b.let("x", "u8", 1)],
                    [b.assign("x", 2)],
                )
            ],
        )
        with pytest.raises(TypeCheckError, match="undeclared"):
            program.build()


class TestParserValidation:
    def test_unknown_start_header_rejected(self):
        program = ProgramBuilder("t").header("h", a=8)
        program.parser("ghost")
        with pytest.raises(TypeCheckError, match="unknown header"):
            program.build()

    def test_transition_to_unknown_header_rejected(self):
        program = ProgramBuilder("t").header("h", a=8)
        program.parser("h", ("h.a", 1, "ghost"))
        with pytest.raises(TypeCheckError, match="unknown header"):
            program.build()

    def test_headers_extracted_and_state_count(self):
        program = ProgramBuilder("t").header("h", a=8).header("g", b=8)
        program.parser("h", ("h.a", 1, "g"))
        built = program.build()
        assert built.parser.headers_extracted == ("h", "g")
        assert built.parser.state_count == 2


class TestProgramQueries:
    def test_element_names(self):
        program = simple_builder()
        program.map("m", keys=["h.a"], value_type="u32", max_entries=4)
        program.action("nop", [b.call("no_op")])
        program.table("t1", keys=["h.a"], actions=["nop"], size=4)
        program.function("f", [b.call("no_op")])
        built = program.build()
        assert set(built.element_names) == {"t1", "f", "m"}

    def test_bump_version(self):
        built = simple_builder().build()
        assert built.bump_version().version == built.version + 1

    def test_table_key_bits(self):
        program = simple_builder()
        program.action("nop", [b.call("no_op")])
        program.table("t1", keys=["h.a", "h.b"], actions=["nop"], size=4)
        built = program.build()
        assert built.table_key_bits(built.table("t1")) == 40
