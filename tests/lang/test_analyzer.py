"""Bounded-execution certification tests."""

import pytest

from repro.errors import AnalysisError
from repro.lang import builder as b
from repro.lang.analyzer import Analyzer, certify
from repro.lang.builder import ProgramBuilder


def program_with_function(body, maps=()):
    program = ProgramBuilder("t")
    program.header("h", a=32, b=32)
    for name, entries in maps:
        program.map(name, keys=["h.a"], value_type="u64", max_entries=entries)
    program.function("f", body)
    program.apply("f")
    return program.build()


class TestCosts:
    def test_cost_scales_with_repeat(self):
        small = certify(program_with_function([b.repeat(2, [b.call("no_op")])]))
        large = certify(program_with_function([b.repeat(20, [b.call("no_op")])]))
        assert large.max_packet_ops > small.max_packet_ops
        # repeat cost is affine in the count: 1 dispatch + count * body
        small_body = small.profile("f").max_ops - 1
        large_body = large.profile("f").max_ops - 1
        assert large_body == pytest.approx(10 * small_body, rel=0.01)

    def test_if_takes_worst_branch(self):
        heavy_then = certify(
            program_with_function(
                [b.if_(b.binop(">", "h.a", 0), [b.repeat(50, [b.call("no_op")])], [b.call("no_op")])]
            )
        )
        light = certify(
            program_with_function(
                [b.if_(b.binop(">", "h.a", 0), [b.call("no_op")], [b.call("no_op")])]
            )
        )
        assert heavy_then.profile("f").max_ops > light.profile("f").max_ops

    def test_map_ops_cost_more_than_arithmetic(self):
        with_map = certify(
            program_with_function(
                [b.map_put("m", "h.a", 1)], maps=[("m", 16)]
            )
        )
        without = certify(program_with_function([b.let("x", "u32", 1)]))
        assert with_map.profile("f").max_ops > without.profile("f").max_ops

    def test_parser_states_add_to_packet_cost(self, base_program, base_certificate):
        assert base_certificate.max_packet_ops > 0

    def test_table_cost_includes_worst_action(self):
        program = ProgramBuilder("t")
        program.header("h", a=32)
        program.action("cheap", [b.call("no_op")])
        program.action(
            "pricey",
            [b.assign("h.a", b.binop("+", b.binop("*", "h.a", 3), 7))],
        )
        program.table("t1", keys=["h.a"], actions=["cheap", "pricey"], size=4)
        program.apply("t1")
        certificate = certify(program.build())
        pricey_ops = certificate.profile("pricey").max_ops
        assert certificate.profile("t1").max_ops == 1 + pricey_ops


class TestProfiles:
    def test_map_read_write_sets(self):
        certificate = certify(
            program_with_function(
                [
                    b.let("c", "u64", b.map_get("m", "h.a")),
                    b.map_put("m", "h.a", b.binop("+", "c", 1)),
                ],
                maps=[("m", 64)],
            )
        )
        profile = certificate.profile("f")
        assert profile.map_reads == ("m",)
        assert profile.map_writes == ("m",)
        assert profile.is_stateful

    def test_stateless_function_profile(self):
        certificate = certify(program_with_function([b.call("no_op")]))
        assert not certificate.profile("f").is_stateful
        assert not certificate.is_stateful

    def test_map_profile_entries_and_key_bits(self):
        certificate = certify(
            program_with_function([b.call("no_op")], maps=[("m", 512)])
        )
        profile = certificate.profile("m")
        assert profile.kind == "map"
        assert profile.table_entries == 512
        assert profile.key_bits == 32

    def test_unknown_profile_raises(self):
        certificate = certify(program_with_function([b.call("no_op")]))
        with pytest.raises(AnalysisError):
            certificate.profile("ghost")

    def test_table_profile_ternary_flag(self, base_certificate):
        assert base_certificate.profile("acl").is_ternary
        assert not base_certificate.profile("l2").is_ternary


class TestAdmissionBounds:
    def test_over_ops_budget_rejected(self):
        program = program_with_function(
            [b.repeat(10_000, [b.repeat(100, [b.call("no_op")])])]
        )
        with pytest.raises(AnalysisError, match="exceeds admission bound"):
            certify(program)

    def test_over_map_budget_rejected(self):
        program = program_with_function(
            [b.call("no_op")], maps=[("m", 20_000_000)]
        )
        with pytest.raises(AnalysisError, match="map entries"):
            certify(program)

    def test_custom_bounds(self):
        program = program_with_function([b.repeat(100, [b.call("no_op")])])
        tight = Analyzer(max_packet_ops=10)
        with pytest.raises(AnalysisError):
            tight.certify(program)


class TestWellBehavedness:
    def test_write_to_parser_select_field_rejected(self):
        program = ProgramBuilder("t")
        program.header("eth", ethertype=16)
        program.header("v4", ttl=8)
        program.parser("eth", ("eth.ethertype", 0x0800, "v4"))
        program.function("f", [b.assign("eth.ethertype", 0)])
        program.apply("f")
        with pytest.raises(AnalysisError, match="parser-select"):
            certify(program.build())

    def test_write_to_nonselect_field_allowed(self):
        program = ProgramBuilder("t")
        program.header("eth", ethertype=16)
        program.header("v4", ttl=8)
        program.parser("eth", ("eth.ethertype", 0x0800, "v4"))
        program.function("f", [b.assign("v4.ttl", 7)])
        program.apply("f")
        assert certify(program.build()) is not None

    def test_recirculation_detected(self):
        certificate = certify(program_with_function([b.call("recirculate")]))
        assert certificate.recirculates

    def test_no_recirculation_by_default(self, base_certificate):
        assert not base_certificate.recirculates
