"""FlexBPF parser tests."""

import pytest

from repro.errors import ParseError, TypeCheckError
from repro.lang import ir
from repro.lang.parser import parse_program

MINIMAL = """
program p {
  header eth { dst:48; src:48; ethertype:16; }
  action fwd(port: u16) { set_port(port); }
  table l2 { key: eth.dst; actions: fwd; size: 16; default: fwd(1); }
  apply { l2; }
}
"""

FULL = """
program full {
  header ethernet { dst:48; src:48; ethertype:16; }
  header ipv4 { src:32; dst:32; proto:8; ttl:8; }
  parser {
    start ethernet;
    on ethernet.ethertype == 0x0800 extract ipv4;
  }
  map counts { key: ipv4.src; value: u64; max_entries: 128; persistence: ephemeral; }
  action drop() { mark_drop(); }
  action nop() { no_op(); }
  table acl {
    key: ipv4.src ternary, ipv4.dst lpm;
    actions: drop, nop;
    size: 64;
    default: nop;
  }
  func tally() {
    let c: u64 = map_get(counts, ipv4.src);
    map_put(counts, ipv4.src, c + 1);
    if (c > 100 && ipv4.ttl != 0) {
      repeat 3 { no_op(); }
    } else {
      ipv4.ttl = ipv4.ttl - 1;
    }
  }
  apply {
    acl;
    if (ipv4.ttl > 0) { tally(); }
  }
}
"""


class TestProgramStructure:
    def test_minimal_program(self):
        program = parse_program(MINIMAL)
        assert program.name == "p"
        assert [t.name for t in program.tables] == ["l2"]
        assert program.apply == (ir.ApplyTable(table="l2"),)

    def test_full_program_elements(self):
        program = parse_program(FULL)
        assert {h.name for h in program.headers} == {"ethernet", "ipv4"}
        assert program.parser.start_header == "ethernet"
        assert program.parser.state_count == 2
        assert program.map("counts").persistence is ir.Persistence.EPHEMERAL
        assert program.table("acl").is_ternary
        assert program.table("acl").is_lpm
        assert program.has_function("tally")

    def test_header_field_widths(self):
        program = parse_program(FULL)
        assert program.field_width(ir.FieldRef("ipv4", "ttl")) == 8
        assert program.field_width(ir.FieldRef("ethernet", "dst")) == 48

    def test_table_default_with_args(self):
        program = parse_program(MINIMAL)
        default = program.table("l2").default_action
        assert default.action == "fwd"
        assert default.args == (1,)

    def test_apply_if_else(self):
        program = parse_program(FULL)
        step = program.apply[1]
        assert isinstance(step, ir.ApplyIf)
        assert step.then_steps == (ir.ApplyFunction(function="tally"),)

    def test_match_kind_default_is_exact(self):
        program = parse_program(MINIMAL)
        assert program.table("l2").keys[0].match_kind is ir.MatchKind.EXACT

    def test_hex_select_value(self):
        program = parse_program(FULL)
        assert program.parser.transitions[0].select_value == 0x0800


class TestStatements:
    def test_let_and_map_ops(self):
        program = parse_program(FULL)
        body = program.function("tally").body
        assert isinstance(body[0], ir.Let)
        assert isinstance(body[1], ir.MapPut)
        assert isinstance(body[2], ir.If)

    def test_repeat_inside_if(self):
        program = parse_program(FULL)
        if_stmt = program.function("tally").body[2]
        assert isinstance(if_stmt.then_body[0], ir.Repeat)
        assert if_stmt.then_body[0].count == 3

    def test_else_branch_field_assignment(self):
        program = parse_program(FULL)
        if_stmt = program.function("tally").body[2]
        assign = if_stmt.else_body[0]
        assert isinstance(assign, ir.Assign)
        assert assign.target == ir.FieldRef("ipv4", "ttl")

    def test_map_delete(self):
        source = MINIMAL.replace(
            "apply { l2; }",
            """
            map m { key: eth.dst; value: u32; max_entries: 4; }
            func f() { map_delete(m, eth.dst); }
            apply { l2; f(); }
            """,
        )
        program = parse_program(source)
        assert isinstance(program.function("f").body[0], ir.MapDelete)

    def test_meta_assignment(self):
        source = MINIMAL.replace(
            "apply { l2; }",
            "func f() { meta.egress_port = 3; } apply { l2; f(); }",
        )
        program = parse_program(source)
        stmt = program.function("f").body[0]
        assert isinstance(stmt.target, ir.MetaRef)
        assert stmt.target.key == "egress_port"


class TestExpressions:
    def test_precedence_mul_over_add(self):
        source = MINIMAL.replace(
            "apply { l2; }",
            "func f() { let x: u32 = 1 + 2 * 3; } apply { l2; f(); }",
        )
        program = parse_program(source)
        expr = program.function("f").body[0].value
        assert expr.kind is ir.BinOpKind.ADD
        assert expr.right.kind is ir.BinOpKind.MUL

    def test_parenthesized_grouping(self):
        source = MINIMAL.replace(
            "apply { l2; }",
            "func f() { let x: u32 = (1 + 2) * 3; } apply { l2; f(); }",
        )
        expr = parse_program(source).function("f").body[0].value
        assert expr.kind is ir.BinOpKind.MUL

    def test_unary_not_and_invert(self):
        source = MINIMAL.replace(
            "apply { l2; }",
            "func f() { if (!(eth.dst == 0)) { let y: u64 = ~eth.src; } } apply { l2; f(); }",
        )
        body = parse_program(source).function("f").body
        assert isinstance(body[0].condition, ir.UnOp)
        assert body[0].condition.op == "!"

    def test_hash_expression(self):
        source = MINIMAL.replace(
            "apply { l2; }",
            "func f() { let h: u32 = hash(eth.dst, eth.src) % 64; } apply { l2; f(); }",
        )
        expr = parse_program(source).function("f").body[0].value
        assert isinstance(expr, ir.HashExpr)
        assert expr.modulus == 64

    def test_logical_operators(self):
        source = MINIMAL.replace(
            "apply { l2; }",
            "func f() { if (eth.dst == 1 || eth.src == 2 && eth.ethertype == 3) { no_op(); } } apply { l2; f(); }",
        )
        condition = parse_program(source).function("f").body[0].condition
        # || binds loosest
        assert condition.kind is ir.BinOpKind.LOR


class TestParseErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("program p { header h { x:8 } }")

    def test_unknown_declaration(self):
        with pytest.raises(ParseError):
            parse_program("program p { widget w {} }")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_program(MINIMAL + "garbage")

    def test_apply_references_unknown_element(self):
        with pytest.raises(ParseError):
            parse_program(
                "program p { header h { x:8; } action a() { no_op(); } "
                "table t { key: h.x; actions: a; size: 4; } apply { missing; } }"
            )

    def test_map_missing_attributes(self):
        with pytest.raises(ParseError):
            parse_program("program p { map m { key: h.x; } }")

    def test_table_missing_size(self):
        with pytest.raises(ParseError):
            parse_program(
                "program p { header h { x:8; } action a() { no_op(); } "
                "table t { key: h.x; actions: a; } apply { t; } }"
            )

    def test_duplicate_parser_block(self):
        with pytest.raises(ParseError):
            parse_program(
                "program p { header h { x:8; } parser { start h; } parser { start h; } }"
            )

    def test_validation_error_propagates(self):
        # parses fine, but table references unknown action
        with pytest.raises(TypeCheckError):
            parse_program(
                "program p { header h { x:8; } "
                "table t { key: h.x; actions: ghost; size: 4; } apply { t; } }"
            )
