"""Runtime map-state tests."""

import pytest

from repro.errors import FlexNetError
from repro.lang import builder as b
from repro.lang.ir import MapDef, Persistence
from repro.lang.maps import MapFullError, MapSet, MapState
from repro.lang.types import BitsType


def make_map(entries=4, persistence=Persistence.DURABLE, value_bits=64):
    return MapState(
        MapDef(
            name="m",
            key_fields=(b.field("h.a"),),
            value_type=BitsType(value_bits),
            max_entries=entries,
            persistence=persistence,
        )
    )


class TestMapState:
    def test_absent_key_reads_zero(self):
        assert make_map().get((1,)) == 0

    def test_put_get_roundtrip(self):
        state = make_map()
        state.put((1,), 42)
        assert state.get((1,)) == 42
        assert (1,) in state

    def test_value_truncated_to_width(self):
        state = make_map(value_bits=8)
        state.put((1,), 300)
        assert state.get((1,)) == 300 & 0xFF

    def test_delete(self):
        state = make_map()
        state.put((1,), 1)
        assert state.delete((1,))
        assert not state.delete((1,))
        assert state.get((1,)) == 0

    def test_durable_full_map_rejects_insert(self):
        state = make_map(entries=2)
        state.put((1,), 1)
        state.put((2,), 2)
        with pytest.raises(MapFullError):
            state.put((3,), 3)

    def test_durable_full_map_allows_update(self):
        state = make_map(entries=2)
        state.put((1,), 1)
        state.put((2,), 2)
        state.put((1,), 99)  # update in place
        assert state.get((1,)) == 99

    def test_ephemeral_full_map_evicts_lru(self):
        state = make_map(entries=2, persistence=Persistence.EPHEMERAL)
        state.put((1,), 1)
        state.put((2,), 2)
        state.get((1,))  # does not refresh (only put moves to end)
        state.put((3,), 3)
        assert (1,) not in state  # oldest inserted evicted
        assert (2,) in state and (3,) in state

    def test_mutation_count_tracks_writes(self):
        state = make_map()
        baseline = state.mutation_count
        state.put((1,), 1)
        state.put((1,), 2)
        state.delete((1,))
        assert state.mutation_count == baseline + 3

    def test_clear(self):
        state = make_map()
        state.put((1,), 1)
        state.clear()
        assert len(state) == 0


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self):
        source = make_map()
        source.put((1,), 10)
        source.put((2,), 20)
        destination = make_map()
        destination.restore(source.snapshot())
        assert destination.get((1,)) == 10
        assert destination.get((2,)) == 20

    def test_snapshot_is_immutable_view(self):
        source = make_map()
        source.put((1,), 10)
        snapshot = source.snapshot()
        source.put((1,), 99)
        assert snapshot.as_dict()[(1,)] == 10

    def test_restore_wrong_map_rejected(self):
        other = MapState(
            MapDef(
                name="other",
                key_fields=(b.field("h.a"),),
                value_type=BitsType(64),
                max_entries=4,
            )
        )
        with pytest.raises(FlexNetError):
            make_map().restore(other.snapshot())

    def test_merge_last_writer(self):
        first = make_map()
        first.put((1,), 1)
        second = make_map()
        second.put((1,), 100)
        first.merge(second.snapshot())
        assert first.get((1,)) == 100

    def test_merge_sum_for_counters(self):
        first = make_map()
        first.put((1,), 5)
        second = make_map()
        second.put((1,), 7)
        second.put((2,), 3)
        first.merge(second.snapshot(), combine="sum")
        assert first.get((1,)) == 12
        assert first.get((2,)) == 3


class TestMapSet:
    def make_set(self):
        defs = (
            MapDef(
                name="a",
                key_fields=(b.field("h.x"),),
                value_type=BitsType(64),
                max_entries=8,
            ),
            MapDef(
                name="b",
                key_fields=(b.field("h.y"),),
                value_type=BitsType(32),
                max_entries=8,
                persistence=Persistence.EPHEMERAL,
            ),
        )
        return MapSet(defs)

    def test_contains_and_names(self):
        maps = self.make_set()
        assert "a" in maps and "b" in maps and "c" not in maps
        assert maps.names() == ["a", "b"]

    def test_unknown_map_raises(self):
        with pytest.raises(FlexNetError):
            self.make_set().state("ghost")

    def test_snapshot_durable_only(self):
        maps = self.make_set()
        maps.state("a").put((1,), 1)
        maps.state("b").put((1,), 1)
        durable = maps.snapshot_all(durable_only=True)
        assert [s.map_name for s in durable] == ["a"]

    def test_adopt_carries_matching_state(self):
        old = self.make_set()
        old.state("a").put((1,), 42)
        new = self.make_set()
        new.adopt(old)
        assert new.state("a").get((1,)) == 42

    def test_adopt_skips_shape_mismatch(self):
        old = self.make_set()
        old.state("a").put((1,), 42)
        new_defs = (
            MapDef(
                name="a",
                key_fields=(b.field("h.x"), b.field("h.y")),  # different keys
                value_type=BitsType(64),
                max_entries=8,
            ),
        )
        new = MapSet(new_defs)
        new.adopt(old)
        assert len(new.state("a")) == 0
