"""Incremental-change DSL tests."""

import pytest

from repro.errors import CompositionError
from repro.lang import builder as b
from repro.lang import ir
from repro.lang.delta import (
    AddAction,
    AddParserTransition,
    AddTable,
    AddTableActions,
    ChangeSet,
    Delta,
    InsertApply,
    RemoveElements,
    RemoveParserTransition,
    SetMapEntries,
    SetTableSize,
    apply_delta,
    match_elements,
    parse_delta,
)


class TestPatternMatching:
    def test_glob_matches_tables(self, base_program):
        assert match_elements(base_program, "l*", "table") == ["l2", "l3"]

    def test_kind_restriction(self, base_program):
        assert match_elements(base_program, "*", "map") == ["flow_counts"]

    def test_all_kinds(self, base_program):
        names = match_elements(base_program, "*")
        assert "acl" in names and "count_flow" in names and "flow_counts" in names

    def test_unknown_kind_rejected(self, base_program):
        with pytest.raises(CompositionError):
            match_elements(base_program, "*", "gadget")


class TestChangeSet:
    def test_merge_accumulates(self):
        first = ChangeSet(added=frozenset({"a"}))
        second = ChangeSet(removed=frozenset({"b"}), apply_changed=True)
        merged = first.merge(second)
        assert merged.added == frozenset({"a"})
        assert merged.removed == frozenset({"b"})
        assert merged.apply_changed

    def test_add_then_remove_cancels(self):
        first = ChangeSet(added=frozenset({"x"}))
        second = ChangeSet(removed=frozenset({"x"}))
        merged = first.merge(second)
        assert "x" not in merged.added
        assert "x" in merged.removed

    def test_is_empty(self):
        assert ChangeSet().is_empty()
        assert not ChangeSet(added=frozenset({"x"})).is_empty()


class TestOperations:
    def test_add_table_and_insert(self, base_program):
        drop2 = ir.ActionDef(name="drop2", params=(), body=(b.call("mark_drop"),))
        table = ir.TableDef(
            name="guard",
            keys=(ir.TableKey(field=b.field("ipv4.src"), match_kind=ir.MatchKind.EXACT),),
            actions=("drop2",),
            size=8,
            default_action=ir.ActionCall(action="drop2"),
        )
        delta = Delta(
            name="d",
            ops=(
                AddAction(drop2),
                AddTable(table),
                InsertApply(element="guard", position="before", anchor="acl"),
            ),
        )
        new_program, changes = apply_delta(base_program, delta)
        assert new_program.version == base_program.version + 1
        assert changes.added == frozenset({"guard"})
        assert new_program.apply[0] == ir.ApplyTable(table="guard")
        # original untouched
        assert not base_program.has_table("guard")

    def test_duplicate_add_rejected(self, base_program):
        table = base_program.table("acl")
        delta = Delta(name="d", ops=(AddTable(table),))
        with pytest.raises(CompositionError, match="already exists"):
            apply_delta(base_program, delta)

    def test_remove_prunes_apply_and_orphaned_actions(self, base_program):
        delta = Delta(name="d", ops=(RemoveElements(pattern="l2", kind="table"),))
        new_program, changes = apply_delta(base_program, delta)
        assert changes.removed == frozenset({"l2"})
        assert not any(
            isinstance(s, ir.ApplyTable) and s.table == "l2" for s in new_program.apply
        )
        # forward still referenced by l3, so not GC'd
        assert new_program.has_action("forward")

    def test_remove_orphan_action_gc(self, base_program):
        # removing both l2 and l3 orphans 'forward'
        delta = Delta(name="d", ops=(RemoveElements(pattern="l[23]", kind="table"),))
        new_program, changes = apply_delta(base_program, delta)
        assert changes.removed == frozenset({"l2", "l3"})
        assert not new_program.has_action("forward")

    def test_remove_no_match_rejected(self, base_program):
        delta = Delta(name="d", ops=(RemoveElements(pattern="zzz*"),))
        with pytest.raises(CompositionError, match="matches no"):
            apply_delta(base_program, delta)

    def test_resize_table(self, base_program):
        delta = Delta(name="d", ops=(SetTableSize(pattern="acl", size=4096),))
        new_program, changes = apply_delta(base_program, delta)
        assert new_program.table("acl").size == 4096
        assert changes.modified == frozenset({"acl"})

    def test_resize_map(self, base_program):
        delta = Delta(name="d", ops=(SetMapEntries(pattern="flow_*", max_entries=128),))
        new_program, _ = apply_delta(base_program, delta)
        assert new_program.map("flow_counts").max_entries == 128

    def test_attach_action(self, base_program):
        delta = Delta(name="d", ops=(AddTableActions(pattern="l2", actions=("drop",)),))
        new_program, changes = apply_delta(base_program, delta)
        assert "drop" in new_program.table("l2").actions
        assert changes.modified == frozenset({"l2"})

    def test_insert_missing_anchor_rejected(self, base_program):
        delta = Delta(
            name="d",
            ops=(InsertApply(element="count_flow", position="after", anchor="ghost"),),
        )
        with pytest.raises(CompositionError, match="anchor"):
            apply_delta(base_program, delta)

    def test_insert_append_at_end(self, base_program):
        delta = Delta(name="d", ops=(InsertApply(element="count_flow"),))
        new_program, _ = apply_delta(base_program, delta)
        assert new_program.apply[-1] == ir.ApplyFunction(function="count_flow")

    def test_parser_transition_add_remove(self, base_program):
        add = Delta(
            name="d",
            ops=(
                AddParserTransition(
                    ir.ParserTransition(
                        next_header="tcp",
                        select_field=b.field("ipv4.proto"),
                        select_value=17,
                    )
                ),
            ),
        )
        new_program, changes = apply_delta(base_program, add)
        assert changes.apply_changed
        assert new_program.parser.state_count == base_program.parser.state_count + 1

        remove = Delta(name="d2", ops=(RemoveParserTransition(next_header="tcp"),))
        trimmed, _ = apply_delta(new_program, remove)
        assert trimmed.parser.state_count == base_program.parser.state_count - 1

    def test_atomicity_on_failure(self, base_program):
        # second op fails; program must be unchanged
        table = ir.TableDef(
            name="guard",
            keys=(ir.TableKey(field=b.field("ipv4.src"), match_kind=ir.MatchKind.EXACT),),
            actions=("ghost_action",),  # unknown action -> joint analysis fails
            size=8,
        )
        delta = Delta(name="d", ops=(AddTable(table),))
        with pytest.raises(CompositionError, match="ill-typed"):
            apply_delta(base_program, delta)
        assert not base_program.has_table("guard")


class TestTextualDsl:
    def test_parse_full_delta(self, base_program):
        delta = parse_delta(
            """
            delta patch {
              add map syn_counts { key: ipv4.src; value: u32; max_entries: 64; }
              add action d2() { mark_drop(); }
              add table syn_filter { key: ipv4.src; actions: d2; size: 32; default: d2; }
              insert syn_filter before acl;
              resize table acl 2048;
            }
            """
        )
        assert delta.name == "patch"
        assert len(delta.ops) == 5
        new_program, changes = apply_delta(base_program, delta)
        assert changes.added == frozenset({"syn_filter", "syn_counts"})
        assert new_program.table("acl").size == 2048

    def test_parse_remove_with_glob(self, base_program):
        delta = parse_delta("delta d { remove table l* ; }")
        new_program, changes = apply_delta(base_program, delta)
        assert changes.removed == frozenset({"l2", "l3"})

    def test_parse_attach(self, base_program):
        delta = parse_delta("delta d { attach drop to l2; }")
        new_program, _ = apply_delta(base_program, delta)
        assert "drop" in new_program.table("l2").actions

    def test_parse_resize_map(self, base_program):
        delta = parse_delta("delta d { resize map flow_counts 99; }")
        new_program, _ = apply_delta(base_program, delta)
        assert new_program.map("flow_counts").max_entries == 99

    def test_parse_unknown_operation_rejected(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_delta("delta d { explode table x; }")

    def test_delta_is_much_smaller_than_program(self, base_program):
        """E14's core claim in miniature: a patch is ~10x smaller than
        re-specifying the program."""
        patch_text = "delta d { resize table acl 2048; }"
        # a textual respecification would be at least one line per element
        program_size = (
            len(base_program.tables)
            + len(base_program.actions)
            + len(base_program.functions)
            + len(base_program.maps)
            + len(base_program.headers)
        )
        assert len(patch_text.splitlines()) * 10 <= program_size * 10
        assert len(patch_text) < 60
