"""Mantis-style baseline tests."""

import pytest

from repro.baselines.mantis import ACTIVATION_LATENCY_S, MantisDevice, ProvisionedSlot
from repro.errors import ReconfigError
from repro.targets import rmt_switch
from repro.targets.resources import ResourceVector


def slot(name, sram=500.0, alus=2):
    return ProvisionedSlot(name=name, footprint=ResourceVector(sram_kb=sram, alus=alus))


@pytest.fixture
def device():
    return MantisDevice(target=rmt_switch("sw"))


class TestProvisioning:
    def test_provision_reserves_resources(self, device):
        device.provision(slot("a"))
        assert device.pinned_resources()["sram_kb"] == 500.0

    def test_capacity_limit_enforced(self, device):
        with pytest.raises(ReconfigError, match="capacity exhausted"):
            for index in range(100):
                device.provision(slot(f"s{index}", sram=2000.0, alus=1))

    def test_slots_pin_even_when_inactive(self, device):
        device.provision(slot("a"))
        device.provision(slot("b"))
        assert device.wasted_resources()["sram_kb"] if callable(device.wasted_resources) else device.wasted_resources["sram_kb"] == 1000.0


class TestActivation:
    def test_provisioned_behaviour_is_instant(self, device):
        device.provision(slot("resp"))
        result = device.activate("resp")
        assert result.satisfied
        assert result.latency_s == ACTIVATION_LATENCY_S
        assert "resp" in device.active

    def test_unanticipated_behaviour_needs_reflash(self, device):
        result = device.activate("novel")
        assert not result.satisfied
        assert result.required_reflash
        assert result.latency_s > 10.0

    def test_deactivate_keeps_resources_pinned(self, device):
        device.provision(slot("resp"))
        device.activate("resp")
        device.deactivate("resp")
        assert device.wasted_resources["sram_kb"] == 500.0

    def test_activation_log(self, device):
        device.provision(slot("resp"))
        device.activate("resp")
        device.activate("ghost")
        assert len(device.activations) == 2
        assert [a.satisfied for a in device.activations] == [True, False]
