"""Compile-time baseline tests (the §1 contrast)."""

import pytest

from repro.apps.base import base_infrastructure
from repro.apps.firewall import firewall_delta
from repro.baselines.compile_time import CompileTimeNetwork
from repro.errors import ControlPlaneError
from repro.lang.delta import parse_delta
from repro.simulator.flowgen import constant_rate


class TestInstall:
    def test_install_places_program(self):
        baseline = CompileTimeNetwork.standard()
        plan = baseline.install(base_infrastructure())
        assert plan.placement

    def test_update_before_install_rejected(self):
        baseline = CompileTimeNetwork.standard()
        with pytest.raises(ControlPlaneError):
            baseline.update(firewall_delta())


class TestReflashSemantics:
    def test_update_causes_downtime(self):
        baseline = CompileTimeNetwork.standard()
        baseline.install(base_infrastructure())
        event = baseline.update(firewall_delta())
        assert event.downtime_s > 10.0  # drain + reflash + redeploy
        assert "sw1" in event.devices

    def test_packets_lost_during_reflash(self):
        baseline = CompileTimeNetwork.standard()
        baseline.install(base_infrastructure())
        packets = list(constant_rate(500, 60.0))
        baseline.loop.schedule_at(10.0, lambda: baseline.update(firewall_delta()))
        metrics = baseline.run_traffic(packets, extra_time_s=5.0)
        assert metrics.lost_by_infrastructure > 0
        # loss proportional to the downtime window
        expected = 500 * baseline.reflashes[0].downtime_s
        assert metrics.lost_by_infrastructure == pytest.approx(expected, rel=0.1)

    def test_no_update_no_loss(self):
        baseline = CompileTimeNetwork.standard()
        baseline.install(base_infrastructure())
        metrics = baseline.run_traffic(list(constant_rate(500, 5.0)))
        assert metrics.lost_by_infrastructure == 0

    def test_state_cold_after_reflash(self):
        baseline = CompileTimeNetwork.standard()
        baseline.install(base_infrastructure())
        metrics = baseline.run_traffic(list(constant_rate(100, 1.0)), extra_time_s=0.5)
        assert metrics.delivered == 100
        sw1 = baseline.devices["sw1"]
        assert len(sw1.active_instance.maps.state("flow_counts")) > 0
        baseline.update(parse_delta("delta d { resize table acl 2048; }"))
        assert len(sw1.active_instance.maps.state("flow_counts")) == 0

    def test_multiple_reflashes_accumulate(self):
        baseline = CompileTimeNetwork.standard()
        baseline.install(base_infrastructure())
        baseline.update(parse_delta("delta d1 { resize table acl 2048; }"))
        baseline.update(parse_delta("delta d2 { resize table acl 512; }"))
        assert len(baseline.reflashes) == 2
