"""HyPer4-style virtualization baseline tests."""

import pytest

from repro.apps.base import base_infrastructure
from repro.baselines.hyper4 import Hyper4Device
from repro.lang.analyzer import certify
from repro.targets import drmt_switch


@pytest.fixture
def device():
    return Hyper4Device(drmt_switch("sw"))


class TestEmulation:
    def test_op_overhead_applied(self, device, base_certificate):
        report = device.deploy(base_certificate)
        assert report.emulated_ops == int(report.native_ops * device.op_overhead)
        assert report.emulated_latency_ns > report.native_latency_ns

    def test_memory_inflation(self, device, base_certificate):
        report = device.deploy(base_certificate)
        assert report.emulated_memory_kb == pytest.approx(
            report.native_memory_kb * device.memory_overhead
        )

    def test_deploy_is_rule_install_speed(self, device, base_certificate):
        """No reflash: deployment latency is rule churn, far under the
        compile-time baseline's ~30 s drain cycle."""
        report = device.deploy(base_certificate)
        assert report.deploy_latency_s < 1.0

    def test_throughput_penalty(self, device, base_certificate):
        native = device.target.performance.throughput_mpps
        device.deploy(base_certificate)
        assert device.effective_throughput_mpps < native

    def test_interpreter_scaffolding_consumes_memory(self, device):
        assert device.interpreter_overhead["sram_kb"] > 0
        assert device.interpreter_overhead["tcam_kb"] > 0

    def test_capacity_exhaustion(self, device):
        big = certify(base_infrastructure(flow_entries=2_000_000))
        first = device.deploy(big)
        reports = [first]
        for index in range(20):
            from dataclasses import replace

            renamed = replace(big, program_name=f"p{index}")
            reports.append(device.deploy(renamed))
            if not reports[-1].fits:
                break
        assert not reports[-1].fits

    def test_remove_frees_capacity(self, device, base_certificate):
        device.deploy(base_certificate)
        device.remove(base_certificate.program_name)
        assert base_certificate.program_name not in device.deployed
