"""ResourceVector arithmetic tests."""

import pytest

from repro.errors import ResourceError
from repro.targets.resources import ZERO, ResourceVector, total


class TestConstruction:
    def test_kwargs_and_mapping_merge(self):
        vector = ResourceVector({"sram_kb": 10}, sram_kb=5, alus=2)
        assert vector["sram_kb"] == 15
        assert vector["alus"] == 2

    def test_zero_quantities_dropped(self):
        vector = ResourceVector(sram_kb=0)
        assert len(vector) == 0
        assert vector.is_zero()

    def test_negative_rejected(self):
        with pytest.raises(ResourceError):
            ResourceVector(sram_kb=-1)

    def test_missing_kind_reads_zero(self):
        assert ResourceVector(sram_kb=1)["tcam_kb"] == 0


class TestArithmetic:
    def test_addition(self):
        result = ResourceVector(sram_kb=1, alus=1) + ResourceVector(sram_kb=2)
        assert result == ResourceVector(sram_kb=3, alus=1)

    def test_subtraction(self):
        result = ResourceVector(sram_kb=3) - ResourceVector(sram_kb=1)
        assert result == ResourceVector(sram_kb=2)

    def test_overcommit_subtraction_raises(self):
        with pytest.raises(ResourceError, match="overcommitted"):
            ResourceVector(sram_kb=1) - ResourceVector(sram_kb=2)

    def test_scalar_multiplication(self):
        assert 2 * ResourceVector(alus=3) == ResourceVector(alus=6)

    def test_negative_scale_rejected(self):
        with pytest.raises(ResourceError):
            ResourceVector(alus=1) * -1

    def test_total(self):
        vectors = [ResourceVector(sram_kb=1), ResourceVector(sram_kb=2, alus=1)]
        assert total(vectors) == ResourceVector(sram_kb=3, alus=1)
        assert total([]) == ZERO


class TestComparisons:
    def test_fits_within(self):
        assert ResourceVector(sram_kb=1).fits_within(ResourceVector(sram_kb=2))
        assert not ResourceVector(sram_kb=3).fits_within(ResourceVector(sram_kb=2))

    def test_fits_within_missing_kind(self):
        assert not ResourceVector(tcam_kb=1).fits_within(ResourceVector(sram_kb=5))

    def test_deficit(self):
        demand = ResourceVector(sram_kb=5, alus=1)
        capacity = ResourceVector(sram_kb=2, alus=4)
        assert demand.deficit_against(capacity) == {"sram_kb": 3}

    def test_utilization(self):
        demand = ResourceVector(sram_kb=5, alus=1)
        capacity = ResourceVector(sram_kb=10, alus=2)
        assert demand.utilization_of(capacity) == pytest.approx(0.5)

    def test_utilization_of_absent_kind_is_infinite(self):
        assert ResourceVector(tcam_kb=1).utilization_of(ResourceVector(sram_kb=1)) == float("inf")

    def test_equality_ignores_zero_entries(self):
        assert ResourceVector(sram_kb=1) == ResourceVector(sram_kb=1, alus=0)

    def test_hashable(self):
        assert hash(ResourceVector(sram_kb=1)) == hash(ResourceVector(sram_kb=1.0))

    def test_hash_is_process_stable(self):
        """Pinned values: the digest must not depend on PYTHONHASHSEED
        (builtin hash() of the kind strings is salted per process, which
        would make placement digests diverge across runs — the first
        real bug FlexVet's self-audit caught)."""
        assert hash(ResourceVector(sram_kb=1)) == 7848347961845804144
        assert hash(ResourceVector(sram_kb=1.5, stages=2)) == 1324567763127070160
        assert hash(ResourceVector()) == hash(ResourceVector(alus=0))

    def test_projection(self):
        vector = ResourceVector(sram_kb=1, tcam_kb=2)
        assert vector.scaled_to_kinds(frozenset({"sram_kb"})) == ResourceVector(sram_kb=1)
