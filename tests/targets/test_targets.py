"""Device architecture model tests."""

import pytest

from repro.lang.analyzer import ElementProfile
from repro.targets import (
    FungibilityClass,
    StateEncoding,
    drmt_switch,
    fpga,
    host,
    rmt_switch,
    smartnic,
    stage_capacity,
    tiled_switch,
)


def table_profile(entries=1024, key_bits=32, ternary=False, stateful=False):
    return ElementProfile(
        name="t", kind="table", max_ops=3, table_entries=entries,
        key_bits=key_bits, is_ternary=ternary, is_stateful=stateful,
    )


def function_profile(ops):
    return ElementProfile(name="f", kind="function", max_ops=ops)


def map_profile(entries=1024, key_bits=32):
    return ElementProfile(
        name="m", kind="map", table_entries=entries, key_bits=key_bits, is_stateful=True
    )


ALL_TARGETS = {
    "rmt": lambda: rmt_switch("d"),
    "rmt_rt": lambda: rmt_switch("d", runtime_capable=True),
    "drmt": lambda: drmt_switch("d"),
    "tiles": lambda: tiled_switch("d"),
    "smartnic": lambda: smartnic("d"),
    "fpga": lambda: fpga("d"),
    "host": lambda: host("d"),
}


class TestFungibilityClasses:
    def test_paper_classification(self):
        assert rmt_switch("d").fungibility is FungibilityClass.STAGE_LOCAL
        assert drmt_switch("d").fungibility is FungibilityClass.POOLED
        assert tiled_switch("d").fungibility is FungibilityClass.TILE_TYPED
        assert smartnic("d").fungibility is FungibilityClass.FULL
        assert fpga("d").fungibility is FungibilityClass.FULL
        assert host("d").fungibility is FungibilityClass.FULL

    def test_runtime_capable_rmt_becomes_pooled(self):
        assert rmt_switch("d", runtime_capable=True).fungibility is FungibilityClass.POOLED


class TestReconfigModels:
    def test_runtime_switches_are_hitless_and_subsecond(self):
        """§2: 'Program changes complete within a second' while live."""
        for factory in (drmt_switch, tiled_switch):
            target = factory("d")
            assert target.reconfig.hitless
            assert target.reconfig.add_table_s < 1.0
            assert target.reconfig.parser_change_s < 1.0

    def test_stock_rmt_is_not_hitless(self):
        model = rmt_switch("d").reconfig
        assert not model.hitless
        assert model.drain_s > 0
        assert model.full_reflash_s > 10

    def test_ebpf_reload_is_milliseconds(self):
        assert host("d").reconfig.add_table_s < 0.01

    def test_fpga_partial_reconfig_is_fast_and_hitless(self):
        model = fpga("d").reconfig
        assert model.hitless
        assert model.add_table_s < 0.5


class TestPerformanceEnvelopes:
    def test_latency_ordering_switch_nic_host(self):
        """Per-packet latency: switch < FPGA < NIC < host."""
        ordering = [
            drmt_switch("d").performance.packet_latency_ns(100),
            fpga("d").performance.packet_latency_ns(100),
            smartnic("d").performance.packet_latency_ns(100),
            host("d").performance.packet_latency_ns(100),
        ]
        assert ordering == sorted(ordering)

    def test_energy_per_op_switch_most_efficient(self):
        assert (
            drmt_switch("d").performance.per_op_nj
            < smartnic("d").performance.per_op_nj
            < host("d").performance.per_op_nj
        )

    def test_throughput_ordering(self):
        assert (
            drmt_switch("d").performance.throughput_mpps
            > smartnic("d").performance.throughput_mpps
            > host("d").performance.throughput_mpps
        )


class TestDemandModel:
    @pytest.mark.parametrize("name", sorted(ALL_TARGETS))
    def test_every_target_prices_tables(self, name):
        target = ALL_TARGETS[name]()
        demand = target.demand(table_profile())
        assert not demand.is_zero()

    def test_ternary_tables_consume_tcam_on_switches(self):
        demand = drmt_switch("d").demand(table_profile(ternary=True))
        assert demand["tcam_kb"] > 0
        assert demand["sram_kb"] == 0

    def test_exact_tables_consume_sram(self):
        demand = drmt_switch("d").demand(table_profile(ternary=False))
        assert demand["sram_kb"] > 0

    def test_tiles_price_by_tile_type(self):
        target = tiled_switch("d")
        assert target.demand(table_profile(ternary=True))["tcam_tiles"] >= 1
        assert target.demand(table_profile(ternary=False))["hash_tiles"] >= 1
        assert target.demand(map_profile())["index_tiles"] >= 1

    def test_functions_price_by_architecture(self):
        profile = function_profile(64)
        assert drmt_switch("d").demand(profile)["processors"] > 0
        assert tiled_switch("d").demand(profile)["pem_elems"] > 0
        assert fpga("d").demand(profile)["luts"] > 0
        assert host("d").demand(profile)["cpu_mhz"] > 0

    def test_demand_scales_with_entries(self):
        target = drmt_switch("d")
        small = target.demand(table_profile(entries=256))
        large = target.demand(table_profile(entries=4096))
        assert large["sram_kb"] > small["sram_kb"]

    def test_host_maps_consume_kernel_map_slots(self):
        assert host("d").demand(map_profile())["kernel_maps"] == 1


class TestAdmission:
    def test_rmt_rejects_big_functions(self):
        target = rmt_switch("d")
        assert target.admits(function_profile(10))
        assert not target.admits(function_profile(500))

    def test_drmt_takes_bigger_functions_than_rmt(self):
        big = function_profile(200)
        assert drmt_switch("d").admits(big)
        assert not rmt_switch("d").admits(big)

    def test_hosts_admit_far_bigger_functions_than_switches(self):
        assert host("d").admits(function_profile(5_000))
        assert not drmt_switch("d").admits(function_profile(5_000))

    def test_oversized_table_not_admitted(self):
        huge = table_profile(entries=200_000_000, key_bits=128)
        assert not drmt_switch("d").admits(huge)


class TestStateEncodings:
    def test_encoding_availability_per_arch(self):
        assert StateEncoding.REGISTER in rmt_switch("d").encodings
        assert StateEncoding.STATEFUL_TABLE in drmt_switch("d").encodings
        assert StateEncoding.KERNEL_MAP in host("d").encodings

    def test_stage_capacity_consistency(self):
        target = rmt_switch("d", stages=10)
        per_stage = stage_capacity(target)
        assert per_stage["sram_kb"] * 10 == pytest.approx(target.capacity["sram_kb"])
