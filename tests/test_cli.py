"""CLI tests."""

import pytest

from repro.cli import main

PROGRAM = """
program demo {
  header ethernet { dst:48; src:48; ethertype:16; }
  header ipv4 { src:32; dst:32; proto:8; ttl:8; }
  parser { start ethernet; on ethernet.ethertype == 0x0800 extract ipv4; }
  map counts { key: ipv4.src; value: u64; max_entries: 1024; }
  action drop() { mark_drop(); }
  action nop() { no_op(); }
  table acl { key: ipv4.src ternary; actions: drop, nop; size: 64; default: nop; }
  func tally() {
    let c: u64 = map_get(counts, ipv4.src);
    map_put(counts, ipv4.src, c + 1);
  }
  apply { acl; tally(); }
}
"""

PATCH = """
delta widen {
  resize table acl 256;
  resize map counts 4096;
}
"""

BAD_PROGRAM = "program broken { header h { x:8 } }"


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "demo.fbpf"
    path.write_text(PROGRAM)
    return str(path)


@pytest.fixture
def patch_file(tmp_path):
    path = tmp_path / "widen.delta"
    path.write_text(PATCH)
    return str(path)


class TestCertify:
    def test_certify_ok(self, program_file, capsys):
        assert main(["certify", program_file]) == 0
        out = capsys.readouterr().out
        assert "CERTIFIED" in out
        assert "tally" in out and "acl" in out

    def test_certify_parse_error(self, tmp_path, capsys):
        path = tmp_path / "bad.fbpf"
        path.write_text(BAD_PROGRAM)
        assert main(["certify", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["certify", "/nonexistent.fbpf"]) == 2


class TestCompile:
    def test_compile_default(self, program_file, capsys):
        assert main(["compile", program_file]) == 0
        out = capsys.readouterr().out
        assert "acl" in out and "sw1" in out
        assert "estimated latency" in out

    def test_compile_energy_objective(self, program_file, capsys):
        assert main(["compile", program_file, "--objective", "energy"]) == 0
        out = capsys.readouterr().out
        assert "nic1" in out  # energy placement consolidates on the NIC

    def test_compile_rmt_shows_stage_plan(self, program_file, capsys):
        assert main(["compile", program_file, "--arch", "rmt_static"]) == 0
        out = capsys.readouterr().out
        assert "stage plan" in out


class TestDelta:
    def test_delta_applies(self, program_file, patch_file, capsys):
        assert main(["delta", program_file, patch_file]) == 0
        out = capsys.readouterr().out
        assert "version 1 -> 2" in out
        assert "modified" in out and "acl" in out


class TestExport:
    def test_export_roundtrips(self, program_file, capsys):
        assert main(["export", program_file]) == 0
        out = capsys.readouterr().out
        from repro.lang.parser import parse_program

        reparsed = parse_program(out)
        assert reparsed.has_table("acl")

    def test_export_with_patch(self, program_file, patch_file, capsys):
        assert main(["export", program_file, "--patch", patch_file]) == 0
        out = capsys.readouterr().out
        assert "size: 256;" in out  # the resize applied


class TestSimulate:
    def test_simulate_clean(self, program_file, capsys):
        assert main(["simulate", program_file, "--rate", "200", "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "sent      : 100" in out
        assert "lost      : 0" in out

    def test_simulate_with_patch(self, program_file, patch_file, capsys):
        assert (
            main([
                "simulate", program_file, "--rate", "200", "--duration", "1.0",
                "--patch", patch_file, "--at", "0.3",
            ])
            == 0
        )
        out = capsys.readouterr().out
        assert "scheduled delta" in out
        assert "versions on sw1" in out


class TestBench:
    def test_bench_interpreted_only(self, capsys):
        assert main(["bench", "--packets", "60"]) == 0
        out = capsys.readouterr().out
        assert "interpreted" in out
        assert "compiled" not in out

    def test_bench_fastpath_diffs_clean(self, program_file, capsys):
        assert main(["bench", program_file, "--fastpath", "--packets", "60"]) == 0
        out = capsys.readouterr().out
        assert "compiled" in out
        assert "divergences : 0" in out

    def test_bench_fastpath_json(self, capsys):
        import json

        assert main(["bench", "--fastpath", "--packets", "60", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["divergences"] == 0
        assert payload["compiled_pps"] > 0
