"""CLI tests."""

import pytest

from repro.cli import main

PROGRAM = """
program demo {
  header ethernet { dst:48; src:48; ethertype:16; }
  header ipv4 { src:32; dst:32; proto:8; ttl:8; }
  parser { start ethernet; on ethernet.ethertype == 0x0800 extract ipv4; }
  map counts { key: ipv4.src; value: u64; max_entries: 1024; }
  action drop() { mark_drop(); }
  action nop() { no_op(); }
  table acl { key: ipv4.src ternary; actions: drop, nop; size: 64; default: nop; }
  func tally() {
    let c: u64 = map_get(counts, ipv4.src);
    map_put(counts, ipv4.src, c + 1);
  }
  apply { acl; tally(); }
}
"""

PATCH = """
delta widen {
  resize table acl 256;
  resize map counts 4096;
}
"""

BAD_PROGRAM = "program broken { header h { x:8 } }"


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "demo.fbpf"
    path.write_text(PROGRAM)
    return str(path)


@pytest.fixture
def patch_file(tmp_path):
    path = tmp_path / "widen.delta"
    path.write_text(PATCH)
    return str(path)


class TestCertify:
    def test_certify_ok(self, program_file, capsys):
        assert main(["certify", program_file]) == 0
        out = capsys.readouterr().out
        assert "CERTIFIED" in out
        assert "tally" in out and "acl" in out

    def test_certify_parse_error(self, tmp_path, capsys):
        path = tmp_path / "bad.fbpf"
        path.write_text(BAD_PROGRAM)
        assert main(["certify", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["certify", "/nonexistent.fbpf"]) == 2


class TestCompile:
    def test_compile_default(self, program_file, capsys):
        assert main(["compile", program_file]) == 0
        out = capsys.readouterr().out
        assert "acl" in out and "sw1" in out
        assert "estimated latency" in out

    def test_compile_energy_objective(self, program_file, capsys):
        assert main(["compile", program_file, "--objective", "energy"]) == 0
        out = capsys.readouterr().out
        assert "nic1" in out  # energy placement consolidates on the NIC

    def test_compile_rmt_shows_stage_plan(self, program_file, capsys):
        assert main(["compile", program_file, "--arch", "rmt_static"]) == 0
        out = capsys.readouterr().out
        assert "stage plan" in out


class TestDelta:
    def test_delta_applies(self, program_file, patch_file, capsys):
        assert main(["delta", program_file, patch_file]) == 0
        out = capsys.readouterr().out
        assert "version 1 -> 2" in out
        assert "modified" in out and "acl" in out


class TestExport:
    def test_export_roundtrips(self, program_file, capsys):
        assert main(["export", program_file]) == 0
        out = capsys.readouterr().out
        from repro.lang.parser import parse_program

        reparsed = parse_program(out)
        assert reparsed.has_table("acl")

    def test_export_with_patch(self, program_file, patch_file, capsys):
        assert main(["export", program_file, "--patch", patch_file]) == 0
        out = capsys.readouterr().out
        assert "size: 256;" in out  # the resize applied


class TestSimulate:
    def test_simulate_clean(self, program_file, capsys):
        assert main(["simulate", program_file, "--rate", "200", "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "sent      : 100" in out
        assert "lost      : 0" in out

    def test_simulate_json(self, program_file, capsys):
        import json

        assert main(["simulate", program_file, "--rate", "200", "--duration", "0.5",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["sent"] == 100
        assert payload["metrics"]["lost_by_infrastructure"] == 0

    def test_simulate_with_patch(self, program_file, patch_file, capsys):
        assert (
            main([
                "simulate", program_file, "--rate", "200", "--duration", "1.0",
                "--patch", patch_file, "--at", "0.3",
            ])
            == 0
        )
        out = capsys.readouterr().out
        assert "scheduled delta" in out
        assert "versions on sw1" in out


class TestObservabilityVerbs:
    def test_trace_renders_span_tree(self, program_file, patch_file, capsys):
        assert main(["trace", program_file, "--rate", "200", "--duration", "0.5",
                     "--patch", patch_file, "--at", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "[install] install" in out
        assert "[update] update" in out
        assert "[window] window@sw1" in out
        assert "[packet] pkt@sw1" in out

    def test_trace_events_and_json(self, program_file, capsys):
        import json

        assert main(["trace", program_file, "--rate", "200", "--duration", "0.5",
                     "--events"]) == 0
        assert "events:" in capsys.readouterr().out
        assert main(["trace", program_file, "--rate", "200", "--duration", "0.5",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"][0]["kind"] == "install"

    def test_trace_sink_writes_jsonl(self, program_file, tmp_path, capsys):
        import json

        sink = tmp_path / "spans.jsonl"
        assert main(["trace", program_file, "--rate", "200", "--duration", "0.5",
                     "--sink", str(sink)]) == 0
        lines = [json.loads(line) for line in sink.read_text().splitlines()]
        assert any(span["kind"] == "packet" for span in lines)

    def test_metrics_prometheus_and_json(self, program_file, capsys):
        import json

        assert main(["metrics", program_file, "--rate", "200", "--duration", "0.5"]) == 0
        text = capsys.readouterr().out
        assert 'flexnet_device_packets_total{device="sw1",version="1"} 100' in text
        assert "# TYPE flexnet_device_packets_total counter" in text
        assert main(["metrics", program_file, "--rate", "200", "--duration", "0.5",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flexnet_device_packets_total"]["type"] == "counter"

    def test_profile_table(self, program_file, patch_file, capsys):
        assert main(["profile", program_file, "--rate", "200", "--duration", "0.5",
                     "--patch", patch_file, "--at", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "compile" in out and "transition" in out

    def test_chaos_trace_renders_windows(self, capsys):
        assert main(["chaos", "--rate", "300", "--duration", "3", "--at", "1.5",
                     "--crash", "none", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "[window] window@sw1" in out
        assert "* commit" in out


class TestBench:
    def test_bench_interpreted_only(self, capsys):
        assert main(["bench", "--packets", "60"]) == 0
        out = capsys.readouterr().out
        assert "interpreted" in out
        assert "compiled" not in out

    def test_bench_fastpath_diffs_clean(self, program_file, capsys):
        assert main(["bench", program_file, "--fastpath", "--packets", "60"]) == 0
        out = capsys.readouterr().out
        assert "compiled" in out
        assert "divergences : 0" in out

    def test_bench_fastpath_json(self, capsys):
        import json

        assert main(["bench", "--fastpath", "--packets", "60", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["divergences"] == 0
        assert payload["compiled_pps"] > 0

    def test_bench_batch_diffs_clean(self, capsys):
        assert main(["bench", "--batch", "--packets", "120",
                     "--batch-size", "32"]) == 0
        out = capsys.readouterr().out
        assert "batched" in out
        assert "gate admitted" in out
        assert "divergences : 0" in out

    def test_bench_batch_json(self, capsys):
        import json

        assert main(["bench", "--batch", "--packets", "120", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["divergences"] == 0
        assert payload["batched_pps"] > 0
        assert payload["batch_admitted"] is True
        # 120 measured packets plus the warm-up batch.
        assert payload["batch_stats"]["packets"] >= 120

    def test_bench_pps_survives_zero_elapsed(self, capsys, monkeypatch):
        # Regression: on a fast machine a tiny corpus can finish inside
        # timer resolution; the pps denominator is clamped so the rates
        # stay finite instead of dividing by zero.
        import json
        import math
        import time

        monkeypatch.setattr(time, "perf_counter", lambda: 42.0)
        assert main(["bench", "--fastpath", "--packets", "20", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert math.isfinite(payload["interpreted_pps"])
        assert math.isfinite(payload["compiled_pps"])
        assert payload["interpreted_pps"] > 0


class TestVet:
    def test_vet_program_file(self, program_file, capsys):
        assert main(["vet", program_file]) == 0
        out = capsys.readouterr().out
        assert "batch_safe=yes" in out
        assert "counts" in out and "per_flow" in out

    def test_vet_builtin_corpus(self, capsys):
        assert main(["vet", "--builtin"]) == 0
        out = capsys.readouterr().out
        assert "[firewall]" in out and "cross_flow" in out
        assert "[base]" in out and "batch_safe=yes" in out

    def test_vet_json(self, program_file, capsys):
        import json

        assert main(["vet", program_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["batch_safe"] is True
        assert payload["flow_key"] == ["ipv4.src"]

    def test_vet_no_args_is_usage_error(self, capsys):
        assert main(["vet"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_vet_self_clean_against_committed_baseline(self, capsys):
        assert main(["vet", "--self"]) == 0
        out = capsys.readouterr().out
        assert "0 new" in out

    def test_vet_self_fails_without_baseline(self, tmp_path, capsys):
        # The committed tree has accepted findings (bench/profiler wall
        # clocks); against an empty baseline they all count as new.
        empty = tmp_path / "empty.json"
        assert main(["vet", "--self", "--baseline", str(empty)]) == 1
        out = capsys.readouterr().out
        assert "NEW" in out

    def test_vet_self_update_baseline_roundtrip(self, tmp_path, capsys):
        fresh = tmp_path / "fresh.json"
        assert main(["vet", "--self", "--baseline", str(fresh),
                     "--update-baseline"]) == 0
        assert main(["vet", "--self", "--baseline", str(fresh)]) == 0
        out = capsys.readouterr().out
        assert "baseline updated" in out


class TestScale:
    def test_scale_inline_differential(self, capsys):
        assert main(["scale", "--backend", "inline", "--shards", "2",
                     "--pods", "2", "--packets", "120", "--drain", "0.05",
                     "--differential"]) == 0
        out = capsys.readouterr().out
        assert "flexscale [inline] 2 shard(s)" in out
        assert "byte-identical" in out

    def test_scale_json_report(self, capsys):
        import json

        assert main(["scale", "--backend", "inline", "--shards", "2",
                     "--pods", "2", "--packets", "120", "--drain", "0.05",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["traffic"]["metrics"]["sent"] == 120
        assert payload["sharding"]["backend"] == "inline"
        assert len(payload["sharding"]["per_shard"]) == 2

    def test_scale_process_backend(self, capsys):
        assert main(["scale", "--backend", "process", "--shards", "2",
                     "--pods", "2", "--packets", "120", "--drain", "0.05",
                     "--differential"]) == 0
        out = capsys.readouterr().out
        assert "flexscale [process] 2 shard(s)" in out
        assert "byte-identical" in out
