"""FlexVet parallelism-classifier tests."""

import json

import pytest

from repro.analysis.corpus import bundled_programs
from repro.analysis.vet import StateClass, VetReport, vet
from repro.apps.base import base_infrastructure as base_program
from repro.lang import builder as b


def corpus(label):
    for name, program in bundled_programs():
        if name == label:
            return program
    raise AssertionError(f"no corpus program {label!r}")


class TestBaseProgram:
    def test_flow_counts_is_per_flow(self):
        report = vet(base_program())
        verdict = report.map_vet("flow_counts")
        assert verdict.state_class is StateClass.PER_FLOW
        assert verdict.partition_fields == ("ipv4.src", "ipv4.dst")
        assert verdict.writers == ("count_flow",)

    def test_element_classes(self):
        report = vet(base_program())
        assert report.element_vet("count_flow").state_class is StateClass.PER_FLOW
        for name in ("acl", "l2", "l3", "ttl_guard"):
            assert report.element_vet(name).state_class is StateClass.STATELESS

    def test_batch_safe_with_flow_key(self):
        report = vet(base_program())
        assert report.batch_safe
        assert report.flow_key == ("ipv4.dst", "ipv4.src")
        assert not report.stateless

    def test_single_affinity_group_shardable(self):
        report = vet(base_program())
        assert len(report.groups) == 1
        group = report.groups[0]
        assert group.maps == ("flow_counts",)
        assert group.shardable
        assert "count_flow" in group.elements


class TestCorpusClassification:
    def test_firewall_reversed_key_is_cross_flow(self):
        # fw_conns is written (dst, src) but read (src, dst): the two
        # directions of one connection alias a single entry, so no
        # field partition separates its writers from its readers.
        report = vet(corpus("firewall"))
        verdict = report.map_vet("fw_conns")
        assert verdict.state_class is StateClass.CROSS_FLOW
        assert any("disagrees" in reason for reason in verdict.reasons)
        assert not report.batch_safe

    def test_hash_bucket_is_cross_flow(self):
        report = vet(corpus("loadbalancer"))
        verdict = report.map_vet("lb_load")
        assert verdict.state_class is StateClass.CROSS_FLOW
        assert any("hash bucket" in reason for reason in verdict.reasons)

    def test_nat_rewrite_demotes_flow_counts(self):
        # NAT rewrites ipv4.src/ipv4.dst, so a map keyed by them no
        # longer partitions by the *ingress* flow.
        report = vet(corpus("nat"))
        verdict = report.map_vet("flow_counts")
        assert verdict.state_class is StateClass.CROSS_FLOW
        assert any("rewritten" in reason for reason in verdict.reasons)
        assert not report.batch_safe

    def test_syn_defense_flow_key_narrows_to_common_field(self):
        # flow_counts partitions by (src, dst), syn_counts by (dst,);
        # the batchable key is their intersection.
        report = vet(corpus("ddos:syn_defense"))
        assert report.batch_safe
        assert report.flow_key == ("ipv4.dst",)

    def test_expected_batch_safety_across_corpus(self):
        expected_unsafe = {
            "firewall",
            "loadbalancer",
            "nat",
            "sketch:count_min",
            "monitoring:query",
        }
        for label, program in bundled_programs():
            report = vet(program)
            assert report.batch_safe == (label not in expected_unsafe), label

    def test_sketch_rows_pinned_together(self):
        report = vet(corpus("sketch:count_min"))
        pinned = [g for g in report.groups if not g.shardable]
        pinned_maps = {name for group in pinned for name in group.maps}
        assert {"cms_row0", "cms_row1", "cms_row2"} <= pinned_maps


class TestHostedSlice:
    def test_stateless_slice_of_stateful_program(self):
        # A device hosting only the ACL slice never touches flow_counts.
        report = vet(base_program(), hosted_elements={"acl"})
        assert report.stateless
        assert report.batch_safe
        assert report.flow_key == ()
        assert report.hosted == ("acl",)
        assert report.map_vet("flow_counts").state_class is StateClass.STATELESS

    def test_stateful_slice_keeps_classification(self):
        report = vet(base_program(), hosted_elements={"count_flow"})
        assert report.map_vet("flow_counts").state_class is StateClass.PER_FLOW
        assert report.batch_safe


class TestDemotionRules:
    def test_constant_only_key_is_cross_flow(self):
        program = (
            b.ProgramBuilder("g")
            .header("ipv4", src=32, dst=32)
            .parser("ipv4")
            .map("global_count", keys=["ipv4.src"], max_entries=4)
            .function(
                "bump",
                [
                    b.map_put(
                        "global_count",
                        0,
                        b.binop("+", b.map_get("global_count", 0), 1),
                    )
                ],
            )
            .apply("bump")
            .build()
        )
        report = vet(program)
        verdict = report.map_vet("global_count")
        assert verdict.state_class is StateClass.CROSS_FLOW
        assert any("constants" in reason for reason in verdict.reasons)

    def test_read_only_map_is_stateless(self):
        program = (
            b.ProgramBuilder("r")
            .header("ipv4", src=32, dst=32)
            .parser("ipv4")
            .map("policy", keys=["ipv4.src"], max_entries=4)
            .function("consult", [b.let("p", "u64", b.map_get("policy", "ipv4.src"))])
            .apply("consult")
            .build()
        )
        report = vet(program)
        assert report.map_vet("policy").state_class is StateClass.STATELESS
        assert report.stateless and report.batch_safe


class TestReportProtocol:
    def test_reportable_shape(self):
        report = vet(base_program())
        assert isinstance(report, VetReport)
        text = report.summary()
        assert "batch_safe=yes" in text
        assert "flow_counts" in text
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["batch_safe"] is True
        assert payload["flow_key"] == ["ipv4.dst", "ipv4.src"]
        assert payload["maps"][0]["name"] == "flow_counts"

    def test_lookup_errors(self):
        report = vet(base_program())
        with pytest.raises(KeyError):
            report.map_vet("ghost")
        with pytest.raises(KeyError):
            report.element_vet("ghost")

    def test_maps_of_class_and_stateful(self):
        report = vet(corpus("firewall"))
        assert "fw_conns" in report.maps_of_class(StateClass.CROSS_FLOW)
        assert set(report.stateful_maps) == {"flow_counts", "fw_conns"}
