"""FlexVet determinism-auditor tests."""

from repro.analysis.selfcheck import (
    audit_tree,
    default_baseline_path,
    load_baseline,
    run_selfcheck,
    write_baseline,
)


def scan(tmp_path, source, name="mod.py"):
    (tmp_path / name).write_text(source)
    _, findings = audit_tree(tmp_path)
    return findings


class TestDetectors:
    def test_builtin_hash_flagged(self, tmp_path):
        findings = scan(tmp_path, "def digest(x):\n    return hash(x) & 0xFFFF\n")
        assert [f.code for f in findings] == ["VET-HASH"]
        assert findings[0].symbol == "digest"
        assert findings[0].path == "mod.py"

    def test_unseeded_random_flagged(self, tmp_path):
        findings = scan(
            tmp_path,
            "import random\n"
            "rng = random.Random()\n"
            "x = random.randrange(10)\n",
        )
        assert [f.code for f in findings] == ["VET-RNG", "VET-RNG"]

    def test_seeded_random_not_flagged(self, tmp_path):
        findings = scan(
            tmp_path,
            "import random\n"
            "rng = random.Random(42)\n"
            "y = rng.randrange(10)\n",
        )
        assert findings == []

    def test_wall_clock_flagged(self, tmp_path):
        findings = scan(
            tmp_path,
            "import time\n"
            "def now():\n"
            "    return time.perf_counter() + time.time()\n",
        )
        assert [f.code for f in findings] == ["VET-CLOCK", "VET-CLOCK"]

    def test_datetime_now_flagged(self, tmp_path):
        findings = scan(
            tmp_path,
            "import datetime\n"
            "stamp = datetime.datetime.now()\n",
        )
        assert [f.code for f in findings] == ["VET-CLOCK"]

    def test_set_iteration_flagged(self, tmp_path):
        findings = scan(
            tmp_path,
            "def order(items):\n"
            "    out = []\n"
            "    for item in set(items):\n"
            "        out.append(item)\n"
            "    return [x for x in {1, 2, 3}]\n",
        )
        assert [f.code for f in findings] == ["VET-SETITER", "VET-SETITER"]

    def test_sorted_set_iteration_not_flagged(self, tmp_path):
        findings = scan(
            tmp_path,
            "def order(items):\n"
            "    return [x for x in sorted(set(items))]\n",
        )
        assert findings == []

    def test_nested_symbol_path(self, tmp_path):
        findings = scan(
            tmp_path,
            "class Box:\n"
            "    def digest(self):\n"
            "        return hash(self)\n",
        )
        assert findings[0].symbol == "Box.digest"


class TestBaseline:
    def test_roundtrip_and_diff(self, tmp_path):
        source_root = tmp_path / "src"
        source_root.mkdir()
        (source_root / "a.py").write_text("x = hash('a')\n")
        baseline = tmp_path / "baseline.json"

        report = run_selfcheck(root=source_root, baseline_path=baseline)
        assert not report.clean and len(report.new_findings) == 1

        write_baseline(baseline, list(report.findings))
        report = run_selfcheck(root=source_root, baseline_path=baseline)
        assert report.clean and len(report.findings) == 1

        # A new finding in another file fails again; the old one stays
        # baselined.
        (source_root / "b.py").write_text("import time\ny = time.time()\n")
        report = run_selfcheck(root=source_root, baseline_path=baseline)
        assert not report.clean
        assert [f.code for f in report.new_findings] == ["VET-CLOCK"]

    def test_baseline_survives_line_churn(self, tmp_path):
        source_root = tmp_path / "src"
        source_root.mkdir()
        module = source_root / "a.py"
        module.write_text("def f():\n    return hash('a')\n")
        baseline = tmp_path / "baseline.json"
        _, findings = audit_tree(source_root)
        write_baseline(baseline, findings)

        # Pushing the finding to a different line must not break the match.
        module.write_text("# comment\n\n\ndef f():\n    return hash('a')\n")
        report = run_selfcheck(root=source_root, baseline_path=baseline)
        assert report.clean

    def test_stale_entries_reported(self, tmp_path):
        source_root = tmp_path / "src"
        source_root.mkdir()
        module = source_root / "a.py"
        module.write_text("x = hash('a')\n")
        baseline = tmp_path / "baseline.json"
        _, findings = audit_tree(source_root)
        write_baseline(baseline, findings)

        module.write_text("x = 1\n")
        report = run_selfcheck(root=source_root, baseline_path=baseline)
        assert report.clean
        assert len(report.stale_baseline) == 1

    def test_missing_baseline_means_all_new(self, tmp_path):
        source_root = tmp_path / "src"
        source_root.mkdir()
        (source_root / "a.py").write_text("x = hash('a')\n")
        assert load_baseline(tmp_path / "nope.json") == set()
        report = run_selfcheck(
            root=source_root, baseline_path=tmp_path / "nope.json"
        )
        assert not report.clean


class TestRepoIsClean:
    def test_source_tree_matches_committed_baseline(self):
        """The acceptance gate: the shipped tree has no nondeterminism
        findings beyond the committed baseline, and no stale entries."""
        report = run_selfcheck()
        assert report.clean, report.summary()
        assert report.stale_baseline == ()
        assert default_baseline_path().exists()

    def test_no_unbaselined_hash_or_rng(self):
        """Stronger than the baseline gate: the repo has zero accepted
        VET-HASH / VET-RNG findings at all — only clock reads in the
        bench/profiler and provably-sorted set iterations are pinned."""
        report = run_selfcheck()
        accepted_codes = {f.code for f in report.findings}
        assert "VET-HASH" not in accepted_codes
        assert "VET-RNG" not in accepted_codes
