"""Unit tests for the individual FlexCheck passes."""

from repro.analysis import check
from repro.analysis.dataflow import analyze
from repro.analysis.interference import check_tenants
from repro.analysis.lints import check_lints
from repro.analysis.overcommit import check_overcommit
from repro.analysis.races import check_reconfig
from repro.analysis.report import Severity
from repro.apps.base import STANDARD_HEADERS, base_infrastructure, standard_builder
from repro.lang import builder as b
from repro.lang.analyzer import certify
from repro.lang.composition import Permission, TenantSpec
from repro.lang.delta import (
    ChangeSet,
    Delta,
    RemoveElements,
    SetMapEntries,
    apply_delta,
)
from repro.targets import drmt_switch


def codes(findings) -> set[str]:
    return {f.code for f in findings}


def tenant_ext(body, name="ext", validate=True):
    program = b.ProgramBuilder(name, owner="tenant")
    for header, fields in STANDARD_HEADERS.items():
        program.header(header, **fields)
    program.function("f", body)
    program.apply("f")
    # Extensions referencing base maps defer validation to admission.
    return program.build(validate=validate)


class TestLints:
    def test_clean_base_has_no_findings(self):
        base = base_infrastructure()
        assert check_lints(base, analyze(base)) == []

    def test_unused_map(self):
        program = standard_builder("p")
        program.map("orphan", keys=["ipv4.src"], value_type="u64", max_entries=8)
        program.function("f", [b.call("no_op")])
        program.apply("f")
        built = program.build()
        findings = check_lints(built, analyze(built))
        assert "LINT-UNUSED-MAP" in codes(findings)
        assert all(f.severity is Severity.WARNING for f in findings)

    def test_dead_element_and_write_only_map(self):
        program = standard_builder("p")
        program.map("w", keys=["ipv4.src"], value_type="u64", max_entries=8)
        program.function("writer", [b.map_put("w", "ipv4.src", 1)])
        program.function("dead", [b.call("no_op")])
        program.apply("writer")
        built = program.build()
        found = codes(check_lints(built, analyze(built)))
        assert "LINT-WRITE-ONLY-MAP" in found
        assert "LINT-DEAD-ELEMENT" in found

    def test_oversized_exact_table(self):
        program = standard_builder("p")
        program.action("nop", [b.call("no_op")])
        program.table("t", keys=["ipv4.proto"], actions=["nop"], size=1024,
                      default="nop")
        program.apply("t")
        built = program.build()
        assert "LINT-OVERSIZED-TABLE" in codes(check_lints(built, analyze(built)))


class TestRaces:
    def shrink(self, entries=256):
        return Delta(
            name="shrink", ops=(SetMapEntries(pattern="flow_counts", max_entries=entries),)
        )

    def test_resize_with_surviving_accessors_is_error(self):
        base = base_infrastructure()
        new, changes = apply_delta(base, self.shrink())
        findings = check_reconfig(base, new, changes)
        resize = [f for f in findings if f.code == "RACE-MAP-RESIZE"]
        assert resize and resize[0].severity is Severity.ERROR
        assert resize[0].element == "flow_counts"

    def test_two_phase_downgrades_to_info(self):
        base = base_infrastructure()
        new, changes = apply_delta(base, self.shrink())
        findings = check_reconfig(base, new, changes, two_phase=True)
        assert all(f.severity is Severity.INFO for f in findings)

    def test_removing_accessors_in_same_delta_silences(self):
        base = base_infrastructure()
        delta = Delta(
            name="retire",
            ops=(
                RemoveElements(pattern="count_flow"),
                SetMapEntries(pattern="flow_counts", max_entries=256),
            ),
        )
        new, changes = apply_delta(base, delta)
        assert [f for f in check_reconfig(base, new, changes)
                if f.code == "RACE-MAP-RESIZE"] == []

    def test_durable_map_removal_with_surviving_writer_warns(self):
        # apply_delta refuses a program whose surviving writer references
        # a removed map, so model the hazard directly: the new version
        # drops the map but the writer survives (deferred validation, as
        # a composed multi-device rollout would see it).
        def version(with_map: bool):
            program = standard_builder("p")
            if with_map:
                program.map("m", keys=["ipv4.src"], value_type="u64",
                            max_entries=64, persistence="durable")
            program.function("writer", [b.map_put("m", "ipv4.src", 1)])
            program.apply("writer")
            return program.build(validate=with_map)

        changes = ChangeSet(removed=frozenset({"m"}))
        findings = check_reconfig(version(True), version(False), changes)
        removed = [f for f in findings if f.code == "RACE-MAP-REMOVED"]
        assert removed and removed[0].severity is Severity.WARNING
        assert "writer" in removed[0].message

    def test_map_removed_with_its_writers_is_clean(self):
        base = base_infrastructure()
        delta = Delta(
            name="gc",
            ops=(
                RemoveElements(pattern="count_flow"),
                RemoveElements(pattern="flow_counts"),
            ),
        )
        new, changes = apply_delta(base, delta)
        assert [f for f in check_reconfig(base, new, changes)
                if f.code == "RACE-MAP-REMOVED"] == []


class TestInterference:
    def test_base_field_write_without_grant_is_error(self):
        spec = TenantSpec(
            name="t1", vlan_id=100, permission=Permission(writable_fields=())
        )
        ext = tenant_ext([b.assign("ipv4.ttl", 255)])
        findings = check_tenants(base_infrastructure(), [(spec, ext)])
        perm = [f for f in findings if f.code == "TENANT-FIELD-PERM"]
        assert perm and perm[0].severity is Severity.ERROR

    def test_legacy_permission_is_info_only(self):
        spec = TenantSpec(name="t1", vlan_id=100, permission=Permission())
        ext = tenant_ext([b.assign("ipv4.ttl", 255)])
        findings = check_tenants(base_infrastructure(), [(spec, ext)])
        assert codes(findings) == {"TENANT-BASE-FIELD"}
        assert all(f.severity is Severity.INFO for f in findings)

    def test_two_tenants_writing_same_field(self):
        spec1 = TenantSpec(
            name="t1", vlan_id=100,
            permission=Permission(writable_fields=("ipv4.ttl",)),
        )
        spec2 = TenantSpec(
            name="t2", vlan_id=200,
            permission=Permission(writable_fields=("ipv4.ttl",)),
        )
        ext1 = tenant_ext([b.assign("ipv4.ttl", 1)], name="e1")
        ext2 = tenant_ext([b.assign("ipv4.ttl", 2)], name="e2")
        findings = check_tenants(
            base_infrastructure(), [(spec1, ext1), (spec2, ext2)]
        )
        assert "TENANT-SHARED-FIELD" in codes(findings)

    def test_undeclared_map_read_and_write(self):
        spec = TenantSpec(name="t1", vlan_id=100, permission=Permission())
        ext = tenant_ext(
            [
                b.let("c", "u64", b.map_get("flow_counts", "ipv4.src", "ipv4.dst")),
                b.map_put("flow_counts", "ipv4.src", "ipv4.dst", "c"),
            ],
            validate=False,
        )
        found = codes(check_tenants(base_infrastructure(), [(spec, ext)]))
        assert {"TENANT-MAP-READ", "TENANT-MAP-WRITE"} <= found


class TestOvercommit:
    def test_base_fits_standard_switch(self):
        base = base_infrastructure()
        findings = check_overcommit(certify(base), [drmt_switch("sw1")])
        assert not [f for f in findings if f.severity is Severity.ERROR]

    def test_unplaceable_element_names_deficit(self):
        program = standard_builder("hog")
        program.action("drop", [b.call("mark_drop")])
        program.table(
            "mega",
            keys=[("ipv4.src", "ternary")],
            actions=["drop"],
            size=4_000_000,
            default="drop",
        )
        program.apply("mega")
        findings = check_overcommit(certify(program.build()), [drmt_switch("sw1")])
        unplaceable = [f for f in findings if f.code == "RES-ELEMENT-UNPLACEABLE"]
        assert unplaceable and unplaceable[0].severity is Severity.ERROR
        assert "short" in unplaceable[0].message

    def test_check_wires_overcommit_via_target(self):
        base = base_infrastructure()
        report = check(base, target=drmt_switch("sw1"))
        assert "overcommit" in report.passes_run
        assert report.ok
