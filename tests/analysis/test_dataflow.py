"""Unit tests for the def-use substrate (`analysis/dataflow.py`)."""

from repro.analysis.dataflow import AccessSet, analyze
from repro.apps.base import base_infrastructure, standard_builder
from repro.lang import builder as b
from repro.lang.ir import FieldRef


def ref(name: str) -> FieldRef:
    return b.field(name)


class TestElementAccess:
    def test_function_read_write_sets(self):
        df = analyze(base_infrastructure())
        count = df.element_access("count_flow")
        assert "flow_counts" in count.map_reads
        assert "flow_counts" in count.map_writes
        assert ref("ipv4.src") in count.field_reads
        assert not count.field_writes

    def test_primitive_effects_are_meta_writes(self):
        df = analyze(base_infrastructure())
        guard = df.element_access("ttl_guard")
        assert "drop_flag" in guard.meta_writes
        assert ref("ipv4.ttl") in guard.field_reads

    def test_table_unions_keys_and_all_actions(self):
        df = analyze(base_infrastructure())
        l3 = df.element_access("l3")
        # key read + every listed action's effects, including dec_ttl's
        # field write and forward's set_port — regardless of rules.
        assert ref("ipv4.dst") in l3.field_reads
        assert ref("ipv4.ttl") in l3.field_writes
        assert "egress_port" in l3.meta_writes

    def test_both_if_branches_counted(self):
        program = standard_builder("p")
        program.function(
            "f",
            [
                b.if_(
                    b.binop("==", "ipv4.proto", 6),
                    [b.assign("ipv4.ttl", 1)],
                    [b.assign("tcp.flags", 2)],
                )
            ],
        )
        program.apply("f")
        access = analyze(program.build()).element_access("f")
        assert {ref("ipv4.ttl"), ref("tcp.flags")} <= set(access.field_writes)


class TestProgramQueries:
    def test_readers_and_writers_filtered_to_applied(self):
        program = standard_builder("p")
        program.map("m", keys=["ipv4.src"], value_type="u64", max_entries=16)
        program.function("live", [b.map_put("m", "ipv4.src", 1)])
        program.function("dead", [b.map_put("m", "ipv4.src", 2)])
        program.apply("live")
        df = analyze(program.build())
        assert df.writers_of_map("m") == frozenset({"live"})

    def test_program_access_union(self):
        df = analyze(base_infrastructure())
        total = df.program_access
        assert "flow_counts" in total.map_writes
        assert ref("ethernet.dst") in total.field_reads


class TestAccessSet:
    def test_union_and_predicates(self):
        a = AccessSet(map_reads=frozenset({"m"}))
        c = a | AccessSet(meta_writes=frozenset({"k"}))
        assert c.reads_anything and c.writes_anything
        assert c.touches_map("m") and not c.touches_map("x")

    def test_to_dict_is_sorted_strings(self):
        access = AccessSet(
            field_writes=frozenset({ref("ipv4.ttl"), ref("ipv4.dst")})
        )
        assert access.to_dict()["field_writes"] == ["ipv4.dst", "ipv4.ttl"]
