"""The `repro.analysis.check` entry point, Report model, corpus, and CLI."""

import json

import pytest

from repro import analysis
from repro.analysis.corpus import bundled_programs
from repro.analysis.report import Finding, Report, Severity
from repro.apps import base_infrastructure, syn_defense_delta
from repro.cli import main
from repro.core.flexnet import FlexNet
from repro.errors import AnalysisError
from repro.lang.delta import parse_delta
from repro.lang.printer import print_program

SHRINK = """
delta shrink {
  resize map flow_counts 64;
}
"""


class TestReport:
    def finding(self, severity=Severity.ERROR):
        return Finding(
            code="X-TEST", severity=severity, message="msg", pass_name="lint",
            element="e", fixit="do the thing",
        )

    def test_ok_and_render(self):
        report = Report(program_name="p", program_version=1,
                        findings=(self.finding(Severity.WARNING),),
                        passes_run=("dataflow", "lint"))
        assert report.ok
        assert "OK" in report.render() and "1 warning(s)" in report.render()

    def test_errors_block(self):
        report = Report(program_name="p", program_version=1,
                        findings=(self.finding(),), passes_run=("lint",))
        assert not report.ok
        assert "REJECTED" in report.render()

    def test_json_round_trip(self):
        report = Report(program_name="p", program_version=2,
                        findings=(self.finding(),), passes_run=("lint",))
        payload = json.loads(report.to_json())
        assert payload["program"] == "p"
        assert payload["findings"][0]["code"] == "X-TEST"
        assert payload["findings"][0]["severity"] == "error"
        assert payload["findings"][0]["fixit"] == "do the thing"

    def test_sorted_findings_by_severity(self):
        report = Report(
            program_name="p", program_version=1,
            findings=(self.finding(Severity.INFO), self.finding(Severity.ERROR)),
            passes_run=(),
        )
        assert report.sorted_findings()[0].severity is Severity.ERROR


class TestCheckEntryPoint:
    def test_clean_program(self):
        report = analysis.check(base_infrastructure())
        assert report.ok and report.findings == ()
        assert "dataflow" in report.passes_run and "lint" in report.passes_run

    def test_delta_triggers_race_pass(self):
        report = analysis.check(base_infrastructure(), delta=parse_delta(SHRINK))
        assert "race" in report.passes_run
        assert not report.ok
        assert {f.code for f in report.errors} == {"RACE-MAP-RESIZE"}

    def test_two_phase_mitigates(self):
        report = analysis.check(
            base_infrastructure(), delta=parse_delta(SHRINK), two_phase=True
        )
        assert report.ok

    def test_bundled_corpus_is_finding_free(self):
        # The acceptance bar: zero errors (and zero warnings) across
        # every program the repo bundles.
        for label, program in bundled_programs():
            report = analysis.check(program)
            assert report.findings == (), f"{label}: {report.render()}"


class TestFlexNetIntegration:
    def test_admit_rejects_error_findings(self):
        net = FlexNet.standard()
        net.install(base_infrastructure())
        with pytest.raises(AnalysisError, match="rejected by FlexCheck race analysis"):
            net.update(parse_delta(SHRINK), strict=True)

    def test_update_escalates_instead_of_failing(self):
        net = FlexNet.standard()
        net.install(base_infrastructure())
        outcome = net.update(parse_delta(SHRINK))
        assert outcome.forced_two_phase
        assert any(f.code == "RACE-MAP-RESIZE" for f in outcome.race_findings)

    def test_safe_delta_not_escalated(self):
        net = FlexNet.standard()
        net.install(base_infrastructure())
        outcome = net.update(syn_defense_delta())
        assert not outcome.forced_two_phase

    def test_net_check_reports_on_live_program(self):
        net = FlexNet.standard()
        net.install(base_infrastructure())
        report = net.check(delta=parse_delta(SHRINK))
        assert not report.ok


class TestCliCheck:
    @pytest.fixture
    def program_file(self, tmp_path):
        path = tmp_path / "infra.fbpf"
        path.write_text(print_program(base_infrastructure()))
        return str(path)

    @pytest.fixture
    def patch_file(self, tmp_path):
        path = tmp_path / "shrink.delta"
        path.write_text(SHRINK)
        return str(path)

    def test_check_ok(self, program_file, capsys):
        assert main(["check", program_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_racy_patch_fails(self, program_file, patch_file, capsys):
        assert main(["check", program_file, "--patch", patch_file]) == 1
        out = capsys.readouterr().out
        assert "REJECTED" in out and "RACE-MAP-RESIZE" in out

    def test_check_json(self, program_file, patch_file, capsys):
        assert main(["check", program_file, "--patch", patch_file, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["label"] == "infra"
        assert any(f["code"] == "RACE-MAP-RESIZE" for f in payload["findings"])

    def test_check_builtin(self, capsys):
        assert main(["check", "--builtin"]) == 0
        out = capsys.readouterr().out
        assert "[base]" in out and "ddos:syn_defense" in out

    def test_check_with_arch(self, program_file, capsys):
        assert main(["check", program_file, "--arch", "drmt"]) == 0
        assert "overcommit" in capsys.readouterr().out

    def test_check_no_program_no_builtin(self, capsys):
        assert main(["check"]) == 2
        assert "error" in capsys.readouterr().err
