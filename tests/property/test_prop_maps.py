"""Property-based tests for map state: snapshots, merges, truncation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.lang import builder as b
from repro.lang.ir import MapDef, Persistence
from repro.lang.maps import MapState
from repro.lang.types import BitsType

keys = st.tuples(st.integers(min_value=0, max_value=2**32 - 1))
values = st.integers(min_value=0, max_value=2**64 - 1)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, values),
        st.tuples(st.just("delete"), keys, st.just(0)),
    ),
    max_size=60,
)


def make_state(width=64, entries=10_000, persistence=Persistence.DURABLE):
    return MapState(
        MapDef(
            name="m",
            key_fields=(b.field("h.k"),),
            value_type=BitsType(width),
            max_entries=entries,
            persistence=persistence,
        )
    )


@given(operations)
def test_matches_python_dict_semantics(ops):
    state = make_state()
    reference = {}
    for op, key, value in ops:
        if op == "put":
            state.put(key, value)
            reference[key] = value
        else:
            state.delete(key)
            reference.pop(key, None)
    assert dict(state.items()) == reference
    for key in reference:
        assert state.get(key) == reference[key]


@given(operations)
def test_snapshot_restore_identity(ops):
    state = make_state()
    for op, key, value in ops:
        if op == "put":
            state.put(key, value)
        else:
            state.delete(key)
    clone = make_state()
    clone.restore(state.snapshot())
    assert dict(clone.items()) == dict(state.items())


@given(st.integers(min_value=1, max_value=63), values)
def test_values_truncated_to_declared_width(width, value):
    state = make_state(width=width)
    state.put((1,), value)
    assert state.get((1,)) == value & ((1 << width) - 1)


@given(st.lists(st.tuples(keys, values), min_size=1, max_size=30))
def test_ephemeral_never_exceeds_capacity(entries):
    state = make_state(entries=8, persistence=Persistence.EPHEMERAL)
    for key, value in entries:
        state.put(key, value)
        assert len(state) <= 8


@given(st.lists(st.tuples(keys, st.integers(min_value=0, max_value=1000)), max_size=30),
       st.lists(st.tuples(keys, st.integers(min_value=0, max_value=1000)), max_size=30))
def test_merge_sum_is_additive(first_entries, second_entries):
    first = make_state()
    second = make_state()
    expected = {}
    for key, value in first_entries:
        first.put(key, value)
    for key, value in dict(first_entries).items():
        expected[key] = value
    for key, value in second_entries:
        second.put(key, value)
    for key, value in dict(second_entries).items():
        expected[key] = expected.get(key, 0) + value
    first.merge(second.snapshot(), combine="sum")
    assert dict(first.items()) == {k: v for k, v in expected.items()}
