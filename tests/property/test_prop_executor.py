"""Property-based tests for the interpreter: arithmetic fidelity and
bounded execution."""

from hypothesis import given
from hypothesis import strategies as st

from repro.apps.base import standard_builder
from repro.lang import builder as b
from repro.lang import ir
from repro.lang.analyzer import certify
from repro.simulator.packet import make_packet
from repro.simulator.pipeline_exec import ProgramInstance

u16 = st.integers(min_value=0, max_value=2**16 - 1)
u16_pos = st.integers(min_value=1, max_value=2**16 - 1)

ARITH = {
    "+": lambda x, y: x + y,
    "-": lambda x, y: max(x - y, 0) if y > x else x - y,
    "*": lambda x, y: x * y,
    "&": lambda x, y: x & y,
    "|": lambda x, y: x | y,
    "^": lambda x, y: x ^ y,
}


def eval_binop(op, left, right):
    program = standard_builder("p")
    program.function(
        "f", [b.assign("meta.result", b.binop(op, ir.Const(left), ir.Const(right)))]
    )
    program.apply("f")
    packet = make_packet(1, 2)
    ProgramInstance(program.build()).process(packet)
    return packet.meta["result"]


@given(st.sampled_from(sorted(ARITH)), u16, u16)
def test_arithmetic_matches_reference(op, left, right):
    assert eval_binop(op, left, right) == ARITH[op](left, right)


@given(u16, u16_pos)
def test_division_and_modulo(left, right):
    assert eval_binop("/", left, right) == left // right
    assert eval_binop("%", left, right) == left % right


@given(u16, u16)
def test_comparisons_boolean(left, right):
    program = standard_builder("p")
    program.function(
        "f",
        [
            b.if_(
                b.binop("<", ir.Const(left), ir.Const(right)),
                [b.assign("meta.result", 1)],
                [b.assign("meta.result", 0)],
            )
        ],
    )
    program.apply("f")
    packet = make_packet(1, 2)
    ProgramInstance(program.build()).process(packet)
    assert packet.meta["result"] == int(left < right)


@given(st.integers(min_value=1, max_value=50))
def test_repeat_executes_exactly_n_times(count):
    program = standard_builder("p")
    program.function(
        "f",
        [
            b.assign("meta.counter", 0),
            b.repeat(count, [b.assign("meta.counter", b.binop("+", "meta.counter", 1))]),
        ],
    )
    program.apply("f")
    packet = make_packet(1, 2)
    ProgramInstance(program.build()).process(packet)
    assert packet.meta["counter"] == count


@given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=30))
def test_runtime_ops_never_exceed_certified_bound(outer, inner):
    """The analyzer's certificate is a sound upper bound on runtime work."""
    program = standard_builder("p")
    program.function(
        "f",
        [
            b.repeat(
                outer,
                [b.repeat(inner, [b.assign("meta.x", b.binop("+", "meta.x", 1))])],
            )
        ],
    )
    program.apply("f")
    built = program.build()
    certificate = certify(built)
    result = ProgramInstance(built).process(make_packet(1, 2))
    assert result.ops <= certificate.max_packet_ops
