"""FlexBatch differential properties: for **every** bundled program —
batch-safe (memo or closure tier) and batch-unsafe (per-packet fallback)
alike — batched execution is bit-identical to the tree-walking
interpreter at every batch size, including size 1, a prime that
straddles chunk boundaries, the default 64, and a batch larger than the
memo capacity (FIFO eviction mid-batch). Live revocation — a meter
attaching or a rule mutating *between* batches — must also preserve
bit-identity while the executor's revocation counters fire."""

import pytest

from repro.analysis.corpus import bundled_programs
from repro.analysis.dataflow import analyze
from repro.analysis.vet import vet
from repro.apps import base_infrastructure
from repro.lang.ir import ActionCall
from repro.simulator import fastpath
from repro.simulator.batch import batched_differential
from repro.simulator.meters import Meter, MeterConfig
from repro.simulator.pipeline_exec import ProgramInstance
from repro.simulator.tables import Rule, exact

PROGRAMS = bundled_programs()
#: the memo-eviction size: BatchExecutor memo capacity is 4096, so one
#: batch of 4097 distinct-key packets forces FIFO eviction mid-batch —
#: but a 4097-packet interpreter pass per program is too slow for CI,
#: so the big size runs on the base program only (test below).
BATCH_SIZES = (1, 7, 64)
MEMO_CAPACITY_PLUS_ONE = 4097


def seeded_setup(program, seed=13):
    def setup(instance):
        fastpath.seeded_rules(program, instance, seed=seed)

    return setup


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize(
    "label,program", PROGRAMS, ids=[label for label, _ in PROGRAMS]
)
def test_batched_matches_interpreter(label, program, batch_size):
    packets = fastpath.seeded_corpus(140, seed=7)
    report = batched_differential(
        program,
        packets,
        setup=seeded_setup(program),
        batch_size=batch_size,
    )
    assert not report.divergences, "\n".join(
        str(d) for d in report.divergences[:5]
    )


def test_batched_matches_interpreter_beyond_memo_capacity():
    """One batch larger than the memo capacity on the cacheable hosted
    slice: FIFO eviction happens mid-batch and stays bit-exact."""
    program = base_infrastructure()
    info = analyze(program)
    hosted = {
        name for name in info.applied if not info.element_access(name).map_writes
    }
    packets = fastpath.seeded_corpus(MEMO_CAPACITY_PLUS_ONE + 50, seed=17)
    report = batched_differential(
        program,
        packets,
        hosted_elements=hosted,
        setup=seeded_setup(program),
        batch_size=MEMO_CAPACITY_PLUS_ONE,
    )
    assert not report.divergences, "\n".join(
        str(d) for d in report.divergences[:5]
    )


def test_hosted_slice_memo_tier_matches_interpreter():
    """The gated configuration: stateless hosted slices of every
    batch-safe bundled program run the memo tier bit-exactly."""
    for label, program in PROGRAMS:
        if not vet(program).batch_safe:
            continue
        info = analyze(program)
        hosted = {
            name
            for name in info.applied
            if not info.element_access(name).map_writes
        }
        if not hosted:
            continue
        packets = fastpath.seeded_corpus(120, seed=23)
        report = batched_differential(
            program,
            packets,
            hosted_elements=hosted,
            setup=seeded_setup(program),
            batch_size=32,
        )
        assert not report.divergences, (label, report.divergences[:5])


# ---------------------------------------------------------------------------
# Live revocation mid-run
# ---------------------------------------------------------------------------


def _capture_batched(holder):
    """A mutate hook that just records the batched instance so the test
    can read its executor stats after the differential run."""

    def hook(reference, batched, batch_index):
        holder["instance"] = batched

    return hook


def test_meter_attach_mid_run_revokes_and_stays_exact():
    program = base_infrastructure()
    packets = fastpath.seeded_corpus(160, seed=29)
    holder = {}

    def mutate(reference, batched, batch_index):
        holder["instance"] = batched
        if batch_index == 2:
            meter = lambda: Meter(MeterConfig(rate_pps=50.0, burst_packets=4.0))
            reference.rules["l2"].meter = meter()
            batched.rules["l2"].meter = meter()

    report = batched_differential(
        program,
        packets,
        setup=seeded_setup(program),
        batch_size=32,
        mutate=mutate,
    )
    assert not report.divergences, "\n".join(
        str(d) for d in report.divergences[:5]
    )
    stats = holder["instance"].batch_executor().stats
    assert stats.revoked_batches > 0
    assert stats.fallback_packets > 0


def test_rule_mutation_mid_run_flushes_memo_and_stays_exact():
    program = base_infrastructure()
    info = analyze(program)
    hosted = {
        name for name in info.applied if not info.element_access(name).map_writes
    }
    # A small flow mix tiled out, so observation keys repeat and the
    # memo actually serves hits before and after the flush.
    flows = fastpath.seeded_corpus(8, seed=31)
    packets = [flows[i % len(flows)] for i in range(160)]
    holder = {}

    def mutate(reference, batched, batch_index):
        holder["instance"] = batched
        if batch_index == 2:
            rule = lambda: Rule(
                matches=(exact(0xBEEF),), action=ActionCall("forward", (1,))
            )
            reference.rules["l2"].insert(rule())
            batched.rules["l2"].insert(rule())

    report = batched_differential(
        program,
        packets,
        hosted_elements=hosted,
        setup=seeded_setup(program),
        batch_size=32,
        mutate=mutate,
    )
    assert not report.divergences, "\n".join(
        str(d) for d in report.divergences[:5]
    )
    stats = holder["instance"].batch_executor().stats
    assert stats.revocations > 0
    assert stats.memo_entries_dropped > 0
    assert stats.memo_hits > 0  # the memo kept serving after the flush
