"""Soundness of the FlexVet parallelism classifier.

FlexVet's verdicts are static promises about runtime behaviour, so for
every bundled program the dynamics must be contained in the statics:

* every map the interpreter actually mutates is in the classifier's
  stateful (``per_flow`` ∪ ``cross_flow``) set;
* for a ``per_flow`` map, every runtime access key is built from the
  claimed partition fields of the packet being processed (the property
  a FlexScale shard relies on to own a slice of the field space);
* every ``batch_safe=True`` program passes the FlexPath differential
  check with zero divergences (compiled vs interpreted agreement is a
  precondition for ever batching the compiled path).
"""

from __future__ import annotations

import pytest

from repro.analysis.corpus import bundled_programs
from repro.analysis.vet import StateClass, vet
from repro.simulator import fastpath
from repro.simulator.pipeline_exec import ProgramInstance

PROGRAMS = bundled_programs()
PROGRAM_IDS = [label for label, _ in PROGRAMS]


class _Recorder:
    """Wraps one MapState, logging every runtime access key."""

    def __init__(self, state, log):
        self._state = state
        self._log = log

    def get(self, key, default=0):
        self._log.append((self._state.name, "read", tuple(key)))
        return self._state.get(key, default)

    def put(self, key, value):
        self._log.append((self._state.name, "write", tuple(key)))
        return self._state.put(key, value)

    def delete(self, key):
        self._log.append((self._state.name, "write", tuple(key)))
        return self._state.delete(key)

    def __getattr__(self, name):
        return getattr(self._state, name)

    def __contains__(self, key):
        return key in self._state

    def __len__(self):
        return len(self._state)


def recorded_run(program, packets, seed=13):
    """Execute ``packets`` through the interpreter with every map access
    recorded; returns [(packet, [(map, kind, key), ...]), ...]."""
    instance = ProgramInstance(program)
    fastpath.seeded_rules(program, instance, seed=seed)
    log: list = []
    states = instance.maps._states  # noqa: SLF001 - test instrumentation
    for name in list(states):
        states[name] = _Recorder(states[name], log)
    observed = []
    for index, packet in enumerate(packets):
        log.clear()
        initial_fields = dict(packet.fields)
        instance.process(packet, now=index * 1e-4)
        observed.append((initial_fields, list(log)))
    return observed


def field_key(dotted: str) -> tuple[str, str]:
    header, _, field = dotted.partition(".")
    return (header, field)


@pytest.mark.parametrize("label,program", PROGRAMS, ids=PROGRAM_IDS)
def test_runtime_writes_contained_in_static_stateful(label, program):
    report = vet(program)
    stateful = set(report.stateful_maps)
    observed = recorded_run(program, fastpath.seeded_corpus(200, seed=5))
    written = {
        name
        for _, accesses in observed
        for name, kind, _ in accesses
        if kind == "write"
    }
    assert written <= stateful, (
        f"{label}: runtime wrote {sorted(written - stateful)} "
        f"outside the static stateful set {sorted(stateful)}"
    )


@pytest.mark.parametrize("label,program", PROGRAMS, ids=PROGRAM_IDS)
def test_per_flow_keys_are_the_claimed_partition_fields(label, program):
    report = vet(program)
    arity = {m.name: len(m.key_fields) for m in program.maps}
    # Check maps whose whole key signature is packet fields — for those
    # partition_fields aligns positionally with the runtime key.
    checkable = {
        v.name: [field_key(f) for f in v.partition_fields]
        for v in report.maps
        if v.state_class is StateClass.PER_FLOW
        and len(v.partition_fields) == arity[v.name]
    }
    observed = recorded_run(program, fastpath.seeded_corpus(200, seed=9))
    checked = 0
    for initial_fields, accesses in observed:
        for name, _, key in accesses:
            fields = checkable.get(name)
            if fields is None or len(fields) != len(key):
                continue
            for part, field in zip(key, fields):
                # An invisible header reads as 0 in the interpreter, so
                # the key part is either the ingress field value or 0.
                assert part in (initial_fields.get(field, 0), 0), (
                    f"{label}: map {name!r} keyed by {part!r} at position "
                    f"{field}, packet carried {initial_fields.get(field)!r}"
                )
                checked += 1
    if checkable:
        assert checked, f"{label}: no per-flow accesses exercised"


@pytest.mark.parametrize("label,program", PROGRAMS, ids=PROGRAM_IDS)
def test_batch_safe_programs_pass_differential_check(label, program):
    report = vet(program)
    if not report.batch_safe:
        pytest.skip(f"{label} is not batch-safe")
    packets = fastpath.seeded_corpus(150, seed=21)

    def setup(instance):
        fastpath.seeded_rules(program, instance, seed=17)

    diff = fastpath.differential_check(program, packets, setup=setup)
    assert diff.packets > 0
    assert not diff.divergences, "\n".join(str(d) for d in diff.divergences)


def test_classifier_is_deterministic():
    """Same program → identical report (a meta-check: the classifier
    itself must not exhibit the nondeterminism it polices)."""
    for label, program in PROGRAMS:
        assert vet(program).to_dict() == vet(program).to_dict(), label
