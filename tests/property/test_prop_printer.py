"""Round-trip property: parse(print(program)) == program (structurally)."""

from dataclasses import replace

from hypothesis import given, settings

from repro.apps import (
    base_infrastructure,
    count_min_delta,
    dctcp_delta,
    firewall_delta,
    load_balancer_delta,
    nat_delta,
)
from repro.lang.delta import apply_delta
from repro.lang.parser import parse_program
from repro.lang.printer import print_program

from tests.property.test_prop_placement import random_programs


def normalize(program):
    """Strip fields the surface syntax does not carry."""
    return replace(program, version=1, owner="infrastructure")


def assert_roundtrip(program):
    source = print_program(program)
    reparsed = parse_program(source)
    assert normalize(reparsed) == normalize(program), source


class TestKnownPrograms:
    def test_base_infrastructure(self):
        assert_roundtrip(base_infrastructure())

    def test_every_app_delta(self):
        program = base_infrastructure()
        for delta in (
            firewall_delta(),
            count_min_delta(),
            load_balancer_delta(),
            nat_delta(),
            dctcp_delta(),
        ):
            program, _ = apply_delta(program, delta)
            assert_roundtrip(program)

    def test_printed_source_recompiles_and_certifies(self):
        from repro.lang.analyzer import certify

        program = base_infrastructure()
        reparsed = parse_program(print_program(program))
        assert certify(reparsed).max_packet_ops == certify(program).max_packet_ops


@settings(max_examples=50, deadline=None)
@given(random_programs())
def test_random_program_roundtrip(program):
    assert_roundtrip(program)
