"""Soundness of FlexScale's vet-gated placement.

A sharded run is only bit-identical to the single-process engine if no
data-plane-mutated map is ever touched from two shards: the planner
promises that by fusing devices FlexVet says share state. This property
instruments every device's live map states and, for **every bundled
program**, counts runtime accesses that land on a shard other than the
map's writer shard — the count must be exactly zero.

Reads of never-written maps (replicated control state: rule tables the
controller installs fleet-wide) are legitimately cross-shard and are
not counted.
"""

from __future__ import annotations

import pytest

from repro.analysis.corpus import bundled_programs
from repro.scale.plan import plan_shards
from repro.scale.runner import build_engines
from repro.scale.shard import run_inline
from repro.scale.workload import e20_workload, pod_fabric
from repro.simulator.packet import reset_packet_ids

PROGRAMS = bundled_programs()
PROGRAM_IDS = [label for label, _ in PROGRAMS]


class _Recorder:
    """Wraps one MapState, logging (device, map, kind) per access."""

    def __init__(self, state, device: str, log: list):
        self._state = state
        self._device = device
        self._log = log

    def get(self, key, default=0):
        self._log.append((self._device, self._state.name, "read"))
        return self._state.get(key, default)

    def put(self, key, value):
        self._log.append((self._device, self._state.name, "write"))
        return self._state.put(key, value)

    def delete(self, key):
        self._log.append((self._device, self._state.name, "write"))
        return self._state.delete(key)

    def __getattr__(self, name):
        return getattr(self._state, name)

    def __contains__(self, key):
        return key in self._state

    def __len__(self):
        return len(self._state)


@pytest.mark.parametrize("label,program", PROGRAMS, ids=PROGRAM_IDS)
def test_no_runtime_cross_shard_map_access(label, program):
    reset_packet_ids()
    net = pod_fabric(2)
    net.install(program)
    workload = e20_workload(150, rate_pps=20_000.0, seed=3)
    plan = plan_shards(net.controller, 2, seed=11)

    log: list = []
    for device_name in sorted(net.controller.devices):
        instance = net.controller.devices[device_name].active_instance
        if instance is None:
            continue
        states = instance.maps._states  # noqa: SLF001 - test instrumentation
        for map_name in list(states):
            states[map_name] = _Recorder(states[map_name], device_name, log)

    engines = build_engines(net, plan, workload, drain_s=0.05)
    run_inline(engines)
    assert sum(engine.metrics.sent for engine in engines.values()) == 150

    writer_shards: dict[str, set[int]] = {}
    for device, map_name, kind in log:
        if kind == "write":
            writer_shards.setdefault(map_name, set()).add(plan.shard_of(device))
    # A map mutated from two shards would make shard interleaving
    # observable — the planner must have fused its writers.
    split = {name: shards for name, shards in writer_shards.items() if len(shards) > 1}
    assert not split, f"{label}: maps written from multiple shards: {split}"

    cross_accesses = [
        (device, map_name, kind)
        for device, map_name, kind in log
        if map_name in writer_shards
        and plan.shard_of(device) not in writer_shards[map_name]
    ]
    assert not cross_accesses, (
        f"{label}: {len(cross_accesses)} runtime access(es) to mutated maps "
        f"from a foreign shard, e.g. {cross_accesses[:3]}"
    )
