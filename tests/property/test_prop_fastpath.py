"""Property-based tests for FlexPath.

Two oracles:

* the tree-walking interpreter is the reference executor — compiled
  execution must agree on every observable for arbitrary packets;
* a naive max-rank linear scan is the reference lookup — the indexed
  table paths (exact hash index, pre-sorted first-match scan) must pick
  the same winner for arbitrary rule sets.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import base_infrastructure, firewall_delta
from repro.lang import builder as b
from repro.lang.delta import apply_delta
from repro.lang.ir import ActionCall, MatchKind, TableDef, TableKey
from repro.simulator.packet import make_packet
from repro.simulator.pipeline_exec import ProgramInstance
from repro.simulator.tables import Rule, TableRules, exact, lpm, rng, ternary

u16 = st.integers(min_value=0, max_value=2**16 - 1)
u32 = st.integers(min_value=0, max_value=2**32 - 1)
small = st.integers(min_value=0, max_value=7)

PROGRAM, _ = apply_delta(base_infrastructure(), firewall_delta())


def executors():
    interp = ProgramInstance(PROGRAM)
    compiled = ProgramInstance(PROGRAM)
    compiled.enable_fastpath()
    for instance in (interp, compiled):
        instance.rules["l3"].insert(
            Rule(matches=(lpm(0x0A000000, 8),), action=ActionCall("dec_ttl", ()))
        )
        instance.rules["acl"].insert(
            Rule(
                matches=(ternary(0x0A0000FF, 0xFFFFFFFF), ternary(0, 0)),
                action=ActionCall("drop", ()),
                priority=3,
            )
        )
    return interp, compiled


INTERP, COMPILED = executors()


@settings(max_examples=60, deadline=None)
@given(u32, u32, u16, u16, st.integers(min_value=0, max_value=255), u16)
def test_compiled_matches_interpreter(src, dst, sport, dport, ttl, flags):
    packet = make_packet(src, dst, src_port=sport, dst_port=dport,
                         ttl=ttl, tcp_flags=flags)
    mine, theirs = copy.deepcopy(packet), copy.deepcopy(packet)
    a = INTERP.process(mine, 0.0)
    c = COMPILED.process(theirs, 0.0)
    assert mine.verdict is theirs.verdict
    assert mine.fields == theirs.fields
    assert mine.meta == theirs.meta
    assert a.ops == c.ops
    assert a.recirculations == c.recirculations


def table_def(kinds):
    return TableDef(
        name="t",
        keys=tuple(
            TableKey(field=b.field(f"h.k{i}"), match_kind=kind)
            for i, kind in enumerate(kinds)
        ),
        actions=("a0", "a1", "a2"),
        size=4096,
        default_action=ActionCall(action="a0"),
    )


def naive_lookup(rules, key_values):
    """The reference semantics: scan everything, keep the max-(priority,
    specificity) match, earliest insertion breaking ties."""
    best = None
    best_rank = None
    for position, rule in enumerate(rules):
        if not all(
            spec.matches(value) for spec, value in zip(rule.matches, key_values)
        ):
            continue
        rank = (rule.priority, rule.specificity, -position)
        if best_rank is None or rank > best_rank:
            best, best_rank = rule, rank
    return best.action if best else None


exact_rules = st.lists(
    st.tuples(small, st.integers(min_value=0, max_value=10), st.sampled_from(["a1", "a2"])),
    min_size=0,
    max_size=12,
)


@settings(max_examples=80, deadline=None)
@given(exact_rules, small)
def test_exact_index_matches_naive_scan(specs, probe):
    rules = TableRules(table_def((MatchKind.EXACT,)))
    installed = []
    for value, priority, action in specs:
        rule = Rule(matches=(exact(value),), action=ActionCall(action), priority=priority)
        rules.insert(rule)
        installed.append(rule)
    expected = naive_lookup(installed, (probe,))
    got = rules.lookup((probe,))
    if expected is None:
        assert got == ActionCall(action="a0")  # default on miss
    else:
        assert got == expected


mixed_rules = st.lists(
    st.tuples(
        st.tuples(u32, st.integers(min_value=0, max_value=32)),  # lpm
        st.tuples(small, small),  # range bounds (unordered)
        st.integers(min_value=0, max_value=10),
        st.sampled_from(["a1", "a2"]),
    ),
    min_size=0,
    max_size=12,
)


@settings(max_examples=80, deadline=None)
@given(mixed_rules, u32, small)
def test_ordered_scan_matches_naive_scan(specs, probe_ip, probe_port):
    rules = TableRules(table_def((MatchKind.LPM, MatchKind.RANGE)))
    installed = []
    for (prefix, prefix_len), (lo, hi), priority, action in specs:
        rule = Rule(
            matches=(lpm(prefix, prefix_len), rng(min(lo, hi), max(lo, hi))),
            action=ActionCall(action),
            priority=priority,
        )
        rules.insert(rule)
        installed.append(rule)
    expected = naive_lookup(installed, (probe_ip, probe_port))
    got = rules.lookup((probe_ip, probe_port))
    if expected is None:
        assert got == ActionCall(action="a0")
    else:
        assert got == expected


@settings(max_examples=40, deadline=None)
@given(exact_rules, st.lists(small, min_size=1, max_size=10))
def test_index_invalidation_under_mutation(specs, probes):
    """Interleave lookups with inserts/removes: the rebuilt index always
    agrees with a from-scratch naive scan."""
    rules = TableRules(table_def((MatchKind.EXACT,)))
    installed = []
    for i, (value, priority, action) in enumerate(specs):
        rule = Rule(matches=(exact(value),), action=ActionCall(action), priority=priority)
        rules.insert(rule)
        installed.append(rule)
        if i % 2 == 1 and installed:
            victim = installed.pop(0)
            rules.remove(victim)
        for probe in probes:
            expected = naive_lookup(installed, (probe,))
            got = rules.lookup((probe,))
            assert got == (expected if expected else ActionCall(action="a0"))
