"""FlexCloud differential property: for **every** bundled program used
as the installed infrastructure, coalesced admission (one batched
reconfiguration window per scheduling round) lands on an end state
byte-identical to naive serial per-delta admission of the same churn —
composed program source included (name, version, every element), device
map state included, and the traffic/telemetry digests of a seeded run
over the result included. Ticket decisions must match too: coalescing
may only change *when* a delta lands, never whether."""

import pytest

from repro.analysis.corpus import bundled_programs
from repro.apps.base import STANDARD_HEADERS
from repro.cloud.admission import TenantDelta
from repro.core.flexnet import FlexNet
from repro.lang import builder as b
from repro.lang.builder import ProgramBuilder
from repro.lang.composition import Permission, TenantSpec
from repro.runtime.consistency import ConsistencyLevel
from repro.simulator.packet import reset_packet_ids

PROGRAMS = bundled_programs()


def tenant_extension(map_name):
    program = ProgramBuilder("ext", owner="tenant")
    for header, fields in STANDARD_HEADERS.items():
        program.header(header, **fields)
    program.map(map_name, keys=["ipv4.src"], value_type="u32", max_entries=64)
    program.function(
        "watch",
        [
            b.let("n", "u32", b.map_get(map_name, "ipv4.src")),
            b.map_put(map_name, "ipv4.src", b.binop("+", "n", 1)),
        ],
    )
    program.apply("watch")
    return program.build()


def churn_deltas():
    """A round's worth of mixed churn: four admits (one at a different
    consistency level, so the coalescer must split the run), one evict
    of a tenant admitted in the same round (the coalescer must defer
    it), all against distinct extensions."""

    def admit(name, vlan, consistency=ConsistencyLevel.PER_PACKET_PER_DEVICE):
        return TenantDelta(
            kind="admit",
            tenant=name,
            sla_class="gold",
            spec=TenantSpec(name=name, vlan_id=vlan, permission=Permission()),
            extension=tenant_extension("hits"),
            consistency=consistency,
        )

    return [
        admit("ta", 100),
        admit("tb", 101),
        admit("tc", 102, consistency=ConsistencyLevel.PER_PACKET_PATH),
        TenantDelta(kind="evict", tenant="tb", sla_class="gold"),
        admit("td", 103),
    ]


def run_churn(program, coalesce):
    reset_packet_ids()
    net = FlexNet.standard()
    net.install(program)
    engine = net.cloud
    engine.coalesce = coalesce
    tickets = [net.submit(delta) for delta in churn_deltas()]
    engine.drain_until_idle()
    # Let every reconfiguration window finish before measuring: the
    # property is about the *end state*, and mid-window traffic would
    # legitimately see different version schedules per arm.
    net.loop.run_until(net.loop.now + 5.0)
    for device in net.controller.devices.values():
        device.settle(net.loop.now)
    report = net.run_traffic(rate_pps=200, duration_s=0.3, extra_time_s=1.0)
    maps_state = {}
    for name, device in sorted(net.controller.devices.items()):
        instance = getattr(device, "active_instance", None)
        if instance is None:
            continue
        maps_state[name] = {
            state.name: tuple(sorted(state.items())) for state in instance.maps
        }
    return {
        "source": net.export_program(),
        "version": net.program.version,
        "decisions": [(t.delta.tenant, t.state) for t in tickets],
        "metrics": report.metrics.to_dict(),
        "telemetry": report.telemetry.to_dict(),
        "maps": maps_state,
    }


@pytest.mark.parametrize(
    "label,program", PROGRAMS, ids=[label for label, _ in PROGRAMS]
)
def test_coalesced_admission_matches_serial(label, program):
    serial = run_churn(program, coalesce=False)
    coalesced = run_churn(program, coalesce=True)
    for key in serial:
        assert coalesced[key] == serial[key], (label, key)
    # The churn actually happened: four tenants admitted, one evicted,
    # five version bumps either way.
    assert serial["version"] == program.version + 5
    assert [d for _, d in serial["decisions"]] == ["applied"] * 5
