"""Property-based tests for the lexer and delta/program structure."""

from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.lang.lexer import TokenKind, parse_int, tokenize

identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True)
numbers = st.integers(min_value=0, max_value=2**64)
punctuation = st.sampled_from(
    ["{", "}", "(", ")", ";", ":", ",", ".", "==", "!=", "<=", ">=", "<<", ">>",
     "&&", "||", "+", "-", "*", "/", "%", "&", "|", "^", "<", ">", "=", "!", "~"]
)


@given(st.lists(st.one_of(identifiers, numbers.map(str), punctuation), max_size=40))
def test_space_separated_tokens_roundtrip(parts):
    source = " ".join(parts)
    tokens = tokenize(source)
    assert tokens[-1].kind is TokenKind.EOF
    assert [t.text for t in tokens[:-1]] == parts


@given(numbers)
def test_decimal_literals_roundtrip(value):
    assert parse_int(str(value)) == value


@given(numbers)
def test_hex_literals_roundtrip(value):
    assert parse_int(hex(value)) == value


@given(numbers)
def test_binary_literals_roundtrip(value):
    assert parse_int(bin(value)) == value


@given(st.text(alphabet="@$#`?'\"\\", min_size=1, max_size=3))
def test_illegal_characters_raise_parse_error(text):
    try:
        tokenize(text)
        raised = False
    except ParseError:
        raised = True
    assert raised


@given(st.text(max_size=200))
def test_lexer_never_crashes_uncontrolled(source):
    """The lexer either tokenizes or raises ParseError — nothing else."""
    try:
        tokens = tokenize(source)
        assert tokens[-1].kind is TokenKind.EOF
    except ParseError:
        pass
