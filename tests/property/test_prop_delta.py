"""Property-based tests for the delta engine: atomicity and inverses."""

from hypothesis import given
from hypothesis import strategies as st

from repro.apps.base import base_infrastructure
from repro.errors import CompositionError
from repro.lang.delta import (
    Delta,
    RemoveElements,
    SetMapEntries,
    SetTableSize,
    apply_delta,
)

BASE = base_infrastructure()
TABLES = ["acl", "l2", "l3"]

sizes = st.integers(min_value=1, max_value=1_000_000)


@given(st.sampled_from(TABLES), sizes)
def test_resize_only_touches_target(table, size):
    delta = Delta(name="d", ops=(SetTableSize(pattern=table, size=size),))
    new_program, changes = apply_delta(BASE, delta)
    assert new_program.table(table).size == size
    assert changes.modified == frozenset({table})
    for other in TABLES:
        if other != table:
            assert new_program.table(other).size == BASE.table(other).size


@given(st.sampled_from(TABLES), sizes, sizes)
def test_resize_last_write_wins(table, first, second):
    delta = Delta(
        name="d",
        ops=(
            SetTableSize(pattern=table, size=first),
            SetTableSize(pattern=table, size=second),
        ),
    )
    new_program, _ = apply_delta(BASE, delta)
    assert new_program.table(table).size == second


@given(st.sampled_from(TABLES))
def test_remove_then_measure_inverse_size(table):
    delta = Delta(name="d", ops=(RemoveElements(pattern=table, kind="table"),))
    new_program, changes = apply_delta(BASE, delta)
    assert len(new_program.tables) == len(BASE.tables) - 1
    assert changes.removed == frozenset({table})
    # base untouched (immutability)
    assert BASE.has_table(table)


@given(st.lists(st.sampled_from(TABLES), min_size=1, max_size=3, unique=True))
def test_sequential_removals_compose(tables):
    program = BASE
    for table in tables:
        delta = Delta(name="d", ops=(RemoveElements(pattern=table, kind="table"),))
        program, _ = apply_delta(program, delta)
    assert {t.name for t in program.tables} == set(TABLES) - set(tables)
    assert program.version == BASE.version + len(tables)


@given(sizes)
def test_failed_delta_leaves_no_trace(size):
    delta = Delta(
        name="d",
        ops=(
            SetMapEntries(pattern="flow_counts", max_entries=size),
            RemoveElements(pattern="no_such_thing_*"),  # always fails
        ),
    )
    try:
        apply_delta(BASE, delta)
        assert False, "expected failure"
    except CompositionError:
        pass
    assert BASE.map("flow_counts").max_entries == 65536


@given(st.sampled_from(TABLES), sizes)
def test_version_always_bumps_exactly_once(table, size):
    delta = Delta(
        name="d",
        ops=(
            SetTableSize(pattern=table, size=size),
            SetTableSize(pattern=table, size=size + 1),
        ),
    )
    new_program, _ = apply_delta(BASE, delta)
    assert new_program.version == BASE.version + 1
