"""Property-based tests for table rule matching."""

from hypothesis import given
from hypothesis import strategies as st

from repro.lang import builder as b
from repro.lang.ir import ActionCall, MatchKind, TableDef, TableKey
from repro.simulator.tables import Rule, TableRules, exact, lpm, ternary

u32 = st.integers(min_value=0, max_value=2**32 - 1)


def one_key_table(kind, size=1024):
    return TableDef(
        name="t",
        keys=(TableKey(field=b.field("h.k"), match_kind=kind),),
        actions=("hit", "miss"),
        size=size,
        default_action=ActionCall(action="miss"),
    )


@given(u32)
def test_exact_matches_itself_only(value):
    spec = exact(value)
    assert spec.matches(value)
    assert not spec.matches(value ^ 1)


@given(u32, st.integers(min_value=1, max_value=32))
def test_lpm_prefix_bits_decide(value, prefix_len):
    spec = lpm(value, prefix_len)
    assert spec.matches(value)
    if prefix_len < 32:
        # flipping a bit below the prefix still matches
        below = value ^ (1 << (31 - prefix_len))
        assert spec.matches(below)
    # flipping the highest prefix bit breaks the match
    inside = value ^ (1 << 31)
    assert not spec.matches(inside)


@given(u32, u32)
def test_ternary_mask_zero_matches_everything(value, probe):
    assert ternary(value, 0).matches(probe)


@given(u32, u32)
def test_ternary_full_mask_is_exact(value, probe):
    spec = ternary(value, 0xFFFFFFFF)
    assert spec.matches(probe) == ((probe & 0xFFFFFFFF) == (value & 0xFFFFFFFF))


@given(st.lists(u32, min_size=1, max_size=20, unique=True), u32)
def test_lookup_exact_consistency(installed, probe):
    rules = TableRules(one_key_table(MatchKind.EXACT))
    for value in installed:
        rules.insert(Rule(matches=(exact(value),), action=ActionCall("hit")))
    result = rules.lookup((probe,))
    if probe in installed:
        assert result == ActionCall("hit")
    else:
        assert result == ActionCall("miss")


@given(st.lists(st.tuples(u32, st.integers(min_value=0, max_value=32)),
                min_size=1, max_size=10))
def test_lpm_longest_prefix_wins(prefixes):
    rules = TableRules(one_key_table(MatchKind.LPM))
    for index, (prefix, length) in enumerate(prefixes):
        rules.insert(
            Rule(matches=(lpm(prefix, length),), action=ActionCall("hit", (index,)))
        )
    probe = prefixes[0][0]
    result = rules.lookup((probe,))
    assert result.action == "hit"
    # the winner's prefix must actually match and no longer matching
    # prefix may exist
    winner_index = result.args[0]
    winner_prefix, winner_len = prefixes[winner_index]
    assert lpm(winner_prefix, winner_len).matches(probe)
    for prefix, length in prefixes:
        if lpm(prefix, length).matches(probe):
            assert length <= winner_len
