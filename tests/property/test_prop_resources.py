"""Property-based tests for ResourceVector algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.targets.resources import ZERO, ResourceVector

kinds = st.sampled_from(["sram_kb", "tcam_kb", "alus", "processors", "luts"])
amounts = st.dictionaries(kinds, st.floats(min_value=0, max_value=1e6), max_size=5)
vectors = amounts.map(ResourceVector)


@given(vectors, vectors)
def test_addition_commutative(a, b):
    assert a + b == b + a


@given(vectors, vectors, vectors)
def test_addition_associative(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(vectors)
def test_zero_identity(a):
    assert a + ZERO == a


@given(vectors, vectors)
def test_add_then_subtract_roundtrip(a, b):
    assert (a + b) - b == a


@given(vectors, vectors)
def test_sum_dominates_parts(a, b):
    total = a + b
    assert a.fits_within(total)
    assert b.fits_within(total)


@given(vectors)
def test_fits_within_reflexive(a):
    assert a.fits_within(a)


@given(vectors, vectors)
def test_deficit_empty_iff_fits(a, b):
    fits = a.fits_within(b)
    deficit = a.deficit_against(b)
    assert fits == (not deficit)


@given(vectors, st.floats(min_value=0, max_value=100))
def test_scaling_distributes(a, factor):
    doubled = a * factor
    for kind in a:
        assert abs(doubled[kind] - a[kind] * factor) < 1e-6 * max(1.0, a[kind] * factor)


@given(vectors)
def test_utilization_of_self_at_most_one(a):
    if not a.is_zero():
        assert a.utilization_of(a) <= 1.0 + 1e-9
