"""Property-based tests for placement invariants over random programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import standard_builder
from repro.compiler.placement import PlacementEngine
from repro.errors import PlacementError
from repro.lang import builder as b
from repro.lang.analyzer import certify
from repro.compiler.fungibility import ordered_elements
from repro.targets.resources import ResourceVector

from tests.conftest import make_standard_slice


@st.composite
def random_programs(draw):
    """Random small programs: a few tables, maps, and functions wired
    through an apply block, built over the standard headers."""
    program = standard_builder("rand")
    program.action("nop", [b.call("no_op")])
    program.action("fwd", [b.call("set_port", "p")], params=[("p", "u16")])

    table_count = draw(st.integers(min_value=0, max_value=4))
    map_count = draw(st.integers(min_value=0, max_value=3))
    function_count = draw(st.integers(min_value=0, max_value=3))
    apply_order = []

    key_fields = ["ipv4.src", "ipv4.dst", "ethernet.dst", "tcp.dport"]
    for index in range(table_count):
        kind = draw(st.sampled_from(["exact", "ternary", "lpm"]))
        size = draw(st.integers(min_value=1, max_value=20_000))
        program.table(
            f"t{index}",
            keys=[(draw(st.sampled_from(key_fields)), kind)],
            actions=["nop", "fwd"],
            size=size,
            default="nop",
        )
        apply_order.append(f"t{index}")

    map_names = []
    for index in range(map_count):
        entries = draw(st.integers(min_value=1, max_value=50_000))
        program.map(f"m{index}", keys=[draw(st.sampled_from(key_fields))],
                    value_type="u64", max_entries=entries)
        map_names.append(f"m{index}")

    for index in range(function_count):
        body = []
        reps = draw(st.integers(min_value=1, max_value=60))
        if map_names and draw(st.booleans()):
            target_map = draw(st.sampled_from(map_names))
            body.append(b.let("v", "u64", b.map_get(target_map, "ipv4.src")))
            body.append(b.map_put(target_map, "ipv4.src", b.binop("+", "v", 1)))
        body.append(b.repeat(reps, [b.assign("meta.x", b.binop("+", "meta.x", 1))]))
        program.function(f"f{index}", body)
        apply_order.append(f"f{index}")

    program.apply(*apply_order)
    return program.build()


@settings(max_examples=40, deadline=None)
@given(random_programs())
def test_placement_invariants(program):
    certificate = certify(program)
    slice_ = make_standard_slice()
    try:
        plan = PlacementEngine().compile(program, certificate, slice_)
    except PlacementError:
        return  # infeasible programs may be rejected; nothing to check

    # 1. Everything placeable is placed exactly once.
    assert set(plan.placement) == set(program.element_names)

    # 2. Co-location: every map lives with each of its accessors.
    for name, profile in certificate.profiles.items():
        if profile.kind not in ("table", "function"):
            continue
        for map_name in (*profile.map_reads, *profile.map_writes):
            if map_name in plan.placement:
                assert plan.placement[map_name] == plan.placement[name]

    # 3. Capacity: per-device demand fits the device.
    for spec in slice_.devices:
        demand = ResourceVector()
        for element, device in plan.placement.items():
            if device == spec.name:
                demand = demand + spec.target.demand(certificate.profile(element))
        assert demand.fits_within(spec.target.capacity)

    # 4. Admission: every element is on a device that admits it.
    for element, device in plan.placement.items():
        target = slice_.device(device).target
        assert target.admits(certificate.profile(element))

    # 5. Path monotonicity over apply order (maps travel with accessors,
    #    so only tables/functions are order-constrained).
    order = [
        e for e in ordered_elements(program)
        if certificate.profiles[e].kind in ("table", "function")
    ]
    positions = {spec.name: i for i, spec in enumerate(slice_.devices)}
    device_positions = [positions[plan.placement[e]] for e in order]
    assert device_positions == sorted(device_positions)


@settings(max_examples=25, deadline=None)
@given(random_programs())
def test_estimates_consistent(program):
    certificate = certify(program)
    try:
        plan = PlacementEngine().compile(program, certificate, make_standard_slice())
    except PlacementError:
        return
    assert plan.estimated_latency_ns > 0
    assert plan.estimated_energy_nj >= 0
    # total ops on devices == sum of profile ops
    total_profile_ops = sum(
        certificate.profile(e).max_ops for e in plan.placement
    )
    assert total_profile_ops >= 0
