"""Soundness properties of the FlexCheck data-flow analysis.

FlexCheck's access sets are an over-approximation, so for *any* program
the dynamic behaviour observed while executing a packet through the
interpreter must be contained in the static sets:

* every header field whose value changed is in ``field_writes``;
* every metadata key that changed or appeared is in ``meta_writes``;
* every map whose contents changed is in ``map_writes``;
* the interpreter's op count never exceeds the certificate bound.

Programs (and deltas) are generated randomly via ``lang/builder.py``.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro import analysis  # noqa: E402
from repro.analysis.dataflow import analyze  # noqa: E402
from repro.analysis.report import Severity  # noqa: E402
from repro.apps.base import standard_builder  # noqa: E402
from repro.lang import builder as b  # noqa: E402
from repro.lang import delta as d  # noqa: E402
from repro.lang import ir  # noqa: E402
from repro.lang.analyzer import certify  # noqa: E402
from repro.simulator.packet import make_packet  # noqa: E402
from repro.simulator.pipeline_exec import ProgramInstance  # noqa: E402

FIELDS = [
    "ethernet.dst",
    "ethernet.src",
    "ipv4.src",
    "ipv4.dst",
    "ipv4.ttl",
    "tcp.sport",
    "tcp.dport",
    "tcp.flags",
]
META_KEYS = ["color", "bucket"]
#: (map name, key fields) — declared on every generated program.
MAPS = [("m0", ("ipv4.src",)), ("m1", ("ipv4.src", "ipv4.dst"))]

# -- strategies -------------------------------------------------------------

fields = st.sampled_from(FIELDS)
meta_keys = st.sampled_from(META_KEYS)
consts = st.integers(min_value=0, max_value=255)


def value_exprs(depth: int = 2, allow_var: bool = True) -> st.SearchStrategy:
    leaves = [
        consts.map(lambda v: ir.Const(value=v)),
        fields.map(b.field),
        meta_keys.map(lambda k: ir.MetaRef(key=k)),
        st.sampled_from(MAPS).map(lambda m: b.map_get(m[0], *m[1])),
    ]
    if allow_var:
        leaves.append(st.just(ir.VarRef(name="v")))
    leaf = st.one_of(*leaves)
    if depth == 0:
        return leaf
    sub = value_exprs(depth - 1, allow_var)
    composite = st.builds(
        lambda op, left, right: b.binop(op, left, right),
        st.sampled_from(["+", "-", "&", "|", "^"]),
        sub,
        sub,
    )
    return st.one_of(leaf, composite)


conditions = st.builds(
    lambda op, left, right: b.binop(op, left, right),
    st.sampled_from(["==", "!=", "<", ">="]),
    value_exprs(1),
    value_exprs(1),
)


def flat_stmts(allow_var: bool = True) -> st.SearchStrategy:
    """Statements legal inside actions (no control flow) and functions.

    Actions type-check each statement in a fresh scope, so their bodies
    must not reference ``let``-bound variables (``allow_var=False``).
    """
    values = value_exprs(allow_var=allow_var)
    return st.one_of(
        st.builds(lambda f, v: b.assign(f, v), fields, values),
        st.builds(lambda k, v: b.assign(f"meta.{k}", v), meta_keys, values),
        st.builds(
            lambda m, v: b.map_put(m[0], *m[1], v), st.sampled_from(MAPS), values
        ),
        st.builds(lambda m: b.map_delete(m[0], *m[1]), st.sampled_from(MAPS)),
        st.builds(
            lambda name, arg: (
                b.call(name, arg) if name in ("set_port", "set_queue") else b.call(name)
            ),
            st.sampled_from(["mark_drop", "set_port", "set_queue", "clone", "no_op"]),
            consts,
        ),
    )


def stmts(depth: int = 1) -> st.SearchStrategy:
    if depth == 0:
        return flat_stmts()
    sub = st.lists(stmts(depth - 1), min_size=1, max_size=3)
    return st.one_of(
        flat_stmts(),
        st.builds(lambda c, t, e: b.if_(c, t, e), conditions, sub, sub),
        st.builds(lambda body: b.repeat(2, body), sub),
    )


bodies = st.lists(stmts(), min_size=1, max_size=4).map(
    # Every body opens with `let v`, so VarRef("v") is always bound.
    lambda body: [b.let("v", "u32", 7)] + body
)


@st.composite
def programs(draw) -> ir.Program:
    program = standard_builder("prop")
    for name, keys in MAPS:
        program.map(name, keys=list(keys), value_type="u64", max_entries=256)
    n_functions = draw(st.integers(min_value=1, max_value=3))
    applied = []
    for i in range(n_functions):
        program.function(f"f{i}", draw(bodies))
        applied.append(f"f{i}")
    if draw(st.booleans()):
        program.action(
            "act", draw(st.lists(flat_stmts(allow_var=False), min_size=1, max_size=3))
        )
        program.table("t", keys=["ipv4.dst"], actions=["act"], size=64, default="act")
        applied.append("t")
    program.apply(*applied)
    return program.build()


packets = st.builds(
    make_packet,
    src_ip=st.integers(min_value=0, max_value=2**32 - 1),
    dst_ip=st.integers(min_value=0, max_value=2**32 - 1),
    proto=st.sampled_from([6, 17]),
    ttl=st.integers(min_value=0, max_value=255),
    tcp_flags=st.integers(min_value=0, max_value=255),
)


def observed_writes(program: ir.Program, packet):
    """Execute ``packet`` and report (changed fields, changed meta keys,
    changed maps, ops)."""
    instance = ProgramInstance(program)
    fields_before = dict(packet.fields)
    meta_before = dict(packet.meta)
    maps_before = {
        name: dict(instance.maps.state(name).items()) for name, _ in MAPS
    }
    result = instance.process(packet)
    changed_fields = {
        ir.FieldRef(header=h, field=f)
        for (h, f), value in packet.fields.items()
        if fields_before.get((h, f)) != value
    }
    changed_meta = {
        key for key, value in packet.meta.items() if meta_before.get(key) != value
    }
    changed_maps = {
        name
        for name, _ in MAPS
        if dict(instance.maps.state(name).items()) != maps_before[name]
    }
    return changed_fields, changed_meta, changed_maps, result.ops


@settings(max_examples=60, deadline=None)
@given(program=programs(), packet=packets)
def test_dynamic_writes_within_static_sets(program, packet):
    access = analyze(program).program_access
    changed_fields, changed_meta, changed_maps, _ = observed_writes(program, packet)
    assert changed_fields <= set(access.field_writes)
    assert changed_meta <= set(access.meta_writes)
    assert changed_maps <= set(access.map_writes)


@settings(max_examples=60, deadline=None)
@given(program=programs(), packet=packets)
def test_ops_within_certificate_bound(program, packet):
    certificate = certify(program)
    *_, ops = observed_writes(program, packet)
    assert ops <= certificate.max_packet_ops


@st.composite
def deltas(draw) -> d.Delta:
    """A delta adding one function that writes a random field/map, spliced
    into the apply block."""
    target = draw(fields)
    body = [b.assign(target, draw(consts))]
    if draw(st.booleans()):
        which = draw(st.sampled_from(MAPS))
        body.append(b.map_put(which[0], *which[1], draw(consts)))
    return d.Delta(
        name="prop_patch",
        ops=(
            d.AddFunction(ir.FunctionDef(name="patched", body=tuple(body))),
            d.InsertApply(element="patched"),
        ),
    )


@settings(max_examples=40, deadline=None)
@given(program=programs(), delta=deltas())
def test_race_findings_anchor_to_delta_and_downgrade(program, delta):
    new_program, changes = d.apply_delta(program, delta)

    report = analysis.check(program, delta=delta)
    race = [f for f in report.findings if f.pass_name == "race"]
    # Race findings always blame an element the delta actually touched.
    for finding in race:
        assert finding.element in changes.touched

    # Committing to the two-phase consistent path mitigates every
    # ERROR-severity race: nothing from the race pass blocks admission.
    mitigated = analysis.check(program, delta=delta, two_phase=True)
    assert not any(
        f.severity is Severity.ERROR
        for f in mitigated.findings
        if f.pass_name == "race"
    )
