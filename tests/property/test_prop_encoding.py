"""Property-based tests for state encoding conversions and hashing."""

from hypothesis import given
from hypothesis import strategies as st

from repro.compiler.state_encoding import ASSOCIATIVE, convert, decode, encode
from repro.lang.maps import MapSnapshot
from repro.targets.base import StateEncoding
from repro.util import stable_hash

entries = st.dictionaries(
    st.tuples(st.integers(min_value=0, max_value=2**32 - 1)),
    st.integers(min_value=0, max_value=2**63),
    max_size=40,
)
associative = st.sampled_from(sorted(ASSOCIATIVE, key=lambda e: e.value))


def snapshot_of(contents):
    return MapSnapshot(map_name="m", entries=tuple(contents.items()), version=1)


@given(entries, associative)
def test_associative_encode_decode_identity(contents, encoding):
    snapshot = snapshot_of(contents)
    assert decode(encode(snapshot, encoding)).as_dict() == contents


@given(entries, associative, associative)
def test_associative_conversion_lossless(contents, source, destination):
    arrived, report = convert(snapshot_of(contents), source, destination)
    assert report.lossless
    assert arrived.as_dict() == contents


@given(entries)
def test_register_encoding_bounded_by_slots(contents):
    encoded = encode(snapshot_of(contents), StateEncoding.REGISTER, register_slots=16)
    assert len(encoded) <= 16
    assert len(encoded) + encoded.collisions == len(contents)


@given(st.tuples(st.integers(min_value=0, max_value=2**64)))
def test_stable_hash_deterministic(key):
    assert stable_hash(key) == stable_hash(key)


@given(st.lists(st.integers(min_value=0, max_value=2**32), min_size=2, max_size=6))
def test_stable_hash_order_sensitive(parts):
    forward = stable_hash(tuple(parts))
    backward = stable_hash(tuple(reversed(parts)))
    if parts != list(reversed(parts)):
        assert forward != backward


@given(st.sets(st.integers(min_value=0, max_value=2**32), min_size=50, max_size=200))
def test_stable_hash_low_bits_spread(values):
    """The data plane computes hash % small_n; low bits must carry
    entropy (the FNV-without-finalizer bug this guards against)."""
    buckets = {stable_hash((v,)) % 4 for v in values}
    assert len(buckets) >= 3
