"""RetryPolicy, RecoveryManager, HealthMonitor and CrashSchedule."""

import pytest

from repro.faults import (
    CrashSchedule,
    DeviceCrash,
    FaultPlan,
    HealthMonitor,
    ReconfigJournal,
    RecoveryManager,
    RetryPolicy,
    TxnState,
)
from repro.lang.delta import apply_delta, parse_delta
from repro.runtime.device import DeviceRuntime
from repro.simulator.engine import EventLoop
from repro.targets import drmt_switch

from tests.faults.test_device_faults import ADD_GUARD


def make_device(base_program, name="sw1"):
    device = DeviceRuntime(name, drmt_switch(name))
    device.install(base_program)
    return device


def strand(device, base_program, crash_at=0.4):
    new_program, _ = apply_delta(base_program, parse_delta(ADD_GUARD))
    device.begin_hitless_update(new_program, now=0.0, duration_s=1.0)
    device.crash(crash_at)
    return new_program


class TestRetryPolicy:
    def test_backoff_doubles_from_base(self):
        policy = RetryPolicy(base_backoff_s=0.01, multiplier=2.0, max_backoff_s=1.0)
        assert policy.backoff_s(1) == pytest.approx(0.01)
        assert policy.backoff_s(2) == pytest.approx(0.02)
        assert policy.backoff_s(3) == pytest.approx(0.04)

    def test_backoff_is_capped(self):
        policy = RetryPolicy(base_backoff_s=0.5, multiplier=10.0, max_backoff_s=1.0)
        assert policy.backoff_s(5) == 1.0

    def test_total_backoff_sums_retries_only(self):
        policy = RetryPolicy(max_attempts=4, base_backoff_s=0.01, multiplier=2.0)
        # 3 retries: 0.01 + 0.02 + 0.04
        assert policy.total_backoff_s() == pytest.approx(0.07)


class TestRecoveryManager:
    def make_manager(self, device, resume=True):
        loop = EventLoop()
        journal = ReconfigJournal()
        manager = RecoveryManager(
            loop, {device.name: device}, journal, resume=resume
        )
        return loop, journal, manager

    def test_restart_resumes_stranded_device(self, base_program):
        device = make_device(base_program)
        loop, journal, manager = self.make_manager(device)
        new_program = strand(device, base_program)
        entry = journal.begin(device.name, base_program.version, new_program.version,
                              started_at=0.0, window_end=1.0)
        manager.on_crash(device.name)
        device.restart(1.4)
        manager.on_restart(device.name)
        assert not device.stranded
        assert device.active_program.version == new_program.version
        assert manager.resumed == 1
        assert entry.state is TxnState.COMMITTED
        assert entry.resolution == "resume"

    def test_restart_rolls_back_when_configured(self, base_program):
        device = make_device(base_program)
        loop, journal, manager = self.make_manager(device, resume=False)
        new_program = strand(device, base_program)
        entry = journal.begin(device.name, base_program.version, new_program.version,
                              started_at=0.0, window_end=1.0)
        device.restart(1.4)
        manager.on_restart(device.name)
        assert not device.stranded
        assert device.active_program.version == base_program.version
        assert manager.rolled_back == 1
        assert entry.state is TxnState.ROLLED_BACK

    def test_crash_event_carries_mid_delta_detail(self, base_program):
        device = make_device(base_program)
        loop, journal, manager = self.make_manager(device)
        new_program = strand(device, base_program)
        journal.begin(device.name, base_program.version, new_program.version,
                      started_at=0.0, window_end=1.0)
        manager.on_crash(device.name)
        assert "mid-delta" in manager.events[-1].detail

    def test_idle_crash_restart_is_clean(self, base_program):
        device = make_device(base_program)
        loop, journal, manager = self.make_manager(device)
        device.crash(1.0)
        manager.on_crash(device.name)
        device.restart(2.0)
        manager.on_restart(device.name)
        assert manager.events[-1].kind == "restart"
        assert manager.resumed == 0 and manager.rolled_back == 0

    def test_deferred_actions_run_after_restart(self, base_program):
        device = make_device(base_program)
        loop, journal, manager = self.make_manager(device)
        fired = []
        manager.defer_until_restart(device.name, lambda: fired.append(True))
        assert fired == []
        device.crash(1.0)
        device.restart(2.0)
        manager.on_restart(device.name)
        assert fired == [True]


class TestCrashSchedule:
    def test_arm_crashes_and_restarts_on_schedule(self, base_program):
        loop = EventLoop()
        device = make_device(base_program)
        schedule = CrashSchedule(loop, {device.name: device})
        plan = FaultPlan(
            seed=1,
            crashes=(DeviceCrash(device="sw1", at_s=1.0, restart_after_s=0.5),),
        )
        schedule.arm(plan)
        loop.run_until(1.2)
        assert device.crashed
        loop.run_until(2.0)
        assert not device.crashed
        assert schedule.crashes == 1 and schedule.restarts == 1

    def test_unknown_device_is_skipped(self, base_program):
        loop = EventLoop()
        schedule = CrashSchedule(loop, {})
        plan = FaultPlan(
            seed=1, crashes=(DeviceCrash(device="ghost", at_s=1.0, restart_after_s=0.5),)
        )
        schedule.arm(plan)
        loop.run_until(3.0)
        assert schedule.crashes == 0


class TestHealthMonitor:
    def test_quarantine_after_threshold_and_release(self, base_program):
        loop = EventLoop()
        device = make_device(base_program)
        quarantined, released = [], []
        monitor = HealthMonitor(
            loop,
            {device.name: device},
            probe_interval_s=0.1,
            failure_threshold=3,
            on_quarantine=quarantined.append,
            on_release=released.append,
        )
        monitor.start()
        device.crash(0.05)
        loop.run_until(0.25)
        assert quarantined == []  # only 2 misses so far
        loop.run_until(0.35)
        assert quarantined == ["sw1"]
        assert "sw1" in monitor.quarantined
        device.restart(0.5)
        loop.run_until(0.7)
        assert released == ["sw1"]
        assert monitor.quarantined == set()

    def test_quarantine_detours_datapath(self, base_program):
        """On a diamond h1-{sw1,sw2}-h2, quarantining sw1 must yield a
        route through sw2."""
        from repro.control.topology import TopologyView

        topology = TopologyView()
        for name in ("h1", "sw1", "sw2", "h2"):
            topology.add_device(name, drmt_switch(name))
        topology.add_link("h1", "sw1")
        topology.add_link("h1", "sw2")
        topology.add_link("sw1", "h2")
        topology.add_link("sw2", "h2")
        assert topology.shortest_path("h1", "h2") in (
            ["h1", "sw1", "h2"], ["h1", "sw2", "h2"],
        )

        loop = EventLoop()
        device = make_device(base_program)
        detours = []
        monitor = HealthMonitor(
            loop,
            {device.name: device},
            probe_interval_s=0.1,
            failure_threshold=3,
            on_quarantine=lambda name: detours.append(
                topology.path_avoiding("h1", "h2", {name})
            ),
        )
        monitor.start()
        device.crash(0.0)
        loop.run_until(1.0)
        assert detours == [["h1", "sw2", "h2"]]

    def test_stop_halts_probing(self, base_program):
        loop = EventLoop()
        device = make_device(base_program)
        quarantined = []
        monitor = HealthMonitor(
            loop,
            {device.name: device},
            probe_interval_s=0.1,
            failure_threshold=1,
            on_quarantine=quarantined.append,
        )
        monitor.start()
        monitor.stop()
        device.crash(0.0)
        loop.run_until(1.0)
        assert quarantined == []
