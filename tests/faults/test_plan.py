"""FaultPlan / FaultInjector determinism and scoping."""

from repro.faults import (
    ChannelFault,
    DeviceCrash,
    DrpcFault,
    FaultInjector,
    FaultPlan,
    MigrationFault,
)


def full_plan(seed: int = 5) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        crashes=(DeviceCrash(device="sw1", at_s=1.0, restart_after_s=0.5),),
        channel=ChannelFault(
            drop_probability=0.3, delay_probability=0.3, delay_s=0.01,
            device_pattern="sw*",
        ),
        drpc=(DrpcFault(service_pattern="state_*", fail_probability=0.4),),
        migration=(
            MigrationFault(
                map_pattern="fw_*", stall_probability=0.5, stall_s=0.1,
                fail_probability=0.2,
            ),
        ),
    )


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a, b = FaultInjector(full_plan()), FaultInjector(full_plan())
        draws_a = [a.command_dropped("sw1") for _ in range(50)]
        draws_b = [b.command_dropped("sw1") for _ in range(50)]
        assert draws_a == draws_b
        assert [a.channel_outcome("sw1") for _ in range(50)] == [
            b.channel_outcome("sw1") for _ in range(50)
        ]
        assert [a.drpc_failure("state_read") for _ in range(50)] == [
            b.drpc_failure("state_read") for _ in range(50)
        ]

    def test_different_seeds_diverge(self):
        a = FaultInjector(full_plan(seed=5))
        b = FaultInjector(full_plan(seed=6))
        draws_a = [a.channel_outcome("sw1") for _ in range(100)]
        draws_b = [b.channel_outcome("sw1") for _ in range(100)]
        assert draws_a != draws_b

    def test_categories_are_independent_streams(self):
        """Draws in one category must not shift another category's
        sequence — recovery and baseline runs stay comparable even
        though they make different numbers of channel calls."""
        a, b = FaultInjector(full_plan()), FaultInjector(full_plan())
        for _ in range(25):  # extra channel traffic on a only
            a.channel_outcome("sw1")
        draws_a = [a.drpc_failure("state_read") for _ in range(20)]
        draws_b = [b.drpc_failure("state_read") for _ in range(20)]
        assert draws_a == draws_b


class TestScoping:
    def test_channel_pattern(self):
        injector = FaultInjector(full_plan())
        # nic1 does not match "sw*": never impaired
        assert all(
            injector.channel_outcome("nic1") == (False, 0.0) for _ in range(50)
        )

    def test_drpc_pattern(self):
        injector = FaultInjector(full_plan())
        assert not any(injector.drpc_failure("migrate_chunk") for _ in range(50))
        assert any(injector.drpc_failure("state_write") for _ in range(50))

    def test_migration_pattern(self):
        injector = FaultInjector(full_plan())
        assert not any(injector.migration_fails("lb_pool") for _ in range(50))
        assert injector.migration_stall_s("lb_pool") == 0.0

    def test_empty_plan_is_inert(self):
        injector = FaultInjector(FaultPlan(seed=9))
        assert not injector.command_dropped("sw1")
        assert injector.channel_outcome("sw1") == (False, 0.0)
        assert not injector.drpc_failure("anything")
        assert not injector.migration_fails("m")
        assert injector.migration_stall_s("m") == 0.0


class TestAccounting:
    def test_stats_tally(self):
        injector = FaultInjector(full_plan())
        for _ in range(200):
            injector.channel_outcome("sw1")
            injector.drpc_failure("state_read")
            injector.migration_fails("fw_conns")
            injector.migration_stall_s("fw_conns")
        stats = injector.stats.to_dict()
        assert stats["writes_dropped"] > 0
        assert stats["drpc_failures"] > 0
        assert stats["migration_failures"] > 0
        assert stats["migration_stalls"] > 0

    def test_describe_mentions_every_fault(self):
        text = "\n".join(full_plan().describe())
        assert "seed 5" in text
        assert "crash sw1" in text
        assert "drop p=0.3" in text
        assert "state_*" in text
        assert "fw_*" in text
