"""Write-ahead reconfiguration journal semantics."""

from repro.faults import ReconfigJournal, TxnState


def test_begin_is_pending():
    journal = ReconfigJournal()
    entry = journal.begin("sw1", 1, 2, started_at=5.0, window_end=5.5)
    assert entry.state is TxnState.PENDING
    assert journal.pending == [entry]
    assert journal.pending_for("sw1") is entry
    assert journal.pending_for("nic1") is None


def test_commit_resolves_once():
    journal = ReconfigJournal()
    entry = journal.begin("sw1", 1, 2, started_at=5.0, window_end=5.5)
    journal.commit(entry, now=5.5)
    assert entry.state is TxnState.COMMITTED
    assert entry.resolution == "window_closed"
    assert entry.resolved_at == 5.5
    # resolving again (any direction) is a no-op
    journal.rollback(entry, now=9.0)
    journal.commit(entry, now=9.0, resolution="resume")
    assert entry.state is TxnState.COMMITTED
    assert entry.resolved_at == 5.5


def test_rollback_resolves():
    journal = ReconfigJournal()
    entry = journal.begin("sw1", 1, 2, started_at=5.0, window_end=5.5)
    journal.rollback(entry, now=6.2)
    assert entry.state is TxnState.ROLLED_BACK
    assert entry.resolution == "rollback"
    assert journal.pending == []


def test_pending_for_returns_latest():
    journal = ReconfigJournal()
    first = journal.begin("sw1", 1, 2, started_at=1.0, window_end=1.5)
    journal.commit(first, now=1.5)
    second = journal.begin("sw1", 2, 3, started_at=2.0, window_end=2.5)
    assert journal.pending_for("sw1") is second


def test_committed_by_tracks_latest_commit():
    journal = ReconfigJournal()
    assert journal.committed_by() is None
    a = journal.begin("sw1", 1, 2, started_at=1.0, window_end=1.5)
    b = journal.begin("nic1", 1, 2, started_at=1.0, window_end=1.2)
    journal.commit(b, now=1.2)
    journal.commit(a, now=6.2, resolution="resume")
    assert journal.committed_by() == 6.2


def test_to_dict_is_serializable():
    journal = ReconfigJournal()
    entry = journal.begin("sw1", 1, 2, started_at=5.0, window_end=5.5)
    journal.commit(entry, now=6.2, resolution="resume")
    payload = journal.to_dict()
    assert payload == [
        {
            "txn": 0,
            "device": "sw1",
            "old_version": 1,
            "new_version": 2,
            "started_at": 5.0,
            "window_end": 5.5,
            "state": "committed",
            "resolved_at": 6.2,
            "resolution": "resume",
            "delta_id": None,
        }
    ]
