"""Controller-fault chaos scenarios (FlexHA, experiment E19)."""

from repro.apps import base_infrastructure, firewall_delta
from repro.faults import (
    ControllerCrash,
    FaultPlan,
    LeaderPartition,
    run_controller_chaos,
)

UPDATE_AT_S = 5.0
CRASH_AT_S = 5.02  # right after the commit, mid two-phase transition


def leader_crash_plan(seed=7):
    return FaultPlan(
        seed=seed,
        controller_crashes=(
            ControllerCrash(node="leader", at_s=CRASH_AT_S, restart_after_s=2.0),
        ),
    )


def partition_plan(seed=7):
    return FaultPlan(
        seed=seed,
        partitions=(LeaderPartition(at_s=CRASH_AT_S, heal_after_s=3.0),),
    )


def run(plan, **kwargs):
    return run_controller_chaos(
        base_infrastructure(),
        firewall_delta(),
        plan,
        update_at_s=UPDATE_AT_S,
        **kwargs,
    )


class TestLeaderCrashMidTransition:
    def test_converges_with_zero_violations(self):
        report = run(leader_crash_plan())
        assert report.converged
        assert report.violations == 0
        assert report.stale_writes_applied == 0
        assert not report.stranded
        assert report.executed_updates == 1
        assert report.device_versions["sw1"] == report.target_version

    def test_failover_measured(self):
        report = run(leader_crash_plan())
        assert report.failovers == 1
        assert len(report.handoff_downtimes_s) == 1
        assert 0.0 < report.handoff_downtimes_s[0] < 2.0
        # The successor ran a resync sweep over the fleet.
        assert report.resyncs >= 2

    def test_same_seed_reports_byte_identical(self):
        first = run(leader_crash_plan())
        second = run(leader_crash_plan())
        assert first.to_dict() == second.to_dict()

    def test_different_seeds_differ(self):
        # The seed drives elections; a different seed must not silently
        # reuse the same scenario trace.
        first = run(leader_crash_plan(seed=7))
        second = run(leader_crash_plan(seed=8))
        assert first.to_dict() != second.to_dict()


class TestLeaderPartition:
    def test_fencing_rejects_deposed_leader(self):
        report = run(partition_plan())
        assert report.converged
        assert report.violations == 0
        assert report.epoch_rejections > 0
        assert report.stale_writes_applied == 0

    def test_unfenced_baseline_lets_stale_writes_land(self):
        report = run(partition_plan(), fencing=False)
        assert report.stale_writes_applied > 0
        assert report.epoch_rejections == 0

    def test_partition_reports_byte_identical(self):
        first = run(partition_plan())
        second = run(partition_plan())
        assert first.to_dict() == second.to_dict()


class TestPlanDescribe:
    def test_controller_categories_described(self):
        plan = FaultPlan(
            seed=3,
            controller_crashes=(ControllerCrash(node="leader", at_s=1.0),),
            partitions=(LeaderPartition(at_s=2.0, heal_after_s=1.5),),
        )
        description = "\n".join(plan.describe())
        assert "controller crash leader at t=1s" in description
        assert "partition leader at t=2s" in description
        assert "heal after 1.5s" in description
