"""Device crash / stranded-transition semantics (FlexFault)."""

import pytest

from repro.errors import ReconfigError
from repro.lang.delta import apply_delta, parse_delta
from repro.runtime.device import DeviceRuntime
from repro.simulator.packet import make_packet
from repro.targets import drmt_switch

ADD_GUARD = """
delta add_guard {
  add action g_drop() { mark_drop(); }
  add table guard { key: ipv4.src; actions: g_drop; size: 16; default: g_drop; }
  insert guard before acl;
}
"""


def make_device(base_program):
    device = DeviceRuntime("d", drmt_switch("d"))
    device.install(base_program)
    return device


def begin_update(device, base_program, now=0.0, duration=1.0):
    new_program, _ = apply_delta(base_program, parse_delta(ADD_GUARD))
    device.begin_hitless_update(new_program, now=now, duration_s=duration)
    return new_program


class TestCrash:
    def test_crash_makes_device_unavailable(self, base_program):
        device = make_device(base_program)
        device.crash(1.0)
        assert device.crashed
        assert not device.available(1.5)
        assert device.stats.crashes == 1

    def test_restart_restores_availability(self, base_program):
        device = make_device(base_program)
        device.crash(1.0)
        device.restart(2.0)
        assert not device.crashed
        assert device.available(2.0)
        assert device.stats.restarts == 1

    def test_idle_crash_does_not_strand(self, base_program):
        device = make_device(base_program)
        device.crash(1.0)
        assert not device.stranded

    def test_crash_mid_window_freezes_progress(self, base_program):
        device = make_device(base_program)
        begin_update(device, base_program, now=0.0, duration=1.0)
        device.crash(0.4)
        assert device.stranded
        assert device._transition.frozen_progress == pytest.approx(0.4)

    def test_crash_after_window_end_finalizes(self, base_program):
        device = make_device(base_program)
        new_program = begin_update(device, base_program, now=0.0, duration=1.0)
        device.crash(1.5)  # window already elapsed: clean cut-over
        assert not device.stranded
        assert device.active_program.version == new_program.version

    def test_stranded_survives_restart_without_recovery(self, base_program):
        device = make_device(base_program)
        begin_update(device, base_program, now=0.0, duration=1.0)
        device.crash(0.4)
        device.restart(1.4)
        assert device.stranded  # mixed state persists until resolved

    def test_stranded_device_serves_mixed_versions(self, base_program):
        """The frozen split keeps routing packets to BOTH versions —
        the packet-inconsistent behaviour recovery exists to prevent."""
        device = make_device(base_program)
        begin_update(device, base_program, now=0.0, duration=1.0)
        device.crash(0.5)
        device.restart(1.5)
        seen = set()
        for i in range(200):
            packet = make_packet(i, 2)
            device.process(packet, 2.0 + i * 1e-3)
            seen.add(packet.versions_seen["d"])
        assert len(seen) == 2

    def test_stranded_ignores_upstream_epoch(self, base_program):
        device = make_device(base_program)
        begin_update(device, base_program, now=0.0, duration=1.0)
        device.crash(0.999)  # frozen at ~progress 1: all packets -> new
        packet = make_packet(1, 2)
        packet.meta["_epoch"] = base_program.version  # upstream says old
        device.restart(1.5)
        device.process(packet, 2.0)
        assert packet.versions_seen["d"] != base_program.version


class TestResolution:
    def test_resume_finishes_cutover(self, base_program):
        device = make_device(base_program)
        new_program = begin_update(device, base_program, now=0.0, duration=1.0)
        device.crash(0.4)
        device.restart(1.4)
        device.resolve_interrupted(to_new=True)
        assert not device.stranded
        assert device.active_program.version == new_program.version

    def test_rollback_retires_staged_version(self, base_program):
        device = make_device(base_program)
        begin_update(device, base_program, now=0.0, duration=1.0)
        device.crash(0.4)
        device.restart(1.4)
        device.resolve_interrupted(to_new=False)
        assert not device.stranded
        assert device.active_program.version == base_program.version

    def test_resolve_without_transition_raises(self, base_program):
        device = make_device(base_program)
        with pytest.raises(ReconfigError, match="no transition"):
            device.resolve_interrupted(to_new=True)

    def test_new_update_rejected_while_stranded(self, base_program):
        device = make_device(base_program)
        begin_update(device, base_program, now=0.0, duration=1.0)
        device.crash(0.4)
        device.restart(1.4)
        with pytest.raises(ReconfigError, match="stranded mid-delta"):
            begin_update(device, base_program, now=2.0)

    def test_settle_finalizes_elapsed_window_only(self, base_program):
        device = make_device(base_program)
        new_program = begin_update(device, base_program, now=0.0, duration=1.0)
        device.settle(0.5)
        assert device.in_transition  # window still open: no-op
        device.settle(1.5)
        assert not device.in_transition
        assert device.active_program.version == new_program.version

    def test_settle_never_finalizes_frozen_window(self, base_program):
        device = make_device(base_program)
        begin_update(device, base_program, now=0.0, duration=1.0)
        device.crash(0.4)
        device.settle(99.0)
        assert device.stranded
