"""FlexCloud × FlexHA: the admission queue survives leader fail-over.

With HA attached every coalesced batch is committed to the Raft log
before it applies (``HACommand(kind="cloud")``), rounds only drain
while a live leader exists, and the delta-id guard makes re-driven
batches idempotent — so every submitted delta applies exactly once no
matter when the leader dies."""

import pytest

from repro.apps import base_infrastructure
from repro.apps.base import STANDARD_HEADERS
from repro.cloud.admission import TenantDelta
from repro.control.ha import FlexHA
from repro.core.flexnet import FlexNet
from repro.lang import builder as b
from repro.lang.builder import ProgramBuilder
from repro.lang.composition import Permission, TenantSpec
from repro.simulator.packet import reset_packet_ids


def tenant_extension():
    program = ProgramBuilder("ext", owner="tenant")
    for header, fields in STANDARD_HEADERS.items():
        program.header(header, **fields)
    program.map("hits", keys=["ipv4.src"], value_type="u32", max_entries=64)
    program.function(
        "watch",
        [
            b.let("n", "u32", b.map_get("hits", "ipv4.src")),
            b.map_put("hits", "ipv4.src", b.binop("+", "n", 1)),
        ],
    )
    program.apply("watch")
    return program.build()


def admit_delta(name, vlan):
    return TenantDelta(
        kind="admit",
        tenant=name,
        sla_class="gold",
        spec=TenantSpec(name=name, vlan_id=vlan, permission=Permission()),
        extension=tenant_extension(),
    )


def make_cloud_ha_net(seed=42, node_count=3):
    reset_packet_ids()
    net = FlexNet.standard("drmt")
    net.install(base_infrastructure())
    ha = FlexHA(net.controller, node_count=node_count, seed=seed, fencing=True)
    engine = net.cloud
    engine.attach_ha(ha)
    engine.start(net.controller.loop)
    return net, net.controller, ha, engine


def settle(controller):
    for device in controller.devices.values():
        device.settle(controller.loop.now)


class TestReplicatedAdmission:
    def test_cloud_batch_commits_to_the_log_then_applies(self):
        net, controller, ha, engine = make_cloud_ha_net()
        controller.loop.run_until(1.0)
        assert ha.cluster.leader() is not None
        tickets = [
            engine.submit(admit_delta("t1", 100)),
            engine.submit(admit_delta("t2", 200)),
        ]
        controller.loop.run_until(4.0)
        settle(controller)
        assert all(t.state == "applied" for t in tickets)
        assert sorted(controller.tenant_names) == ["t1", "t2"]
        # One coalesced batch: two deltas, version +2, one cloud command
        # replicated on every node's log.
        assert controller.program.version == 3
        assert ha.cloud_submitted == 1 and ha.cloud_executed == 1
        for node in ha.cluster.nodes.values():
            assert any(
                getattr(command, "kind", None) == "cloud"
                for command in node.applied_commands
            )

    def test_leaderless_rounds_keep_the_queue_intact(self):
        net, controller, ha, engine = make_cloud_ha_net()
        controller.loop.run_until(1.0)
        for node_id in ha.cluster.nodes:
            ha.cluster.bus.crash(node_id)
        ticket = engine.submit(admit_delta("t1", 100))
        before = engine.rounds_skipped
        assert engine.drain_round(controller.loop.now) == 0
        assert engine.rounds_skipped == before + 1
        assert len(engine.queue) == 1 and ticket.state == "pending"

    @pytest.mark.parametrize("crash_at", [5.1, 5.27])
    def test_queue_survives_leader_failover(self, crash_at):
        """Crash the leader before the next round (5.1: the batch is
        still queued) and just after it (5.27: the proposal is in
        flight) — both converge to exactly-once application on the
        successor."""
        net, controller, ha, engine = make_cloud_ha_net()
        controller.loop.run_until(1.0)
        first_leader = ha.leader_id

        def submit():
            engine.submit(admit_delta("t1", 100))
            engine.submit(admit_delta("t2", 200))

        controller.loop.schedule_at(5.0, submit)
        controller.loop.schedule_at(
            crash_at, lambda: ha.cluster.bus.crash(ha.leader_id or first_leader)
        )
        controller.loop.run_until(16.0)
        settle(controller)
        assert len(ha.failovers) == 1
        assert sorted(controller.tenant_names) == ["t1", "t2"]
        # Exactly once: two admits, version exactly +2, no errors.
        assert controller.program.version == 3
        assert engine.applied == 2 and engine.failed == 0
        assert not ha.update_errors
        assert engine.stats()["inflight"] == 0
        assert len(engine.queue) == 0

    def test_failover_outcome_is_deterministic(self):
        def once():
            net, controller, ha, engine = make_cloud_ha_net()
            controller.loop.run_until(1.0)
            first_leader = ha.leader_id
            controller.loop.schedule_at(
                5.0, lambda: engine.submit(admit_delta("t1", 100))
            )
            controller.loop.schedule_at(
                5.27, lambda: ha.cluster.bus.crash(ha.leader_id or first_leader)
            )
            controller.loop.run_until(16.0)
            settle(controller)
            return engine.stats(), controller.program.version

        assert once() == once()
