"""FlexCloud admission units: queue backpressure (typed shed reasons,
submission-order re-drain), weighted round planning, coalescer fold
rules, and the drain loop against a scripted executor."""

import pytest

from repro.cloud.admission import (
    AdmissionQueue,
    CloudEngine,
    Coalescer,
    ExecutionResult,
    ShedReason,
    TenantDelta,
    Ticket,
)
from repro.control.scheduler import plan_admission_round
from repro.errors import ControlPlaneError
from repro.runtime.consistency import ConsistencyLevel

#: Small depths so backpressure is reachable in a unit test:
#: class -> (queue depth bound, drain weight).
POLICIES = {"gold": (8, 4), "silver": (8, 2), "bronze": (2, 1)}


def delta(tenant, kind="admit", sla="gold", **kwargs):
    return TenantDelta(kind=kind, tenant=tenant, sla_class=sla, **kwargs)


def ticket(ticket_id, d):
    return Ticket(ticket_id=ticket_id, delta=d, submitted_at=0.0)


class ScriptedExecutor:
    """Applies every ticket, except tenants scripted to defer once
    (transient channel loss) or fail terminally."""

    def __init__(self, defer_once=(), fail=()):
        self.batches = []
        self._defer = set(defer_once)
        self._fail = set(fail)

    def execute(self, batch, *, epoch=None, dispatch_gate=None):
        self.batches.append([t.delta.tenant for t in batch])
        result = ExecutionResult(windows=1)
        for t in batch:
            name = t.delta.tenant
            if name in self._defer:
                self._defer.discard(name)
                result.deferred.append(t)
            elif name in self._fail:
                result.failed.append((t, ControlPlaneError("scripted failure")))
            else:
                result.applied.append(t)
        return result


# ---------------------------------------------------------------------------
# AdmissionQueue: bounded per-class queues, typed shed, submission order
# ---------------------------------------------------------------------------


class TestAdmissionQueue:
    def test_shed_at_depth_bound_carries_typed_reason(self):
        queue = AdmissionQueue(POLICIES)
        kept = [queue.submit(delta(f"t{i}", sla="bronze"), now=0.0) for i in range(2)]
        overflow = queue.submit(delta("t2", sla="bronze"), now=0.5)
        assert all(t.state == "pending" for t in kept)
        assert overflow.done and overflow.state == "shed"
        assert overflow.outcome.reason is ShedReason.QUEUE_FULL
        assert overflow.outcome.to_dict()["reason"] == "queue_full"
        assert queue.shed == 1 and queue.submitted == 3
        assert len(queue) == 2  # the shed ticket never entered a queue

    def test_unknown_class_is_shed_not_crashed(self):
        queue = AdmissionQueue(POLICIES)
        t = queue.submit(delta("t0", sla="platinum"), now=0.0)
        assert t.state == "shed"
        assert t.outcome.reason is ShedReason.UNKNOWN_CLASS
        assert "unknown_class" in t.summary()

    def test_take_merges_classes_back_into_submission_order(self):
        queue = AdmissionQueue(POLICIES)
        order = [("a", "bronze"), ("b", "gold"), ("c", "bronze"), ("d", "gold")]
        for name, sla in order:
            queue.submit(delta(name, sla=sla), now=0.0)
        taken = queue.take({"gold": 2, "bronze": 2})
        assert [t.delta.tenant for t in taken] == ["a", "b", "c", "d"]
        assert [t.ticket_id for t in taken] == sorted(t.ticket_id for t in taken)

    def test_requeue_puts_deferred_tickets_at_the_head(self):
        queue = AdmissionQueue(POLICIES)
        for i in range(4):
            queue.submit(delta(f"g{i}"), now=0.0)
        first = queue.take({"gold": 2})
        queue.requeue(first)
        assert all(t.rounds_deferred == 1 for t in first)
        again = queue.take({"gold": 4})
        assert [t.delta.tenant for t in again] == ["g0", "g1", "g2", "g3"]

    def test_depths_and_weights_reflect_policies(self):
        queue = AdmissionQueue(POLICIES)
        queue.submit(delta("t0", sla="silver"), now=0.0)
        assert queue.depths() == {"gold": 0, "silver": 1, "bronze": 0}
        assert queue.weights() == {"gold": 4, "silver": 2, "bronze": 1}


# ---------------------------------------------------------------------------
# plan_admission_round: weighted fair shares
# ---------------------------------------------------------------------------


class TestPlanAdmissionRound:
    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            plan_admission_round({"gold": 1}, -1, {"gold": 1})

    def test_empty_and_zero_budget(self):
        assert plan_admission_round({}, 100, {}) == {}
        assert plan_admission_round({"gold": 5}, 0, {"gold": 4}) == {"gold": 0}

    def test_anti_starvation_floor(self):
        shares = plan_admission_round(
            {"gold": 100, "bronze": 100}, 2, {"gold": 4, "bronze": 1}
        )
        assert shares == {"gold": 1, "bronze": 1}

    def test_weighted_shares_spend_the_whole_budget(self):
        shares = plan_admission_round(
            {"gold": 100, "bronze": 100}, 50, {"gold": 4, "bronze": 1}
        )
        assert sum(shares.values()) == 50
        assert shares["gold"] > shares["bronze"]

    def test_shares_capped_at_depth_and_leftover_redistributed(self):
        shares = plan_admission_round(
            {"gold": 3, "bronze": 100}, 50, {"gold": 4, "bronze": 1}
        )
        assert shares["gold"] == 3
        assert shares["bronze"] == 47

    def test_deterministic(self):
        depths = {"gold": 17, "silver": 5, "bronze": 40}
        weights = {"gold": 4, "silver": 2, "bronze": 1}
        assert plan_admission_round(depths, 23, weights) == plan_admission_round(
            depths, 23, weights
        )


# ---------------------------------------------------------------------------
# Coalescer fold rules
# ---------------------------------------------------------------------------


class _Ext:
    """Stand-in extension; the profile is monkeypatched per test."""

    def __init__(self, name):
        self.name = name


class TestCoalescer:
    def test_one_op_per_tenant_per_round(self):
        co = Coalescer()
        tickets = [
            ticket(1, delta("t1", kind="admit")),
            ticket(2, delta("t1", kind="evict")),
        ]
        batches, deferred = co.fold(tickets)
        assert batches == [[tickets[0]]]
        assert deferred == [tickets[1]]

    def test_updates_ride_alone(self):
        co = Coalescer()
        tickets = [
            ticket(1, delta("t1")),
            ticket(2, delta("t2", kind="update")),
            ticket(3, delta("t3")),
        ]
        batches, deferred = co.fold(tickets)
        assert [[t.ticket_id for t in batch] for batch in batches] == [[1], [2], [3]]
        assert deferred == []

    def test_consistency_runs_split_batches(self):
        co = Coalescer()
        tickets = [
            ticket(1, delta("t1")),
            ticket(2, delta("t2", consistency=ConsistencyLevel.PER_PACKET_PATH)),
            ticket(3, delta("t3", consistency=ConsistencyLevel.PER_PACKET_PATH)),
        ]
        batches, _ = co.fold(tickets)
        assert [[t.ticket_id for t in batch] for batch in batches] == [[1], [2, 3]]

    def test_shared_field_writes_split_batches(self):
        co = Coalescer()
        profiles = {
            "a": (False, frozenset({"ipv4.ttl"})),
            "b": (False, frozenset({"ipv4.ttl"})),
            "c": (False, frozenset()),
        }
        co._profile = lambda ext: profiles[ext.name]
        tickets = [
            ticket(1, delta("t1", extension=_Ext("a"))),
            ticket(2, delta("t2", extension=_Ext("c"))),
            ticket(3, delta("t3", extension=_Ext("b"))),
        ]
        batches, _ = co.fold(tickets)
        assert [[t.ticket_id for t in batch] for batch in batches] == [[1, 2], [3]]

    def test_at_most_one_pinned_extension_per_batch(self):
        co = Coalescer()
        profiles = {
            "p1": (True, frozenset()),
            "p2": (True, frozenset()),
            "u": (False, frozenset()),
        }
        co._profile = lambda ext: profiles[ext.name]
        tickets = [
            ticket(1, delta("t1", extension=_Ext("p1"))),
            ticket(2, delta("t2", extension=_Ext("u"))),
            ticket(3, delta("t3", extension=_Ext("p2"))),
        ]
        batches, _ = co.fold(tickets)
        assert [[t.ticket_id for t in batch] for batch in batches] == [[1, 2], [3]]


# ---------------------------------------------------------------------------
# CloudEngine: the drain loop
# ---------------------------------------------------------------------------


class TestCloudEngine:
    def make(self, executor, **kwargs):
        kwargs.setdefault("policies", POLICIES)
        return CloudEngine(executor, **kwargs)

    def test_round_coalesces_compatible_deltas_into_one_window(self):
        executor = ScriptedExecutor()
        engine = self.make(executor)
        tickets = [engine.submit(delta(f"t{i}"), now=0.0) for i in range(4)]
        assert engine.drain_round(0.25) == 4
        assert engine.windows == 1 and engine.applied == 4
        assert engine.coalesce_ratio == 4.0
        assert executor.batches == [["t0", "t1", "t2", "t3"]]
        assert all(t.state == "applied" for t in tickets)

    def test_naive_mode_runs_one_window_per_delta(self):
        executor = ScriptedExecutor()
        engine = self.make(executor, coalesce=False)
        for i in range(3):
            engine.submit(delta(f"t{i}"), now=0.0)
        engine.drain_round(0.25)
        assert executor.batches == [["t0"], ["t1"], ["t2"]]
        assert engine.windows == 3

    def test_transient_deferrals_redrain_first_in_submission_order(self):
        executor = ScriptedExecutor(defer_once={"t1", "t3"})
        engine = self.make(executor)
        tickets = [engine.submit(delta(f"t{i}"), now=0.0) for i in range(4)]
        engine.drain_round(0.25)
        assert engine.transient_deferrals == 2
        assert tickets[1].state == "pending" and tickets[3].state == "pending"
        engine.drain_round(0.5)
        # The deferred tickets re-drain before anything newer, still in
        # submission order.
        assert executor.batches[1] == ["t1", "t3"]
        assert all(t.state == "applied" for t in tickets)
        assert tickets[1].rounds_deferred == 1

    def test_deferred_tickets_precede_later_submissions(self):
        executor = ScriptedExecutor(defer_once={"t0"})
        engine = self.make(executor)
        engine.submit(delta("t0"), now=0.0)
        engine.drain_round(0.25)
        engine.submit(delta("t9"), now=0.3)
        engine.drain_round(0.5)
        assert executor.batches[1] == ["t0", "t9"]

    def test_failed_ticket_preserves_the_exception(self):
        executor = ScriptedExecutor(fail={"bad"})
        engine = self.make(executor)
        good = engine.submit(delta("good"), now=0.0)
        bad = engine.submit(delta("bad"), now=0.0)
        engine.drain_round(0.25)
        assert good.state == "applied" and bad.state == "failed"
        assert isinstance(bad.error, ControlPlaneError)
        assert bad.outcome.error.startswith("ControlPlaneError")
        assert engine.failed == 1 and engine.applied == 1

    def test_budget_caps_each_round(self):
        executor = ScriptedExecutor()
        engine = self.make(executor, budget=2)
        for i in range(5):
            engine.submit(delta(f"t{i}"), now=0.0)
        engine.drain_round(0.25)
        assert engine.applied == 2 and len(engine.queue) == 3
        assert engine.drain_until_idle(1.0) == 3
        assert engine.applied == 5

    def test_latency_measured_from_submission(self):
        engine = self.make(ScriptedExecutor())
        engine.submit(delta("t0", sla="gold"), now=0.0)
        engine.drain_round(0.25)
        assert engine.latency_by_class() == {"gold": 0.25}

    def test_stats_shape(self):
        engine = self.make(ScriptedExecutor())
        engine.submit(delta("t0"), now=0.0)
        engine.submit(delta("x", sla="platinum"), now=0.0)  # shed
        engine.drain_round(0.25)
        stats = engine.stats()
        assert stats["submitted"] == 2
        assert stats["applied"] == 1
        assert stats["shed"] == 1
        assert stats["windows"] == 1
        assert stats["queue_depth"] == 0
        assert stats["inflight"] == 0
