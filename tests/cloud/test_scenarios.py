"""FlexCloud scenarios at test scale: seeded determinism (including
across shard counts), coalesced-vs-naive window ratio at equal end
state, churn-under-chaos convergence, and the fleet's ground-truth
verification machinery."""

import json

from repro.cloud.scenarios import (
    SCENARIOS,
    CloudFleet,
    diurnal,
    flash_crowd,
    run_scenario,
)
from repro.faults.plan import ChannelFault, FaultPlan


def run(events, **kwargs):
    kwargs.setdefault("scenario", "test")
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("probes", 8)
    return run_scenario(events, **kwargs)


def as_json(report):
    return json.dumps(report.to_dict(), sort_keys=True)


class TestGenerators:
    def test_same_seed_same_script(self):
        for name, generator in SCENARIOS.items():
            assert generator(tenants=40, seed=3) == generator(tenants=40, seed=3), name

    def test_different_seed_different_script(self):
        assert flash_crowd(tenants=40, seed=3) != flash_crowd(tenants=40, seed=4)

    def test_scripts_are_time_sorted(self):
        for name, generator in SCENARIOS.items():
            events = generator(tenants=40, seed=3)
            times = [event.time for event in events]
            assert times == sorted(times), name

    def test_diurnal_includes_departures(self):
        events = diurnal(tenants=40, duration_s=20.0, seed=3)
        kinds = {event.kind for event in events}
        assert kinds == {"admit", "evict"}


class TestDeterminism:
    def test_same_seed_reports_byte_identical(self):
        events = flash_crowd(tenants=250, seed=11)
        first = run(events)
        second = run(events)
        assert as_json(first) == as_json(second)
        assert first.violations == 0
        assert first.applied == len(events)
        assert first.shed == 0

    def test_shard_count_does_not_change_the_report(self):
        events = flash_crowd(tenants=200, seed=5)
        baseline = run(events)
        for shards in (2, 3):
            sharded = run(events, shards=shards)
            assert as_json(sharded) == as_json(baseline), shards
            assert sharded.shards == shards  # kept on the object only


class TestCoalescing:
    def test_coalescing_beats_naive_at_equal_end_state(self):
        events = flash_crowd(tenants=400, ramp_s=4.0, seed=9)
        coalesced = run(events)
        naive = run(events, coalesce=False)
        assert naive.windows >= 5 * coalesced.windows
        assert naive.end_state_digest == coalesced.end_state_digest
        assert (naive.applied, naive.shed) == (coalesced.applied, coalesced.shed)
        assert coalesced.coalesce_ratio >= 5.0
        # Control-channel cost scales with windows, not tenants.
        assert coalesced.control_writes < naive.control_writes


class TestChaos:
    def test_churn_under_channel_loss_converges_clean(self):
        events = flash_crowd(tenants=150, seed=13)
        chaos = FaultPlan(
            seed=13, channel=ChannelFault(drop_probability=0.25, device_pattern="*")
        )
        report = run(events, chaos=chaos)
        assert report.violations == 0
        assert report.applied == len(events)
        # Dropped windows surface as transient deferrals, then retry.
        assert report.transient_deferrals > 0
        assert report.deferrals >= report.transient_deferrals


class TestFleetGroundTruth:
    def admit(self, fleet, tenants, value=1):
        by_device = {}
        for tenant in tenants:
            by_device.setdefault(fleet.home_of(tenant), {})[tenant] = value
        for device, entries in by_device.items():
            fleet.apply_entries(device, entries)

    def test_verify_clean_after_admission(self):
        fleet = CloudFleet(racks=2)
        self.admit(fleet, [str(i) for i in range(8)])
        violations, checked = fleet.verify()
        assert violations == 0 and checked == 8

    def test_verify_flags_phantom_and_missing_entries(self):
        fleet = CloudFleet(racks=2)
        tenants = [str(i) for i in range(6)]
        self.admit(fleet, tenants)
        client = fleet.net.controller.hub.client(fleet.homes[0])
        # A phantom entry no admitted tenant owns, and one admitted
        # tenant silently dropped from its home slice.
        victim = next(t for t in tenants if fleet.home_of(t) == fleet.homes[0])
        client.write_map_entries(
            "tenant_acl", {(0x0BADBEEF,): 1, (fleet.tenant_ip(victim),): 0}
        )
        violations, _ = fleet.verify()
        assert violations == 2

    def test_reconcile_repairs_divergence(self):
        fleet = CloudFleet(racks=2)
        tenants = [str(i) for i in range(6)]
        self.admit(fleet, tenants)
        client = fleet.net.controller.hub.client(fleet.homes[0])
        victim = next(t for t in tenants if fleet.home_of(t) == fleet.homes[0])
        client.write_map_entries(
            "tenant_acl", {(0x0BADBEEF,): 1, (fleet.tenant_ip(victim),): 0}
        )
        assert fleet.reconcile() == 2
        assert fleet.verify() == (0, 6)
        assert fleet.reconcile() == 0  # idempotent once converged

    def test_probe_checks_real_datapath_verdicts(self):
        fleet = CloudFleet(racks=2)
        gated = [t for t in (str(i) for i in range(12)) if fleet.home_of(t) == fleet.gate_device]
        admitted, evicted = gated[: len(gated) // 2], gated[len(gated) // 2 :]
        self.admit(fleet, admitted)
        violations, probes = fleet.probe(admitted + evicted)
        assert probes == len(gated)
        assert violations == 0

    def test_probe_catches_gate_desync(self):
        fleet = CloudFleet(racks=2)
        gated = [t for t in (str(i) for i in range(12)) if fleet.home_of(t) == fleet.gate_device]
        self.admit(fleet, gated)
        # Drop one admitted tenant's gate entry behind the registry's
        # back: its probe packet now drops while intent says forward.
        victim = gated[0]
        fleet.net.controller.hub.client(fleet.gate_device).write_map_entries(
            "tenant_acl", {(fleet.tenant_ip(victim),): 0}
        )
        violations, _ = fleet.probe(gated)
        assert violations == 1
