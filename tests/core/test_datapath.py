"""Fungible datapath handle tests."""

import pytest

from repro.core.datapath import FungibleDatapath
from repro.errors import ControlPlaneError


class TestStatus:
    def test_uncompiled_datapath_rejects_status(self):
        datapath = FungibleDatapath(name="d")
        with pytest.raises(ControlPlaneError, match="not compiled"):
            datapath.status()

    def test_status_fields(self, flexnet):
        status = flexnet.datapath.status()
        assert status.program_version == flexnet.program.version
        assert set(status.placement) == set(flexnet.program.element_names)
        assert status.estimated_latency_ns > 0

    def test_components_on_device(self, flexnet):
        components = flexnet.datapath.components_on("sw1")
        assert "acl" in components

    def test_device_of_component(self, flexnet):
        assert flexnet.datapath.device_of("acl") == "sw1"

    def test_device_of_unknown_component(self, flexnet):
        with pytest.raises(Exception):
            flexnet.datapath.device_of("ghost")
