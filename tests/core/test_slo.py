"""SLO translation tests."""

from repro.compiler.placement import ObjectiveKind
from repro.core.slo import BEST_EFFORT, Slo


class TestToObjective:
    def test_best_effort_is_balanced(self):
        assert BEST_EFFORT.to_objective().kind is ObjectiveKind.BALANCED

    def test_energy_preference(self):
        objective = Slo(prefer_energy=True).to_objective()
        assert objective.kind is ObjectiveKind.ENERGY

    def test_latency_bound_selects_latency_kind(self):
        objective = Slo(max_latency_ns=50_000.0).to_objective()
        assert objective.kind is ObjectiveKind.LATENCY
        assert objective.latency_sla_ns == 50_000.0

    def test_energy_with_latency_keeps_sla(self):
        objective = Slo(max_latency_ns=50_000.0, prefer_energy=True).to_objective()
        assert objective.kind is ObjectiveKind.ENERGY
        assert objective.latency_sla_ns == 50_000.0
