"""The unified execution-engine verb: ``net.engine(...)`` is the one
way to configure FlexPath/FlexBatch/flow-cache fleet-wide, the old
toggles survive only as DeprecationWarning shims, and no in-repo caller
uses them anymore (grep guard)."""

import re
import warnings
from pathlib import Path

import pytest

from repro.apps import base_infrastructure
from repro.core.flexnet import EngineStatus, FlexNet

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_net():
    net = FlexNet.standard()
    net.install(base_infrastructure())
    return net


class TestEngineVerb:
    def test_bare_call_is_a_pure_status_read(self):
        net = make_net()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            status = net.engine()
        assert isinstance(status, EngineStatus)
        assert status.devices > 0
        assert not status.fastpath and not status.batch
        # Reading did not configure anything.
        assert net.engine().to_dict() == status.to_dict()

    def test_fastpath_on_then_off(self):
        net = make_net()
        on = net.engine(fastpath=True)
        assert on.fastpath and on.fastpath_devices == on.devices
        assert on.flow_cache_devices == on.devices
        assert on.cache_capacity == 4096
        off = net.engine(fastpath=False)
        assert not off.fastpath and off.fastpath_devices == 0
        assert off.flow_cache_devices == 0 and off.cache_capacity == 0

    def test_batch_implies_fastpath(self):
        net = make_net()
        status = net.engine(batch=True)
        assert status.batch and status.fastpath

    def test_fastpath_off_drags_batching_down(self):
        net = make_net()
        net.engine(batch=True)
        status = net.engine(fastpath=False)
        assert not status.batch and status.batch_devices == 0

    def test_flow_cache_tuning(self):
        net = make_net()
        sized = net.engine(fastpath=True, cache_capacity=512)
        assert sized.cache_capacity == 512
        bare = net.engine(fastpath=True, flow_cache=False)
        assert bare.fastpath and bare.flow_cache_devices == 0

    def test_engine_config_survives_traffic(self):
        net = make_net()
        net.engine(batch=True)
        report = net.run_traffic(rate_pps=500, duration_s=0.2, extra_time_s=1.0)
        assert report.metrics.delivered > 0
        assert net.engine().batch


class TestEngineStatusReportable:
    def test_summary_full_fleet(self):
        status = EngineStatus(
            devices=3,
            fastpath_devices=3,
            batch_devices=0,
            flow_cache_devices=3,
            cache_capacity=4096,
        )
        assert status.summary() == (
            "engine [3 device(s)]: fastpath on, batch off, flow-cache on cap=4096"
        )

    def test_summary_partial_fleet_shows_counts(self):
        status = EngineStatus(devices=2, fastpath_devices=1, flow_cache_devices=1,
                              cache_capacity=4096)
        assert not status.fastpath  # partial is not "on"
        assert "fastpath on (1/2 device(s))" in status.summary()

    def test_to_dict_shape(self):
        data = EngineStatus(devices=1, fastpath_devices=1).to_dict()
        assert data == {
            "devices": 1,
            "fastpath": True,
            "batch": False,
            "fastpath_devices": 1,
            "batch_devices": 0,
            "flow_cache_devices": 0,
            "cache_capacity": 0,
        }


class TestDeprecationShims:
    def test_enable_fastpath_warns_and_delegates(self):
        net = make_net()
        with pytest.warns(DeprecationWarning, match="engine\\(fastpath=True"):
            net.enable_fastpath(cache_capacity=256)
        status = net.engine()
        assert status.fastpath and status.cache_capacity == 256

    def test_enable_batching_warns_and_delegates(self):
        net = make_net()
        with pytest.warns(DeprecationWarning, match="engine\\(batch=True"):
            net.enable_batching()
        assert net.engine().batch

    def test_scale_batch_kwarg_warns(self):
        net = make_net()
        with pytest.warns(DeprecationWarning, match="scale\\(batch=True\\) is deprecated"):
            net.scale(shards=2, backend="inline", rate_pps=200, duration_s=0.2, batch=True)
        assert net.engine().batch

    def test_no_in_repo_caller_uses_the_deprecated_verbs(self):
        """Everything shipped calls ``engine(...)``; the old spellings
        survive only in their definitions, their migration docs, and the
        shim tests above."""
        pattern = re.compile(
            r"(net|flexnet|ref_net)\.enable_(fastpath|batching)\(|\.scale\([^)]*batch=True"
        )
        allowed = {
            REPO_ROOT / "src" / "repro" / "core" / "flexnet.py",
            REPO_ROOT / "tests" / "core" / "test_engine_api.py",
        }
        offenders = []
        for root in ("src", "examples", "benchmarks", "tests"):
            for path in sorted((REPO_ROOT / root).rglob("*.py")):
                if path in allowed:
                    continue
                for number, line in enumerate(path.read_text().splitlines(), 1):
                    if pattern.search(line):
                        offenders.append(f"{path.relative_to(REPO_ROOT)}:{number}")
        assert not offenders, offenders
