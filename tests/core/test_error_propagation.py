"""Typed-error propagation through the narrowed span-cleanup handlers.

PR 6 narrowed the broad ``except Exception`` blocks in
``FlexNet.install``, ``FlexNetController.transition_to``, and
``DrpcFabric._call`` to typed errors: expected failures still end their
trace span with ``status="error"`` (install/update) or get wrapped in
:class:`RpcError` (dRPC), while genuine bugs now propagate unmasked
instead of being silently converted into domain errors.
"""

import pytest

from repro.apps.base import base_infrastructure
from repro.core.flexnet import FlexNet
from repro.errors import AnalysisError, RpcError
from repro.lang import builder as b
from repro.lang.builder import ProgramBuilder
from repro.lang.delta import parse_delta
from repro.runtime.drpc import DrpcFabric, RpcRegistry, ServiceSpec


def unboundable_program():
    program = ProgramBuilder("bad")
    program.header("h", a=8)
    program.function("f", [b.repeat(10_000, [b.repeat(100, [b.call("no_op")])])])
    program.apply("f")
    return program.build()


class TestInstallSpanCleanup:
    def test_rejected_install_raises_typed_and_marks_span_error(self):
        net = FlexNet.standard()
        net.observe.enable()
        with pytest.raises(AnalysisError):
            net.install(unboundable_program())
        spans = [s for s in net.observe.tracer.spans("install")]
        assert spans and spans[-1].status == "error"
        # the span stack is popped, so later spans nest correctly
        assert net.observe.tracer.current is None

    def test_rejected_install_without_observer_still_typed(self):
        net = FlexNet.standard()
        with pytest.raises(AnalysisError):
            net.install(unboundable_program())


class TestUpdateSpanCleanup:
    def test_strict_racy_update_raises_typed_and_marks_span_error(self):
        net = FlexNet.standard()
        net.observe.enable()
        net.install(base_infrastructure())
        # Shrinking a live map below occupancy is a RACE finding; strict
        # mode rejects the transition with a typed AnalysisError.
        delta = parse_delta("delta shrink { resize map flow_counts 1; }")
        with pytest.raises(AnalysisError):
            net.update(delta, strict=True)
        update_spans = net.observe.tracer.spans("update")
        assert update_spans and update_spans[-1].status == "error"
        assert net.observe.tracer.current is None

    def test_clean_update_after_failed_one_nests_fresh(self):
        net = FlexNet.standard()
        net.observe.enable()
        net.install(base_infrastructure())
        with pytest.raises(AnalysisError):
            net.update(
                parse_delta("delta shrink { resize map flow_counts 1; }"),
                strict=True,
            )
        outcome = net.update(parse_delta("delta ok { resize table acl 2048; }"))
        span = net.observe.tracer.find(outcome.span_id)
        assert span is not None and span.status == "ok"
        assert span.parent_id is None  # not adopted by the failed span


class TestDrpcHandlerNarrowing:
    @pytest.fixture
    def fabric(self):
        registry = RpcRegistry()
        return registry, DrpcFabric(registry)

    def test_expected_failures_wrapped_as_rpc_error(self, fabric):
        registry, drpc = fabric
        for name, exc in [
            ("val", ValueError("bad arg")),
            ("look", KeyError("missing")),
            ("arith", ZeroDivisionError()),
        ]:
            def boom(args, exc=exc):
                raise exc

            registry.register(ServiceSpec(name, "sw1", 8, boom))
            with pytest.raises(RpcError, match="handler failed"):
                drpc.call(name, (), caller_device="h1", now=1.0)
            assert drpc.stats[name].failures == 1

    def test_programming_bug_propagates_unmasked(self, fabric):
        registry, drpc = fabric

        def buggy(args):
            raise RuntimeError("this is a bug, not an RPC failure")

        registry.register(ServiceSpec("bug", "sw1", 8, buggy))
        with pytest.raises(RuntimeError, match="this is a bug"):
            drpc.call("bug", (), caller_device="h1", now=1.0)
