"""FlexNet facade tests."""

import pytest

from repro.core.flexnet import FlexNet
from repro.core.slo import Slo
from repro.errors import AnalysisError, ControlPlaneError
from repro.lang import builder as b
from repro.lang.builder import ProgramBuilder
from repro.lang.delta import parse_delta
from repro.apps.base import base_infrastructure
from repro.runtime.consistency import ConsistencyLevel


class TestTopologySugar:
    def test_standard_network_shape(self):
        net = FlexNet.standard()
        assert net.controller.datapath_path == ["h1", "nic1", "sw1", "nic2", "h2"]

    def test_switch_architectures(self):
        for arch in ("drmt", "rmt", "tiles"):
            net = FlexNet()
            net.add_switch("sw", arch=arch)
            assert net.controller.devices["sw"].target.arch in ("drmt", "rmt", "tiles")

    def test_unknown_arch_rejected(self):
        with pytest.raises(ControlPlaneError):
            FlexNet().add_switch("sw", arch="quantum")

    def test_legacy_devices_forward_only(self):
        net = FlexNet()
        net.add_host("h1")
        net.add_legacy("dumb")
        net.add_switch("sw1")
        net.add_host("h2")
        net.connect("h1", "dumb")
        net.connect("dumb", "sw1")
        net.connect("sw1", "h2")
        net.build_datapath("h1", "h2")
        net.install(base_infrastructure())
        assert "dumb" not in net.datapath.plan.placement.values()


class TestInstallAndTraffic:
    def test_install_and_run(self, flexnet):
        report = flexnet.run_traffic(rate_pps=500, duration_s=1.0)
        assert report.metrics.sent == 500
        assert report.metrics.delivered == 500
        assert report.metrics.loss_rate == 0.0

    def test_admission_rejects_unbounded(self):
        net = FlexNet.standard()
        program = ProgramBuilder("bad")
        program.header("h", a=8)
        program.function(
            "f", [b.repeat(10_000, [b.repeat(100, [b.call("no_op")])])]
        )
        program.apply("f")
        with pytest.raises(AnalysisError):
            net.install(program.build())

    def test_datapath_status(self, flexnet):
        status = flexnet.datapath.status()
        assert status.program_name == "infra"
        assert status.devices == ["sw1"]
        assert status.encodings["flow_counts"] == "stateful_table"

    def test_update_bumps_version(self, flexnet):
        before = flexnet.program.version
        flexnet.update(parse_delta("delta d { resize table acl 2048; }"))
        assert flexnet.program.version == before + 1

    def test_update_is_hitless(self, flexnet):
        flexnet.schedule(
            0.5,
            lambda: flexnet.update(parse_delta("delta d { resize table acl 2048; }")),
        )
        report = flexnet.run_traffic(rate_pps=1000, duration_s=1.5)
        assert report.metrics.lost_by_infrastructure == 0

    def test_consistency_checker_wired(self, flexnet):
        report = flexnet.run_traffic(
            rate_pps=100, duration_s=0.5, consistency_level=ConsistencyLevel.PER_PACKET_PATH
        )
        assert report.consistency is not None
        assert report.consistency.report().holds


class TestExportProgram:
    def test_live_program_exports_and_reparses(self, flexnet):
        from repro.lang.parser import parse_program

        flexnet.update(parse_delta("delta d { resize table acl 2048; }"))
        source = flexnet.export_program()
        reparsed = parse_program(source)
        assert reparsed.table("acl").size == 2048
        assert set(reparsed.element_names) == set(flexnet.program.element_names)


class TestSlo:
    def test_slo_objective_applied(self, base_program):
        net = FlexNet.standard()
        net.build_datapath("h1", "h2", slo=Slo(prefer_energy=True))
        net.install(base_program)
        # energy placement avoids the switch's high idle power
        assert set(net.datapath.plan.placement.values()) == {"nic1"}

    def test_latency_slo(self, base_program):
        net = FlexNet.standard()
        net.build_datapath("h1", "h2", slo=Slo(max_latency_ns=100_000.0))
        plan = net.install(base_program)
        assert plan.estimated_latency_ns <= 100_000.0
