"""Plan-artifact helper tests (DeviceSpec, CompilationPlan, ReconfigPlan)."""

import pytest

from repro.compiler.plan import (
    DeviceSpec,
    ReconfigPlan,
    ReconfigStep,
    StagePlan,
    StepKind,
)
from repro.compiler.placement import PlacementEngine
from repro.errors import CompilationError
from repro.targets import drmt_switch
from repro.targets.resources import ResourceVector

from tests.conftest import make_standard_slice


class TestDeviceSpec:
    def test_free_subtracts_used(self):
        spec = DeviceSpec("d", drmt_switch("d"), used=ResourceVector(sram_kb=100))
        assert spec.free["sram_kb"] == spec.target.capacity["sram_kb"] - 100

    def test_headroom(self):
        spec = DeviceSpec("d", drmt_switch("d"))
        assert spec.headroom(ResourceVector(sram_kb=1))
        assert not spec.headroom(ResourceVector(sram_kb=1e12))


class TestCompilationPlan:
    @pytest.fixture
    def plan(self, base_program, base_certificate):
        return PlacementEngine().compile(
            base_program, base_certificate, make_standard_slice()
        )

    def test_elements_on(self, plan):
        assert "acl" in plan.elements_on("sw1")
        assert plan.elements_on("h1") == []

    def test_device_of(self, plan):
        assert plan.device_of("acl") == "sw1"
        with pytest.raises(CompilationError):
            plan.device_of("ghost")

    def test_devices_used(self, plan):
        assert plan.devices_used == ["sw1"]


class TestReconfigPlan:
    def make_plan(self):
        steps = [
            ReconfigStep(kind=StepKind.ADD, element="a", device="sw1", cost_s=0.3),
            ReconfigStep(kind=StepKind.REMOVE, element="b", device="sw1", cost_s=0.2),
            ReconfigStep(
                kind=StepKind.MOVE, element="c", device="nic1",
                source_device="sw1", carries_state=True, cost_s=0.1,
            ),
        ]
        return ReconfigPlan(steps=steps, old_version=1, new_version=2)

    def test_counts(self):
        plan = self.make_plan()
        assert plan.added_elements == 1
        assert plan.removed_elements == 1
        assert plan.moved_elements == 1
        assert not plan.is_empty()

    def test_total_cost(self):
        assert self.make_plan().total_cost_s == pytest.approx(0.6)

    def test_makespan_charges_move_to_both_sides(self):
        plan = self.make_plan()
        # sw1 serializes 0.3 + 0.2 + half the move's cost; nic1 only 0.1
        assert plan.makespan_s() == pytest.approx(0.3 + 0.2 + 0.05)

    def test_empty_plan(self):
        plan = ReconfigPlan(steps=[], old_version=1, new_version=2)
        assert plan.is_empty()
        assert plan.makespan_s() == 0.0


class TestStagePlan:
    def test_stages_used_empty(self):
        assert StagePlan(assignments={}).stages_used == 0
