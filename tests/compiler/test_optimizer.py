"""Table merging and plan refinement tests."""

import pytest

from repro.compiler.optimizer import MergeCandidate, TableMerger, plan_score, refine
from repro.compiler.placement import Objective, ObjectiveKind, PlacementEngine
from repro.lang import builder as b
from repro.lang.analyzer import certify
from repro.apps.base import standard_builder
from repro.targets import drmt_switch

from tests.conftest import make_standard_slice


@pytest.fixture
def merger():
    return TableMerger()


class TestCandidates:
    def test_exact_adjacent_pair_found(self, base_program, merger):
        candidates = merger.candidates(base_program)
        assert MergeCandidate(first="l2", second="l3") not in candidates  # l3 is lpm
        # l2 follows acl but acl is ternary; build a clean program below

    def test_ternary_tables_excluded(self, base_program, merger):
        for candidate in merger.candidates(base_program):
            assert not base_program.table(candidate.first).is_ternary
            assert not base_program.table(candidate.second).is_ternary

    def exactpair_program(self):
        program = standard_builder("mergeable")
        program.action("nop", [b.call("no_op")])
        program.action("fwd", [b.call("set_port", "p")], params=[("p", "u16")])
        program.table("first", keys=["ethernet.dst"], actions=["nop"], size=64,
                      default="nop")
        program.table("second", keys=["ipv4.dst"], actions=["fwd", "nop"], size=128,
                      default="nop")
        program.apply("first", "second")
        return program.build()

    def test_clean_pair_is_candidate(self, merger):
        program = self.exactpair_program()
        assert merger.candidates(program) == [MergeCandidate("first", "second")]

    def test_write_then_match_conflict_excluded(self, merger):
        program = standard_builder("conflicted")
        program.action("set_dst", [b.assign("ipv4.dst", 1)])
        program.action("nop", [b.call("no_op")])
        program.table("first", keys=["ethernet.dst"], actions=["set_dst"], size=4,
                      default="set_dst")
        program.table("second", keys=["ipv4.dst"], actions=["nop"], size=4,
                      default="nop")
        program.apply("first", "second")
        assert merger.candidates(program.build()) == []


class TestEvaluation:
    def test_cross_product_memory_growth(self, merger):
        program = TestCandidates().exactpair_program()
        evaluation = merger.evaluate(
            program, MergeCandidate("first", "second"), drmt_switch("d")
        )
        assert evaluation.entries_after == 64 * 128
        assert evaluation.memory_growth > 10
        assert evaluation.latency_saving_ns > 0
        assert evaluation.worthwhile


class TestApply:
    def test_merged_program_validates_and_replaces_pair(self, merger):
        program = TestCandidates().exactpair_program()
        merged = merger.apply(program, MergeCandidate("first", "second"))
        assert merged.has_table("first__x__second")
        assert not merged.has_table("first")
        assert not merged.has_table("second")
        table = merged.table("first__x__second")
        assert table.size == 64 * 128
        assert len(table.keys) == 2
        # composite actions exist
        assert any("__then__" in a for a in table.actions)
        # apply has one step where two used to be
        from repro.lang import ir

        tables_applied = [s.table for s in merged.apply if isinstance(s, ir.ApplyTable)]
        assert tables_applied.count("first__x__second") == 1

    def test_composite_default_action(self, merger):
        program = TestCandidates().exactpair_program()
        merged = merger.apply(program, MergeCandidate("first", "second"))
        default = merged.table("first__x__second").default_action
        assert default is not None
        assert default.action == "nop__then__nop"

    def test_merged_program_certifies_cheaper_lookup(self, merger):
        program = TestCandidates().exactpair_program()
        merged = merger.apply(program, MergeCandidate("first", "second"))
        before = certify(program).max_packet_ops
        after = certify(merged).max_packet_ops
        assert after <= before


class TestRefine:
    def test_refine_never_worsens(self, base_program, base_certificate):
        slice_ = make_standard_slice()
        objective = Objective(ObjectiveKind.ENERGY)
        engine = PlacementEngine()  # balanced initial placement
        plan = engine.compile(base_program, base_certificate, slice_)
        refined = refine(plan, slice_, objective)
        assert plan_score(refined, objective) <= plan_score(plan, objective)

    def test_refine_moves_toward_energy_optimum(self, base_program, base_certificate):
        slice_ = make_standard_slice()
        objective = Objective(ObjectiveKind.ENERGY)
        plan = PlacementEngine().compile(base_program, base_certificate, slice_)
        refined = refine(plan, slice_, objective)
        optimum = PlacementEngine(objective).compile(
            base_program, base_certificate, make_standard_slice()
        )
        assert plan_score(refined, objective) <= plan_score(plan, objective)
        assert plan_score(refined, objective) <= plan_score(optimum, objective) * 1.5


class TestRefineErrorDiscipline:
    """refine() absorbs *placement infeasibility* when relaxing a pin —
    nothing else. A genuine engine fault must propagate, not be eaten by
    the local-search loop (the bug: a bare ``except Exception``)."""

    def test_engine_fault_propagates(
        self, base_program, base_certificate, monkeypatch
    ):
        slice_ = make_standard_slice()
        objective = Objective(ObjectiveKind.ENERGY)
        plan = PlacementEngine().compile(base_program, base_certificate, slice_)

        def broken_compile(self, *args, **kwargs):
            raise RuntimeError("injected engine fault")

        monkeypatch.setattr(PlacementEngine, "compile", broken_compile)
        with pytest.raises(RuntimeError, match="injected engine fault"):
            refine(plan, slice_, objective)

    def test_placement_infeasibility_is_absorbed(
        self, base_program, base_certificate, monkeypatch
    ):
        from repro.errors import PlacementError

        slice_ = make_standard_slice()
        objective = Objective(ObjectiveKind.ENERGY)
        plan = PlacementEngine().compile(base_program, base_certificate, slice_)

        def infeasible_compile(self, *args, **kwargs):
            raise PlacementError("no feasible placement under pins")

        monkeypatch.setattr(PlacementEngine, "compile", infeasible_compile)
        refined = refine(plan, slice_, objective)
        assert refined is plan  # every relaxation infeasible: keep the plan
