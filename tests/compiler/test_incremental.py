"""Incremental recompilation tests (E7 foundations)."""

import pytest

from repro.compiler.incremental import (
    IncrementalCompiler,
    diff_programs,
    full_recompile_plan,
)
from repro.compiler.placement import PlacementEngine
from repro.compiler.plan import StepKind
from repro.lang.delta import Delta, RemoveElements, SetTableSize, apply_delta, parse_delta

from tests.conftest import make_standard_slice

ADD_DELTA = """
delta add_guard {
  add action g_drop() { mark_drop(); }
  add table guard { key: ipv4.src; actions: g_drop; size: 128; default: g_drop; }
  insert guard before acl;
}
"""


@pytest.fixture
def deployed(base_program, base_certificate):
    slice_ = make_standard_slice()
    engine = PlacementEngine()
    plan = engine.compile(base_program, base_certificate, slice_)
    return engine, plan, slice_


class TestDiff:
    def test_identical_programs_empty_diff(self, base_program):
        changes = diff_programs(base_program, base_program)
        assert changes.added == frozenset()
        assert changes.removed == frozenset()
        assert changes.modified == frozenset()
        assert not changes.apply_changed

    def test_added_element_detected(self, base_program):
        new_program, _ = apply_delta(base_program, parse_delta(ADD_DELTA))
        changes = diff_programs(base_program, new_program)
        assert changes.added == frozenset({"guard"})
        assert changes.apply_changed

    def test_removed_element_detected(self, base_program):
        delta = Delta(name="d", ops=(RemoveElements(pattern="l2", kind="table"),))
        new_program, _ = apply_delta(base_program, delta)
        changes = diff_programs(base_program, new_program)
        assert changes.removed == frozenset({"l2"})

    def test_modified_element_detected(self, base_program):
        delta = Delta(name="d", ops=(SetTableSize(pattern="acl", size=9999),))
        new_program, _ = apply_delta(base_program, delta)
        changes = diff_programs(base_program, new_program)
        assert changes.modified == frozenset({"acl"})


class TestIncrementalRecompile:
    def test_addition_moves_nothing(self, base_program, deployed):
        engine, plan, slice_ = deployed
        new_program, changes = apply_delta(base_program, parse_delta(ADD_DELTA))
        result = IncrementalCompiler(engine).recompile(plan, new_program, slice_, changes)
        assert result.reconfig.moved_elements == 0
        assert result.reconfig.added_elements == 1
        # survivors stayed put
        for element, device in plan.placement.items():
            assert result.new_plan.placement[element] == device

    def test_removal_produces_remove_steps(self, base_program, deployed):
        engine, plan, slice_ = deployed
        delta = Delta(name="d", ops=(RemoveElements(pattern="l2", kind="table"),))
        new_program, changes = apply_delta(base_program, delta)
        result = IncrementalCompiler(engine).recompile(plan, new_program, slice_, changes)
        kinds = [s.kind for s in result.reconfig.steps]
        assert StepKind.REMOVE in kinds
        assert result.reconfig.removed_elements == 1

    def test_resize_charges_entry_updates(self, base_program, deployed):
        engine, plan, slice_ = deployed
        delta = Delta(name="d", ops=(SetTableSize(pattern="acl", size=2048),))
        new_program, changes = apply_delta(base_program, delta)
        result = IncrementalCompiler(engine).recompile(plan, new_program, slice_, changes)
        retier = [s for s in result.reconfig.steps if s.kind is StepKind.RETIER]
        assert len(retier) == 1
        assert retier[0].element == "acl"

    def test_makespan_reflects_concurrency(self, base_program, deployed):
        engine, plan, slice_ = deployed
        new_program, changes = apply_delta(base_program, parse_delta(ADD_DELTA))
        result = IncrementalCompiler(engine).recompile(plan, new_program, slice_, changes)
        assert result.reconfig.makespan_s() <= result.reconfig.total_cost_s + 1e-9

    def test_make_before_break_ordering(self, base_program, deployed):
        engine, plan, slice_ = deployed
        combined = Delta(
            name="swap",
            ops=parse_delta(ADD_DELTA).ops
            + (RemoveElements(pattern="l2", kind="table"),),
        )
        new_program, changes = apply_delta(base_program, combined)
        result = IncrementalCompiler(engine).recompile(plan, new_program, slice_, changes)
        kinds = [s.kind for s in result.reconfig.steps]
        assert kinds.index(StepKind.ADD) < kinds.index(StepKind.REMOVE)

    def test_versions_recorded(self, base_program, deployed):
        engine, plan, slice_ = deployed
        new_program, changes = apply_delta(base_program, parse_delta(ADD_DELTA))
        result = IncrementalCompiler(engine).recompile(plan, new_program, slice_, changes)
        assert result.reconfig.old_version == base_program.version
        assert result.reconfig.new_version == new_program.version

    def test_parser_change_gets_parser_step(self, base_program, deployed):
        engine, plan, slice_ = deployed
        delta = parse_delta(
            "delta d { add transition on ipv4.proto == 17 extract tcp; }"
        )
        new_program, changes = apply_delta(base_program, delta)
        result = IncrementalCompiler(engine).recompile(plan, new_program, slice_, changes)
        assert any(s.kind is StepKind.PARSER for s in result.reconfig.steps)


class TestFullRecompileBaseline:
    def test_full_recompile_never_beats_incremental_moves(self, base_program, deployed):
        engine, plan, slice_ = deployed
        new_program, changes = apply_delta(base_program, parse_delta(ADD_DELTA))
        incremental = IncrementalCompiler(engine).recompile(
            plan, new_program, slice_, changes
        )
        full = full_recompile_plan(plan, new_program, make_standard_slice())
        assert incremental.reconfig.moved_elements <= full.reconfig.moved_elements
