"""Placement engine tests."""

import pytest

from repro.compiler.placement import (
    NetworkSlice,
    Objective,
    ObjectiveKind,
    PlacementEngine,
)
from repro.compiler.plan import DeviceSpec
from repro.errors import PlacementError
from repro.lang import builder as b
from repro.lang.analyzer import certify
from repro.apps.base import standard_builder
from repro.targets import drmt_switch, host

from tests.conftest import make_standard_slice


class TestBasicPlacement:
    def test_all_elements_placed(self, base_program, base_certificate, standard_slice):
        plan = PlacementEngine().compile(base_program, base_certificate, standard_slice)
        assert set(plan.placement) == set(base_program.element_names)

    def test_balanced_prefers_switch(self, base_program, base_certificate, standard_slice):
        plan = PlacementEngine().compile(base_program, base_certificate, standard_slice)
        assert set(plan.placement.values()) == {"sw1"}

    def test_map_colocated_with_accessor(self, base_program, base_certificate, standard_slice):
        plan = PlacementEngine().compile(base_program, base_certificate, standard_slice)
        assert plan.placement["flow_counts"] == plan.placement["count_flow"]

    def test_estimates_populated(self, base_program, base_certificate, standard_slice):
        plan = PlacementEngine().compile(base_program, base_certificate, standard_slice)
        assert plan.estimated_latency_ns > 0
        assert plan.estimated_energy_nj > 0
        assert plan.estimated_idle_power_w > 0

    def test_rmt_device_gets_stage_plan(self, base_program, base_certificate):
        slice_ = make_standard_slice("rmt_static")
        plan = PlacementEngine().compile(base_program, base_certificate, slice_)
        if plan.placement["acl"] == "sw1":
            assert "sw1" in plan.stage_plans

    def test_encodings_selected_per_device(self, base_program, base_certificate, standard_slice):
        plan = PlacementEngine().compile(base_program, base_certificate, standard_slice)
        assert "flow_counts" in plan.encodings


class TestVerticalDistribution:
    def big_function_program(self):
        program = standard_builder("vert")
        program.map("state", keys=["ipv4.dst"], value_type="u32", max_entries=1024)
        program.action("nop", [b.call("no_op")])
        program.table("route", keys=["ipv4.dst"], actions=["nop"], size=256)
        program.function(
            "crunch",
            [
                b.let("x", "u32", b.map_get("state", "ipv4.dst")),
                b.repeat(200, [b.assign("x", b.binop("+", "x", 1))]),
                b.map_put("state", "ipv4.dst", "x"),
            ],
        )
        program.apply("route", "crunch")
        return program.build()

    def test_oversized_function_lands_off_switch(self, standard_slice):
        program = self.big_function_program()
        certificate = certify(program)
        plan = PlacementEngine().compile(program, certificate, standard_slice)
        crunch_device = plan.placement["crunch"]
        assert standard_slice.device(crunch_device).target.tier in ("host", "nic")
        # the table still prefers the switch
        assert plan.placement["route"] == "sw1"

    def test_monotone_path_order(self, standard_slice):
        """Elements later in apply order never land upstream of earlier ones."""
        program = self.big_function_program()
        certificate = certify(program)
        plan = PlacementEngine().compile(program, certificate, standard_slice)
        order = {spec.name: i for i, spec in enumerate(standard_slice.devices)}
        assert order[plan.placement["route"]] <= order[plan.placement["crunch"]]


class TestObjectives:
    def test_energy_objective_picks_low_idle_tier(
        self, base_program, base_certificate
    ):
        plan = PlacementEngine(Objective(ObjectiveKind.ENERGY)).compile(
            base_program, base_certificate, make_standard_slice()
        )
        # NIC has the lowest idle power among feasible devices
        devices = set(plan.placement.values())
        assert devices == {"nic1"}

    def test_latency_sla_violation_raises(self, base_program, base_certificate):
        engine = PlacementEngine(
            Objective(ObjectiveKind.LATENCY, latency_sla_ns=10.0)
        )
        with pytest.raises(PlacementError, match="SLA"):
            engine.compile(base_program, base_certificate, make_standard_slice())

    def test_latency_objective_differs_from_energy(self, base_program, base_certificate):
        latency_plan = PlacementEngine(Objective(ObjectiveKind.LATENCY)).compile(
            base_program, base_certificate, make_standard_slice()
        )
        energy_plan = PlacementEngine(Objective(ObjectiveKind.ENERGY)).compile(
            base_program, base_certificate, make_standard_slice()
        )
        assert latency_plan.estimated_latency_ns <= energy_plan.estimated_latency_ns
        energy_score = energy_plan.estimated_idle_power_w
        assert energy_score <= latency_plan.estimated_idle_power_w


class TestPinning:
    def test_pins_honoured(self, base_program, base_certificate, standard_slice):
        pins = {name: "nic1" for name in base_program.element_names}
        plan = PlacementEngine().compile(
            base_program, base_certificate, standard_slice, pinned=pins
        )
        assert set(plan.placement.values()) == {"nic1"}

    def test_infeasible_pin_silently_unpinned(self, base_program, base_certificate):
        slice_ = make_standard_slice()
        # pin everything to a device that cannot admit the elements: use a
        # tiny switch by exhausting it via 'used'
        slice_.devices[2].used = slice_.devices[2].target.capacity * 0.9999
        pins = {name: "sw1" for name in base_program.element_names}
        plan = PlacementEngine().compile(
            base_program, base_certificate, slice_, pinned=pins
        )
        assert set(plan.placement.values()) != {"sw1"}

    def test_partial_pin_conflict_ignored(self, base_program, base_certificate, standard_slice):
        # count_flow and flow_counts are one cluster; pinning them to
        # different devices is contradictory -> cluster placed normally.
        pins = {"count_flow": "nic1", "flow_counts": "h1"}
        plan = PlacementEngine().compile(
            base_program, base_certificate, standard_slice, pinned=pins
        )
        assert plan.placement["count_flow"] == plan.placement["flow_counts"]


class TestGcLoop:
    def test_gc_hook_invoked_and_retry_succeeds(self, base_program, base_certificate):
        slice_ = make_standard_slice()
        # every device completely full
        for spec in slice_.devices:
            spec.used = spec.target.capacity

        calls = []

        def gc_hook(network_slice):
            calls.append(1)
            for spec in network_slice.devices:
                spec.used = spec.target.capacity * 0.0
            return True

        plan = PlacementEngine().compile(
            base_program, base_certificate, slice_, gc_hook=gc_hook
        )
        assert calls
        assert plan.iterations == 2

    def test_gc_that_frees_nothing_gives_up(self, base_program, base_certificate):
        slice_ = make_standard_slice()
        for spec in slice_.devices:
            spec.used = spec.target.capacity

        with pytest.raises(PlacementError):
            PlacementEngine().compile(
                base_program, base_certificate, slice_, gc_hook=lambda s: False
            )

    def test_no_hook_fails_immediately(self, base_program, base_certificate):
        slice_ = make_standard_slice()
        for spec in slice_.devices:
            spec.used = spec.target.capacity
        with pytest.raises(PlacementError) as excinfo:
            PlacementEngine().compile(base_program, base_certificate, slice_)
        assert "cannot place" in str(excinfo.value)


class TestDiagnostics:
    def test_failure_message_names_deficits(self, base_certificate, base_program):
        slice_ = NetworkSlice(
            devices=[DeviceSpec("sw", drmt_switch("sw", sram_mb=0.01, tcam_mb=0.001))]
        )
        with pytest.raises(PlacementError) as excinfo:
            PlacementEngine().compile(base_program, base_certificate, slice_)
        message = str(excinfo.value)
        assert "sw" in message
        assert "deficit" in message or "not admitted" in message
