"""State encoding selection and conversion tests (E13 foundations)."""

import pytest

from repro.compiler.state_encoding import (
    ASSOCIATIVE,
    convert,
    decode,
    encode,
    select_encoding,
)
from repro.errors import MigrationError
from repro.lang import builder as b
from repro.lang.ir import MapDef
from repro.lang.maps import MapSnapshot
from repro.lang.types import BitsType
from repro.targets import drmt_switch, host, rmt_switch, smartnic, tiled_switch
from repro.targets.base import StateEncoding


def map_def():
    return MapDef(
        name="m",
        key_fields=(b.field("ipv4.src"),),
        value_type=BitsType(64),
        max_entries=1024,
    )


def snapshot(count=10):
    return MapSnapshot(
        map_name="m",
        entries=tuple(((i,), i * 100) for i in range(1, count + 1)),
        version=1,
    )


class TestSelection:
    def test_rmt_uses_registers(self):
        assert select_encoding(map_def(), rmt_switch("d")) is StateEncoding.REGISTER

    def test_drmt_uses_stateful_tables(self):
        assert select_encoding(map_def(), drmt_switch("d")) is StateEncoding.STATEFUL_TABLE

    def test_host_uses_kernel_maps(self):
        assert select_encoding(map_def(), host("d")) is StateEncoding.KERNEL_MAP

    def test_nic_uses_soc_memory(self):
        assert select_encoding(map_def(), smartnic("d")) is StateEncoding.SOC_MEMORY

    def test_tiles_use_stateful_tables(self):
        assert select_encoding(map_def(), tiled_switch("d")) is StateEncoding.STATEFUL_TABLE


class TestEncodeDecode:
    @pytest.mark.parametrize("encoding", sorted(ASSOCIATIVE, key=lambda e: e.value))
    def test_associative_roundtrip_lossless(self, encoding):
        original = snapshot(50)
        encoded = encode(original, encoding)
        decoded = decode(encoded, version=1)
        assert decoded.as_dict() == original.as_dict()

    def test_register_encoding_hashes_keys(self):
        encoded = encode(snapshot(10), StateEncoding.REGISTER, register_slots=4096)
        assert encoded.register_slots == 4096
        assert len(encoded) == 10  # no collisions at this density
        # keys become indexes < slots
        assert all(key[0] < 4096 for key, _ in encoded.entries)

    def test_register_encoding_collides_when_dense(self):
        encoded = encode(snapshot(500), StateEncoding.REGISTER, register_slots=16)
        assert encoded.collisions > 0
        assert len(encoded) <= 16


class TestConversion:
    def test_associative_to_associative_lossless(self):
        arrived, report = convert(
            snapshot(20), StateEncoding.STATEFUL_TABLE, StateEncoding.KERNEL_MAP
        )
        assert report.lossless
        assert report.entries_out == 20
        assert arrived.as_dict() == snapshot(20).as_dict()

    def test_associative_to_register_not_lossless_flagged(self):
        _, report = convert(
            snapshot(20), StateEncoding.STATEFUL_TABLE, StateEncoding.REGISTER,
            register_slots=4096,
        )
        assert not report.lossless

    def test_register_overflow_raises(self):
        with pytest.raises(MigrationError, match="register slots"):
            convert(
                snapshot(100), StateEncoding.STATEFUL_TABLE, StateEncoding.REGISTER,
                register_slots=16,
            )

    def test_register_source_carries_index_keys(self):
        arrived, report = convert(
            snapshot(10), StateEncoding.REGISTER, StateEncoding.STATEFUL_TABLE,
            register_slots=1024,
        )
        assert report.entries_out == 10
        # keys are now indexes, not original sources
        assert set(arrived.as_dict().values()) == {i * 100 for i in range(1, 11)}
