"""Bin-packing primitive tests."""

from repro.compiler.binpack import Bin, best_fit_decreasing, first_fit
from repro.targets.resources import ResourceVector


def make_bins(count=3, sram=100.0):
    return [Bin(name=f"b{i}", capacity=ResourceVector(sram_kb=sram)) for i in range(count)]


class TestFirstFit:
    def test_fills_in_order(self):
        bins = make_bins()
        items = [("a", ResourceVector(sram_kb=60)), ("b", ResourceVector(sram_kb=60))]
        assignment = first_fit(items, bins)
        assert assignment == {"a": "b0", "b": "b1"}

    def test_second_item_backfills_without_monotone(self):
        bins = make_bins()
        items = [
            ("a", ResourceVector(sram_kb=90)),
            ("b", ResourceVector(sram_kb=90)),
            ("c", ResourceVector(sram_kb=10)),
        ]
        assignment = first_fit(items, bins)
        assert assignment["c"] == "b0"  # backfill allowed

    def test_monotone_prevents_backfill(self):
        bins = make_bins()
        items = [
            ("a", ResourceVector(sram_kb=90)),
            ("b", ResourceVector(sram_kb=90)),
            ("c", ResourceVector(sram_kb=10)),
        ]
        assignment = first_fit(items, bins, monotone=True)
        assert assignment["c"] == "b1"  # floor advanced past b0

    def test_infeasible_returns_none(self):
        bins = make_bins(count=1)
        items = [("a", ResourceVector(sram_kb=200))]
        assert first_fit(items, bins) is None

    def test_empty_items(self):
        assert first_fit([], make_bins()) == {}


class TestBestFitDecreasing:
    def test_big_items_placed_first(self):
        bins = make_bins(count=2)
        items = [
            ("small", ResourceVector(sram_kb=10)),
            ("big", ResourceVector(sram_kb=95)),
            ("medium", ResourceVector(sram_kb=80)),
        ]
        assignment = best_fit_decreasing(items, bins)
        assert assignment is not None
        # big and medium must be in different bins; small squeezes in
        assert assignment["big"] != assignment["medium"]

    def test_prefers_tightest_bin(self):
        bins = make_bins(count=2)
        bins[0].add("pre", ResourceVector(sram_kb=70))
        assignment = best_fit_decreasing([("x", ResourceVector(sram_kb=20))], bins)
        assert assignment["x"] == "b0"  # 10 slack beats 80 slack

    def test_infeasible_returns_none(self):
        bins = make_bins(count=1, sram=10)
        assert best_fit_decreasing([("x", ResourceVector(sram_kb=50))], bins) is None

    def test_no_bins(self):
        assert best_fit_decreasing([("x", ResourceVector(sram_kb=1))], []) is None
        assert best_fit_decreasing([], []) == {}

    def test_weight_kind_ordering(self):
        bins = [
            Bin(name=f"b{i}", capacity=ResourceVector(sram_kb=100, alus=8))
            for i in range(2)
        ]
        items = [
            ("a", ResourceVector(sram_kb=30, alus=5)),
            ("b", ResourceVector(sram_kb=60, alus=1)),
        ]
        assignment = best_fit_decreasing(items, bins, weight_kind="alus")
        assert assignment is not None


class TestFreeHeadroom:
    def test_overpacked_bin_reports_zero_free(self):
        bin_ = Bin(name="b0", capacity=ResourceVector(sram_kb=10))
        bin_.add("x", ResourceVector(sram_kb=25))  # over-packed
        assert dict(bin_.free) == {}

    def test_unexpected_failure_propagates(self):
        """Only ResourceError (negative headroom) is absorbed; a broken
        capacity object must surface, not read as an empty vector."""
        import pytest

        bin_ = Bin(name="b0", capacity=None)  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            bin_.free
