"""Architecture-fungibility rule tests."""

from repro.compiler.fungibility import (
    StagePlanner,
    device_feasible,
    element_conflicts,
    fungibility_score,
    ordered_elements,
)
from repro.compiler.plan import StagePlan
from repro.lang.analyzer import ElementProfile
from repro.targets import drmt_switch, rmt_switch
from repro.targets.resources import ResourceVector


class TestOrderedElements:
    def test_apply_order_preserved(self, base_program):
        order = ordered_elements(base_program)
        assert order.index("acl") < order.index("l2") < order.index("l3")
        assert order.index("l3") < order.index("count_flow")

    def test_maps_appended(self, base_program):
        order = ordered_elements(base_program)
        assert "flow_counts" in order

    def test_unapplied_elements_still_listed(self, base_program):
        from dataclasses import replace

        stripped = replace(base_program, apply=())
        order = ordered_elements(stripped)
        assert "acl" in order and "count_flow" in order


class TestConflicts:
    def test_shared_map_conflicts(self, base_program, base_certificate):
        conflicts = element_conflicts(base_program, base_certificate)
        # l2 and l3 both call forward -> no map conflict, but acl/l2 don't
        # share fields; count_flow and ttl_guard share no fields either.
        flat = {frozenset(pair) for pair in conflicts}
        # l2 and l3 share 'forward' writes? They match different fields.
        # The guaranteed conflict: acl matches ipv4.src/dst and count_flow
        # reads ipv4.src/dst.
        assert frozenset({"acl", "count_flow"}) in flat

    def test_disjoint_elements_do_not_conflict(self, base_program, base_certificate):
        conflicts = element_conflicts(base_program, base_certificate)
        assert ("l2", "ttl_guard") not in conflicts
        assert ("ttl_guard", "l2") not in conflicts


class TestStagePlanner:
    def make_demands(self, names, sram=10.0):
        return {name: ResourceVector(sram_kb=sram) for name in names}

    def test_independent_elements_share_stage(self):
        target = rmt_switch("d")
        planner = StagePlanner(target)
        plan = planner.plan(["a", "b"], self.make_demands(["a", "b"]), set())
        assert plan.assignments["a"] == plan.assignments["b"] == 0

    def test_conflicting_elements_in_increasing_stages(self):
        target = rmt_switch("d")
        planner = StagePlanner(target)
        plan = planner.plan(["a", "b"], self.make_demands(["a", "b"]), {("a", "b")})
        assert plan.assignments["b"] > plan.assignments["a"]

    def test_capacity_forces_next_stage(self):
        target = rmt_switch("d", stage_sram_kb=15.0)
        planner = StagePlanner(target)
        plan = planner.plan(
            ["a", "b"], self.make_demands(["a", "b"], sram=10.0), set()
        )
        assert plan.assignments["b"] == plan.assignments["a"] + 1

    def test_out_of_stages_returns_none(self):
        target = rmt_switch("d", stages=2)
        planner = StagePlanner(target)
        names = ["a", "b", "c"]
        conflicts = {("a", "b"), ("b", "c"), ("a", "c")}
        assert planner.plan(names, self.make_demands(names), conflicts) is None

    def test_stages_used(self):
        plan = StagePlan(assignments={"a": 0, "b": 3})
        assert plan.stages_used == 4


class TestDeviceFeasible:
    def test_pooled_feasible(self, base_program, base_certificate):
        result = device_feasible(
            drmt_switch("d"), list(base_program.element_names), base_certificate, base_program
        )
        assert result is True

    def test_rmt_returns_stage_plan(self, base_program, base_certificate):
        result = device_feasible(
            rmt_switch("d"), list(base_program.element_names), base_certificate, base_program
        )
        assert isinstance(result, StagePlan)

    def test_inadmissible_element_fails(self, base_certificate, base_program):
        # ttl_guard etc fit, but a giant function cannot go on RMT
        profile = ElementProfile(name="huge", kind="function", max_ops=5000)
        certificate = base_certificate
        certificate.profiles["huge"] = profile
        try:
            result = device_feasible(
                rmt_switch("d"), ["huge"], certificate, base_program
            )
            assert result is False
        finally:
            del certificate.profiles["huge"]

    def test_capacity_exhaustion_fails(self, base_program, base_certificate):
        tiny = drmt_switch("d", sram_mb=0.001, tcam_mb=0.001)
        result = device_feasible(
            tiny, list(base_program.element_names), base_certificate, base_program
        )
        assert result is False

    def test_already_used_counts(self, base_program, base_certificate):
        target = drmt_switch("d")
        nearly_full = target.capacity * 0.999
        result = device_feasible(
            target,
            list(base_program.element_names),
            base_certificate,
            base_program,
            already_used=nearly_full,
        )
        assert result is False


class TestFungibilityScore:
    def probe(self, entries=2048):
        return ElementProfile(
            name="p", kind="table", max_ops=2, table_entries=entries, key_bits=32
        )

    def test_empty_device_scores_one(self):
        assert fungibility_score(drmt_switch("d"), [], self.probe()) == 1.0

    def test_full_device_scores_zero(self):
        target = drmt_switch("d")
        monster = ElementProfile(
            name="r", kind="table", max_ops=2,
            table_entries=3_000_000, key_bits=64,
        )
        assert fungibility_score(target, [monster], self.probe()) == 0.0

    def test_stage_local_fragmentation_discounts(self):
        """The same aggregate occupancy that a dRMT pool absorbs can be
        unreachable on RMT because no single stage has room — the §3.3
        fungibility ordering."""
        rmt = rmt_switch("d")
        drmt = drmt_switch("d", sram_mb=rmt.capacity["sram_kb"] / 1024.0)
        # Resident set: many mid-size tables spreading across stages.
        residents = [
            ElementProfile(
                name=f"r{i}", kind="table", max_ops=2,
                table_entries=20_000, key_bits=64,
            )
            for i in range(10)
        ]
        probe = ElementProfile(
            name="p", kind="table", max_ops=2, table_entries=150_000, key_bits=64
        )
        rmt_score = fungibility_score(rmt, residents, probe)
        drmt_score = fungibility_score(drmt, residents, probe)
        assert drmt_score >= rmt_score
