"""FlexScope end-to-end: determinism, zero-cost-when-disabled, and the
span-tree shape of a faulted transition."""

from __future__ import annotations

import pytest

from repro.apps import base_infrastructure, firewall_delta
from repro.core.flexnet import FlexNet
from repro.faults import ChannelFault, DeviceCrash, FaultPlan, run_chaos
from repro.runtime.consistency import ConsistencyLevel

RATE_PPS = 400.0
DURATION_S = 1.0
UPDATE_AT_S = 0.4


def observed_run(enable: bool = True):
    """The canonical scenario: install base, inject the firewall delta
    mid-traffic, with FlexScope on (or off, for baselines). Returns
    ``(net, traffic_report)``."""
    from repro.simulator.packet import reset_packet_ids

    reset_packet_ids()  # identical cut-over draws across runs
    net = FlexNet.standard()
    if enable:
        net.observe.enable(sample_every=32)
    net.install(base_infrastructure())
    delta = firewall_delta()
    net.schedule(UPDATE_AT_S, lambda: net.update(delta))
    report = net.run_traffic(
        rate_pps=RATE_PPS,
        duration_s=DURATION_S,
        consistency_level=ConsistencyLevel.PER_PACKET_PER_DEVICE,
        extra_time_s=2.0,
    )
    return net, report


class TestDeterminism:
    def test_two_runs_export_byte_identical_observability(self):
        first, _ = observed_run()
        second, _ = observed_run()
        assert first.observe.metrics.to_prometheus() == second.observe.metrics.to_prometheus()
        assert first.observe.tracer.render_tree() == second.observe.tracer.render_tree()
        assert first.observe.tracer.to_dict() == second.observe.tracer.to_dict()
        # The full façade export (profiler wall columns excluded) too.
        assert first.observe.to_dict() == second.observe.to_dict()

    def test_chaos_reports_with_spans_are_byte_identical(self):
        def chaos():
            return run_chaos(
                base_infrastructure(),
                firewall_delta(),
                FaultPlan(
                    seed=11,
                    crashes=(DeviceCrash(device="sw1", at_s=2.2, restart_after_s=1.0),),
                    channel=ChannelFault(drop_probability=0.01),
                ),
                rate_pps=RATE_PPS,
                duration_s=4.0,
                update_at_s=2.0,
                observe=True,
            )

        assert chaos().to_dict() == chaos().to_dict()


class TestZeroCostWhenDisabled:
    def test_no_component_holds_an_observer_until_enable(self):
        net = FlexNet.standard()
        net.install(base_infrastructure())
        controller = net.controller
        assert controller.observer is None
        assert controller.orchestrator.observer is None
        assert controller.drpc.observer is None
        assert controller.telemetry.observer is None
        assert controller.engine.profiler is None
        assert all(d.observer is None for d in controller.devices.values())

    def test_enable_then_disable_unwires_everything(self):
        net = FlexNet.standard()
        net.observe.enable()
        net.observe.disable()
        controller = net.controller
        assert controller.observer is None
        assert controller.orchestrator.observer is None
        assert controller.drpc.observer is None
        assert controller.telemetry.observer is None
        assert controller.engine.profiler is None
        assert all(d.observer is None for d in controller.devices.values())
        net.install(base_infrastructure())
        assert net.observe.tracer.total_spans == 0

    def test_disabled_run_matches_observed_run_outcomes(self):
        """Tracing must not perturb the simulation: same traffic, same
        transition, same consistency verdict, byte-for-byte."""
        _, plain_report = observed_run(enable=False)
        _, traced_report = observed_run(enable=True)
        assert plain_report.metrics.to_dict() == traced_report.metrics.to_dict()
        assert (
            plain_report.consistency.report().violations
            == traced_report.consistency.report().violations
        )

    def test_enable_requires_bound_controller(self):
        from repro.observe import Observer

        with pytest.raises(RuntimeError):
            Observer().enable()


class TestSpanTreeShape:
    @pytest.fixture(scope="class")
    def chaos_report(self):
        return run_chaos(
            base_infrastructure(),
            firewall_delta(),
            FaultPlan(
                seed=11,
                crashes=(DeviceCrash(device="sw1", at_s=2.2, restart_after_s=1.0),),
                channel=ChannelFault(drop_probability=0.01),
            ),
            rate_pps=RATE_PPS,
            duration_s=4.0,
            update_at_s=2.0,
            observe=True,
        )

    @staticmethod
    def by_kind(spans, kind):
        return [s for s in spans if s["kind"] == kind]

    def test_update_transition_window_hierarchy(self, chaos_report):
        spans = chaos_report.spans
        updates = self.by_kind(spans, "update")
        assert len(updates) == 1
        transitions = self.by_kind(spans, "transition")
        assert len(transitions) == 1
        assert transitions[0]["parent_id"] == updates[0]["span_id"]
        windows = self.by_kind(spans, "window")
        assert windows, "every reconfig window must be reconstructable"
        for window in windows:
            assert window["parent_id"] == transitions[0]["span_id"]
            assert window["attrs"]["mode"] in ("hitless", "reflash")
            event_names = [e["name"] for e in window["events"]]
            assert "window_open" in event_names

    def test_window_matches_journal_transaction(self, chaos_report):
        windows = self.by_kind(chaos_report.spans, "window")
        window_devices = {w["attrs"]["device"] for w in windows}
        journal_devices = {entry["device"] for entry in chaos_report.journal}
        assert journal_devices <= window_devices

    def test_install_span_is_a_root(self, chaos_report):
        installs = self.by_kind(chaos_report.spans, "install")
        assert len(installs) == 1
        assert installs[0]["parent_id"] is None

    def test_sampled_packets_cover_both_versions(self, chaos_report):
        packets = self.by_kind(chaos_report.spans, "packet")
        versions = {p["attrs"]["version"] for p in packets if p["attrs"]["device"] == "sw1"}
        assert versions == {1, 2}

    def test_fault_events_surface(self, chaos_report):
        kinds = {e["kind"] for e in chaos_report.events}
        assert "crash" in kinds
        # The crash lands inside the window: the run resumes afterwards.
        assert chaos_report.resumed == 1


class TestTelemetryEventFeed:
    def test_ingest_event_reaches_tracer(self):
        """The pre-FlexScope collector buffered events nobody ever read;
        with an observer wired they surface in the global feed."""
        net = FlexNet.standard()
        net.observe.enable()
        net.controller.telemetry.ingest_event("crash", "sw1", 1.25, detail="mid-delta")
        events = list(net.observe.tracer.events)
        assert len(events) == 1
        assert events[0].name == "crash"
        assert events[0].attrs == {"device": "sw1", "detail": "mid-delta"}

    def test_ingest_event_without_observer_stays_local(self):
        net = FlexNet.standard()
        net.controller.telemetry.ingest_event("crash", "sw1", 1.25)
        assert net.controller.telemetry.total_events == 1
        assert net.observe.tracer.total_events == 0
