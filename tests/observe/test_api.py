"""The FlexScope-era FlexNet facade: outcome objects, keyword-only
consistency, and the TrafficReport.digests deprecation."""

from __future__ import annotations

import pytest

from repro.apps import base_infrastructure, firewall_delta
from repro.core.flexnet import FlexNet, InstallOutcome
from repro.runtime.consistency import ConsistencyLevel


class TestInstallOutcome:
    def test_install_returns_outcome_proxying_the_plan(self):
        net = FlexNet.standard()
        outcome = net.install(base_infrastructure())
        assert isinstance(outcome, InstallOutcome)
        # Legacy plan-reading callers are unaffected by the proxy.
        assert outcome.placement == outcome.plan.placement
        assert outcome.estimated_latency_ns == outcome.plan.estimated_latency_ns
        assert "installed" in outcome.summary()
        assert outcome.to_dict()["program"] == "infra"

    def test_span_ids_absent_when_disabled_present_when_enabled(self):
        net = FlexNet.standard()
        disabled = net.install(base_infrastructure())
        assert disabled.span_id is None and disabled.trace_id is None

        observed = FlexNet.standard()
        observed.observe.enable()
        enabled = observed.install(base_infrastructure())
        assert enabled.span_id is not None
        span = observed.observe.tracer.find(enabled.span_id)
        assert span is not None and span.kind == "install"


class TestUpdateOutcome:
    def test_update_outcome_carries_span_ids_when_enabled(self):
        net = FlexNet.standard()
        net.observe.enable()
        net.install(base_infrastructure())
        outcome = net.update(firewall_delta())
        assert outcome.span_id is not None
        span = net.observe.tracer.find(outcome.span_id)
        assert span is not None and span.kind == "update"
        assert outcome.to_dict()["span_id"] == outcome.span_id
        assert "transition" in outcome.summary()

    def test_update_outcome_span_ids_none_when_disabled(self):
        net = FlexNet.standard()
        net.install(base_infrastructure())
        outcome = net.update(firewall_delta())
        assert outcome.span_id is None and outcome.trace_id is None

    def test_consistency_is_keyword_only(self):
        net = FlexNet.standard()
        net.install(base_infrastructure())
        with pytest.raises(TypeError):
            net.update(firewall_delta(), ConsistencyLevel.PER_PACKET_PATH)


class TestTrafficReportTelemetry:
    def test_digests_property_is_deprecated_alias(self):
        net = FlexNet.standard()
        net.install(base_infrastructure())
        report = net.run_traffic(rate_pps=100.0, duration_s=0.2)
        with pytest.deprecated_call():
            legacy = report.digests
        assert legacy == report.telemetry.total_digests

    def test_report_is_reportable(self):
        net = FlexNet.standard()
        net.install(base_infrastructure())
        report = net.run_traffic(
            rate_pps=100.0,
            duration_s=0.2,
            consistency_level=ConsistencyLevel.PER_PACKET_PER_DEVICE,
        )
        data = report.to_dict()
        assert data["telemetry"]["total_digests"] == report.telemetry.total_digests
        assert data["metrics"]["sent"] == report.metrics.sent
        assert "sent" in report.summary()
