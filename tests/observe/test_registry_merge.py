"""MetricsRegistry merge / detach tests (FlexScale coordinator path)."""

from __future__ import annotations

import pytest

from repro.observe.metrics import MetricsRegistry


def _shard_registry(shard: int, packets: int) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "flexnet_device_packets_total", device=f"s{shard}", version=1
    ).set(packets)
    registry.counter("flexnet_telemetry_digests_total").set(packets * 2)
    registry.gauge("flexnet_scale_clock_s", shard=shard).set(1.5)
    registry.histogram("flexnet_window_s", shard=shard).observe(0.002)
    return registry


class TestMerge:
    def test_counters_add_and_disjoint_series_copy(self):
        merged = MetricsRegistry()
        merged.merge(_shard_registry(0, 100)).merge(_shard_registry(1, 50))
        assert (
            merged.counter("flexnet_telemetry_digests_total").value == 300
        )
        assert (
            merged.counter(
                "flexnet_device_packets_total", device="s0", version=1
            ).value
            == 100
        )
        assert (
            merged.counter(
                "flexnet_device_packets_total", device="s1", version=1
            ).value
            == 50
        )

    def test_histograms_add_bucketwise(self):
        left = MetricsRegistry()
        left.histogram("flexnet_window_s").observe(0.002)
        right = MetricsRegistry()
        right.histogram("flexnet_window_s").observe(0.2)
        left.merge(right)
        histogram = left.histogram("flexnet_window_s")
        assert histogram.count == 2
        assert histogram.total == 0.202

    def test_merge_order_does_not_change_export(self):
        parts = [_shard_registry(shard, 10 * (shard + 1)) for shard in range(3)]
        forward = MetricsRegistry()
        for part in parts:
            forward.merge(part)
        backward = MetricsRegistry()
        for part in reversed(parts):
            backward.merge(part)
        assert forward.to_prometheus() == backward.to_prometheus()
        assert forward.to_json() == backward.to_json()

    def test_kind_conflict_rejected(self):
        left = MetricsRegistry()
        left.counter("flexnet_thing")
        right = MetricsRegistry()
        right.gauge("flexnet_thing")
        with pytest.raises(ValueError):
            left.merge(right)

    def test_histogram_bucket_mismatch_rejected(self):
        left = MetricsRegistry()
        left.histogram("flexnet_window_s", buckets=(0.1, 1.0)).observe(0.05)
        right = MetricsRegistry()
        right.histogram("flexnet_window_s", buckets=(0.2, 2.0)).observe(0.05)
        with pytest.raises(ValueError):
            left.merge(right)


class TestDetach:
    def test_detach_freezes_collected_values(self):
        registry = MetricsRegistry()
        live = {"count": 5}

        def collector(target: MetricsRegistry) -> None:
            target.counter("flexnet_live_total").set(live["count"])

        registry.register_collector(collector)
        registry.collect()
        registry.detach_collectors()
        live["count"] = 999
        assert "flexnet_live_total 5" in registry.to_prometheus()
