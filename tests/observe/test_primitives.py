"""Unit tests for the FlexScope primitives: tracer, metrics, profiler,
and the Reportable protocol."""

from __future__ import annotations

import io
import json

import pytest

from repro.observe import (
    MetricsRegistry,
    Profiler,
    Reportable,
    Tracer,
    emit,
    render_span_tree,
)


class TestTracer:
    def test_explicit_parenting(self):
        tracer = Tracer()
        root = tracer.start_span("update", "update", 1.0)
        child = tracer.start_span("window@sw1", "window", 1.0, parent=root)
        assert child.parent_id == root.span_id
        assert tracer.children_of(root) == [child]

    def test_implicit_parenting_via_stack(self):
        tracer = Tracer()
        with tracer.span("outer", "update", 0.0) as outer:
            inner = tracer.start_span("inner", "window", 0.5)
        assert inner.parent_id == outer.span_id
        assert tracer.current is None

    def test_span_ids_are_monotonic(self):
        tracer = Tracer()
        spans = [tracer.start_span(f"s{i}", "t", float(i)) for i in range(5)]
        assert [s.span_id for s in spans] == [1, 2, 3, 4, 5]

    def test_ring_bounds_memory_but_counts_everything(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            span = tracer.start_span(f"s{i}", "t", float(i))
            tracer.end_span(span, float(i))
        assert len(tracer.spans()) == 4
        assert tracer.total_spans == 10

    def test_events_attach_to_span_and_global_feed(self):
        tracer = Tracer()
        span = tracer.start_span("window", "window", 0.0)
        tracer.event("commit", 1.5, span=span, device="sw1")
        assert span.events[0].name == "commit"
        assert list(tracer.events)[0].attrs == {"device": "sw1"}
        assert tracer.total_events == 1

    def test_sink_mirrors_closed_spans_as_jsonl(self):
        sink = io.StringIO()
        tracer = Tracer(sink=sink)
        span = tracer.start_span("s", "t", 0.0, device="sw1")
        tracer.end_span(span, 2.0)
        line = json.loads(sink.getvalue().strip())
        assert line["name"] == "s" and line["attrs"] == {"device": "sw1"}

    def test_error_status_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom", "update", 0.0) as span:
                raise ValueError("no")
        assert span.status == "error" and span.end == 0.0

    def test_render_tree_matches_dict_renderer(self):
        tracer = Tracer()
        with tracer.span("update", "update", 0.0, to_version=2):
            window = tracer.start_span("window@sw1", "window", 0.0, device="sw1")
            tracer.event("window_open", 0.0, span=window)
            tracer.end_span(window, 0.4)
        tree = tracer.render_tree()
        assert "[update] update" in tree
        assert "  [window] window@sw1" in tree
        assert "* window_open" in tree
        assert render_span_tree(tracer.to_dict()["spans"]) == tree


class TestMetricsRegistry:
    def test_counter_and_gauge_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("pkts_total", device="sw1").inc(3)
        registry.counter("pkts_total", device="sw1").inc()
        registry.gauge("depth", device="sw1").set(7)
        assert registry.counter("pkts_total", device="sw1").value == 4
        assert registry.gauge("depth", device="sw1").value == 7

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("m", a="1", b="2").inc()
        assert registry.counter("m", b="2", a="1").value == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.cumulative() == [1, 2, 3]  # cumulative, +Inf last

    def test_prometheus_export_is_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("b_total", device="sw1").inc()
        registry.counter("a_total", device="nic1", version="2").inc(5)
        text = registry.to_prometheus()
        assert text.index("a_total") < text.index("b_total")
        assert 'a_total{device="nic1",version="2"} 5' in text
        assert registry.to_prometheus() == text

    def test_collector_runs_at_export(self):
        registry = MetricsRegistry()
        pulls = []
        registry.register_collector(lambda r: pulls.append(r.gauge("live").set(1)))
        registry.to_prometheus()
        registry.to_dict()
        assert len(pulls) == 2


class TestProfiler:
    def test_phase_accounting(self):
        profiler = Profiler()
        with profiler.phase("compile"):
            pass
        with profiler.phase("compile"):
            pass
        profiler.add_sim("transition_window", 0.47)
        profiler.add_ops("compile", 12)
        stats = profiler.to_dict(include_wall=False)
        assert stats["compile"]["calls"] == 2
        assert stats["compile"]["ops"] == 12
        assert stats["transition_window"]["sim_s"] == pytest.approx(0.47)
        # Deterministic form excludes wall-clock columns entirely.
        assert "wall_s" not in stats["compile"]

    def test_render_table(self):
        profiler = Profiler()
        with profiler.phase("compile"):
            pass
        table = profiler.render()
        assert "phase" in table and "compile" in table


class TestReportable:
    def test_protocol_is_runtime_checkable(self):
        class Good:
            def summary(self) -> str:
                return "ok"

            def to_dict(self) -> dict:
                return {"ok": True}

        assert isinstance(Good(), Reportable)
        assert not isinstance(object(), Reportable)

    def test_emit_text_and_json(self):
        class Good:
            def summary(self) -> str:
                return "ok"

            def to_dict(self) -> dict:
                return {"ok": True}

        text = io.StringIO()
        emit(Good(), stream=text)
        assert text.getvalue() == "ok\n"
        as_json = io.StringIO()
        emit(Good(), as_json=True, stream=as_json)
        assert json.loads(as_json.getvalue()) == {"ok": True}

    def test_toolchain_reports_conform(self):
        from repro.analysis.report import Report
        from repro.control.controller import TransitionOutcome
        from repro.core.flexnet import InstallOutcome, TrafficReport
        from repro.faults.chaos import ChaosReport
        from repro.simulator.metrics import RunMetrics

        for cls in (Report, TransitionOutcome, InstallOutcome, TrafficReport,
                    ChaosReport, RunMetrics):
            assert issubclass(cls, Reportable), cls
