"""Shared fixtures for the FlexNet test suite."""

from __future__ import annotations

import pytest

from repro.apps.base import base_infrastructure
from repro.compiler.placement import NetworkSlice
from repro.compiler.plan import DeviceSpec
from repro.core.flexnet import FlexNet
from repro.lang.analyzer import certify
from repro.targets import drmt_switch, host, rmt_switch, smartnic


@pytest.fixture
def base_program():
    """The standard infrastructure program (validated)."""
    return base_infrastructure()


@pytest.fixture
def base_certificate(base_program):
    return certify(base_program)


def make_standard_slice(switch="drmt"):
    """host - NIC - switch - NIC - host DeviceSpec path."""
    factories = {
        "drmt": lambda: drmt_switch("sw1"),
        "rmt": lambda: rmt_switch("sw1", runtime_capable=True),
        "rmt_static": lambda: rmt_switch("sw1", runtime_capable=False),
    }
    return NetworkSlice(
        devices=[
            DeviceSpec("h1", host("h1"), ingress_link_ns=0.0),
            DeviceSpec("nic1", smartnic("nic1")),
            DeviceSpec("sw1", factories[switch]()),
            DeviceSpec("nic2", smartnic("nic2")),
            DeviceSpec("h2", host("h2")),
        ]
    )


@pytest.fixture
def standard_slice():
    return make_standard_slice()


@pytest.fixture
def flexnet(base_program):
    """A standard FlexNet with the base program installed."""
    net = FlexNet.standard()
    net.install(base_program)
    return net
