"""Base infrastructure program tests."""

from repro.apps.base import STANDARD_HEADERS, base_infrastructure, standard_builder
from repro.lang.analyzer import certify
from repro.simulator.packet import Verdict, make_packet
from repro.simulator.pipeline_exec import ProgramInstance


class TestBaseProgram:
    def test_elements_present(self, base_program):
        assert base_program.has_table("acl")
        assert base_program.has_table("l2")
        assert base_program.has_table("l3")
        assert base_program.has_function("count_flow")
        assert base_program.has_function("ttl_guard")
        assert base_program.has_map("flow_counts")

    def test_certifiable(self, base_program):
        certificate = certify(base_program)
        assert certificate.max_packet_ops < 200

    def test_sizes_configurable(self):
        program = base_infrastructure(acl_size=7, l2_size=8, l3_size=9, flow_entries=10)
        assert program.table("acl").size == 7
        assert program.table("l2").size == 8
        assert program.table("l3").size == 9
        assert program.map("flow_counts").max_entries == 10

    def test_forwards_normal_traffic(self, base_program):
        instance = ProgramInstance(base_program)
        packet = make_packet(1, 2)
        instance.process(packet)
        assert packet.verdict is Verdict.FORWARD
        assert packet.meta["egress_port"] == 1

    def test_standard_builder_parses_tcp(self):
        program = standard_builder("x").build()
        assert program.parser.headers_extracted == ("ethernet", "ipv4", "tcp")

    def test_standard_headers_shape(self):
        assert STANDARD_HEADERS["ipv4"]["src"] == 32
        assert STANDARD_HEADERS["tcp"]["flags"] == 8
