"""Congestion-control customization tests (vertical distribution)."""


from repro.apps.cc import dctcp_delta, hpcc_delta, remove_cc_delta, swap_cc_delta
from repro.compiler.placement import PlacementEngine
from repro.lang.analyzer import certify
from repro.lang.delta import apply_delta
from repro.simulator.packet import make_packet
from repro.simulator.pipeline_exec import ProgramInstance

from tests.conftest import make_standard_slice


class TestDctcp:
    def test_marks_above_threshold(self, base_program):
        program, _ = apply_delta(base_program, dctcp_delta(ecn_threshold=20))
        instance = ProgramInstance(program)
        congested = make_packet(1, 2)
        congested.meta["queue_depth"] = 50
        instance.process(congested)
        assert congested.meta.get("ecn") == 1

        calm = make_packet(1, 2)
        calm.meta["queue_depth"] = 5
        instance.process(calm)
        assert calm.meta.get("ecn", 0) == 0

    def test_window_decreases_on_ecn(self, base_program):
        program, _ = apply_delta(base_program, dctcp_delta(ecn_threshold=20))
        instance = ProgramInstance(program)
        # grow window with unmarked packets
        for _ in range(16):
            packet = make_packet(1, 9)
            packet.meta["queue_depth"] = 0
            instance.process(packet)
        grown = instance.maps.state("cc_windows").get((9,))
        assert grown == 16
        # one marked packet crushes it
        marked = make_packet(1, 9)
        marked.meta["queue_depth"] = 99
        instance.process(marked)
        after = instance.maps.state("cc_windows").get((9,))
        assert after < grown


class TestHpcc:
    def test_precise_depth_carried(self, base_program):
        program, _ = apply_delta(base_program, hpcc_delta())
        instance = ProgramInstance(program)
        packet = make_packet(1, 2)
        packet.meta["queue_depth"] = 37
        instance.process(packet)
        assert packet.meta["int_qdepth"] == 37


class TestVerticalPlacement:
    def test_mark_on_switch_window_on_host_tier(self, base_program):
        program, _ = apply_delta(base_program, dctcp_delta())
        certificate = certify(program)
        slice_ = make_standard_slice()
        plan = PlacementEngine().compile(program, certificate, slice_)
        assert plan.placement["ecn_mark"] == "sw1"
        window_tier = slice_.device(plan.placement["cc_window"]).target.tier
        assert window_tier in ("nic", "host")


class TestSwap:
    def test_swap_replaces_algorithm(self, base_program):
        program, _ = apply_delta(base_program, dctcp_delta())
        swapped, changes = apply_delta(program, swap_cc_delta("hpcc"))
        assert swapped.has_function("ecn_mark")
        # hpcc marker writes int_qdepth; dctcp's does not
        instance = ProgramInstance(swapped)
        packet = make_packet(1, 2)
        packet.meta["queue_depth"] = 5
        instance.process(packet)
        assert "int_qdepth" in packet.meta

    def test_remove_cleans_up(self, base_program):
        program, _ = apply_delta(base_program, dctcp_delta())
        removed, changes = apply_delta(program, remove_cc_delta())
        assert not removed.has_function("ecn_mark")
        assert not removed.has_map("cc_windows")
        assert {"ecn_mark", "cc_window", "cc_windows"} <= set(changes.removed)
