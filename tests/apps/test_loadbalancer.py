"""Load balancer app tests."""

import pytest

from repro.apps.loadbalancer import LoadBalancerManager, load_balancer_delta
from repro.control.p4runtime import P4RuntimeClient
from repro.lang.delta import apply_delta
from repro.runtime.device import DeviceRuntime
from repro.simulator.packet import make_packet
from repro.simulator.pipeline_exec import ProgramInstance
from repro.targets import drmt_switch


@pytest.fixture
def balanced(base_program):
    program, changes = apply_delta(base_program, load_balancer_delta(path_count=4))
    return program, changes


class TestDelta:
    def test_elements_added(self, balanced):
        _, changes = balanced
        assert {"lb_load", "lb_paths", "lb_select"} <= set(changes.added)

    def test_invalid_path_count(self):
        with pytest.raises(ValueError):
            load_balancer_delta(path_count=0)


class TestSelection:
    def test_buckets_within_range(self, balanced):
        program, _ = balanced
        instance = ProgramInstance(program)
        buckets = set()
        for i in range(64):
            packet = make_packet(i, 1, src_port=i)
            instance.process(packet)
            buckets.add(packet.meta["lb_bucket"])
        assert buckets <= {0, 1, 2, 3}
        assert len(buckets) >= 3  # hash spreads

    def test_same_flow_same_bucket(self, balanced):
        program, _ = balanced
        instance = ProgramInstance(program)
        first = make_packet(5, 6, src_port=1000)
        second = make_packet(5, 6, src_port=1000)
        instance.process(first)
        instance.process(second)
        assert first.meta["lb_bucket"] == second.meta["lb_bucket"]

    def test_load_counters_track(self, balanced):
        program, _ = balanced
        device = DeviceRuntime("sw1", drmt_switch("sw1"))
        device.install(program)
        manager = LoadBalancerManager(P4RuntimeClient(device), path_count=4)
        for i in range(40):
            device.process(make_packet(i, 1, src_port=i * 7), 0.0)
        loads = manager.path_loads()
        assert sum(loads.values()) == 40

    def test_imbalance_metric(self, balanced):
        program, _ = balanced
        device = DeviceRuntime("sw1", drmt_switch("sw1"))
        device.install(program)
        manager = LoadBalancerManager(P4RuntimeClient(device), path_count=4)
        assert manager.imbalance() == 1.0  # no traffic yet
        for i in range(100):
            device.process(make_packet(i, 1, src_port=i * 13), 0.0)
        assert manager.imbalance() < 3.0  # hash keeps it roughly even


class TestPathRules:
    def test_destination_port_override(self, balanced):
        program, _ = balanced
        device = DeviceRuntime("sw1", drmt_switch("sw1"))
        device.install(program)
        manager = LoadBalancerManager(P4RuntimeClient(device))
        manager.set_destination_port(0x0A000099, 7)
        packet = make_packet(1, 0x0A000099)
        device.process(packet, 0.0)
        assert packet.meta["egress_port"] == 7
