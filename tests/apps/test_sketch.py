"""Count-min sketch app tests."""

import pytest

from repro.apps.sketch import SketchReader, count_min_delta, row_map_name
from repro.control.p4runtime import P4RuntimeClient
from repro.lang.delta import apply_delta
from repro.runtime.device import DeviceRuntime
from repro.simulator.packet import make_packet
from repro.simulator.pipeline_exec import ProgramInstance
from repro.targets import drmt_switch


@pytest.fixture
def sketched(base_program):
    program, changes = apply_delta(base_program, count_min_delta(rows=3, width=512))
    return program, changes


class TestDelta:
    def test_rows_and_updater_added(self, sketched):
        program, changes = sketched
        assert {"cms_row0", "cms_row1", "cms_row2", "cms_update"} <= set(changes.added)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            count_min_delta(rows=0)
        with pytest.raises(ValueError):
            count_min_delta(width=1)


class TestCounting:
    def test_estimate_at_least_true_count(self, sketched):
        program, _ = sketched
        device = DeviceRuntime("sw1", drmt_switch("sw1"))
        device.install(program)
        reader = SketchReader(P4RuntimeClient(device), rows=3, width=512)
        for _ in range(25):
            device.process(make_packet(777, 1), 0.0)
        for _ in range(3):
            device.process(make_packet(888, 1), 0.0)
        assert reader.estimate(777) >= 25
        assert reader.estimate(888) >= 3
        # count-min never underestimates, and with this density the
        # estimate should be close
        assert reader.estimate(777) <= 25 + 3

    def test_heavy_keys(self, sketched):
        program, _ = sketched
        device = DeviceRuntime("sw1", drmt_switch("sw1"))
        device.install(program)
        reader = SketchReader(P4RuntimeClient(device), rows=3, width=512)
        for _ in range(50):
            device.process(make_packet(111, 1), 0.0)
        device.process(make_packet(222, 1), 0.0)
        heavy = reader.heavy_keys([111, 222, 333], threshold=10)
        assert heavy == [111]

    def test_total_updates(self, sketched):
        program, _ = sketched
        instance = ProgramInstance(program)
        for i in range(7):
            instance.process(make_packet(i, 1))
        row0 = instance.maps.state(row_map_name(0))
        assert sum(value for _, value in row0.items()) == 7

    def test_unknown_key_estimates_low(self, sketched):
        program, _ = sketched
        device = DeviceRuntime("sw1", drmt_switch("sw1"))
        device.install(program)
        reader = SketchReader(P4RuntimeClient(device), rows=3, width=512)
        assert reader.estimate(0xDEAD) == 0
