"""Rate limiter app tests: meters end to end."""

import pytest

from repro.apps.ratelimit import RateLimiter, rate_limit_delta
from repro.control.p4runtime import P4RuntimeClient
from repro.lang.delta import apply_delta
from repro.runtime.device import DeviceRuntime
from repro.simulator.packet import Verdict, make_packet
from repro.targets import drmt_switch

POLICED = 0x0A000033
FREE = 0x0A000044


@pytest.fixture
def limited(base_program):
    program, _ = apply_delta(base_program, rate_limit_delta())
    device = DeviceRuntime("sw1", drmt_switch("sw1"))
    device.install(program)
    limiter = RateLimiter(P4RuntimeClient(device))
    return device, limiter


class TestRateLimiting:
    def test_conforming_traffic_passes(self, limited):
        device, limiter = limited
        limiter.police(POLICED, rate_pps=100.0, burst_packets=10.0)
        for index in range(5):  # well under the rate
            packet = make_packet(POLICED, 1)
            device.process(packet, index * 0.1)
            assert packet.verdict is Verdict.FORWARD

    def test_excess_traffic_dropped(self, limited):
        device, limiter = limited
        limiter.police(POLICED, rate_pps=10.0, burst_packets=5.0)
        verdicts = []
        for _ in range(20):  # a burst at t=0: only the bucket passes
            packet = make_packet(POLICED, 1)
            device.process(packet, 0.0)
            verdicts.append(packet.verdict)
        assert verdicts.count(Verdict.FORWARD) == 5
        assert verdicts.count(Verdict.DROP) == 15

    def test_unpoliced_sources_unaffected(self, limited):
        device, limiter = limited
        limiter.police(POLICED, rate_pps=1.0, burst_packets=1.0)
        for _ in range(10):
            packet = make_packet(FREE, 1)
            device.process(packet, 0.0)
            assert packet.verdict is Verdict.FORWARD

    def test_live_rerate_via_p4runtime(self, limited):
        """Changing a customer's contracted rate is pure element-level
        churn: no program change, no transition window."""
        device, limiter = limited
        limiter.police(POLICED, rate_pps=5.0, burst_packets=5.0)
        version_before = device.active_program.version
        limiter.police(POLICED, rate_pps=1000.0, burst_packets=1000.0)
        assert device.active_program.version == version_before
        dropped = 0
        for _ in range(50):
            packet = make_packet(POLICED, 1)
            device.process(packet, 1.0)
            dropped += packet.verdict is Verdict.DROP
        assert dropped == 0  # generous new rate

    def test_meter_stats_via_p4runtime(self, limited):
        device, limiter = limited
        limiter.police(POLICED, rate_pps=10.0, burst_packets=2.0)
        for _ in range(6):
            device.process(make_packet(POLICED, 1), 0.0)
        green, red = limiter.stats()
        assert green == 2 and red == 4

    def test_policy_registry(self, limited):
        _, limiter = limited
        limiter.police(POLICED, rate_pps=10.0)
        assert limiter.policed_sources == {POLICED: 10.0}
