"""NAT app tests."""

import pytest

from repro.apps.nat import NatManager, nat_delta
from repro.control.p4runtime import P4RuntimeClient
from repro.lang.delta import apply_delta
from repro.runtime.device import DeviceRuntime
from repro.simulator.packet import make_packet
from repro.targets import drmt_switch

PRIVATE = 0x0A000005
PUBLIC = 0xC0A80001


@pytest.fixture
def natted(base_program):
    program, _ = apply_delta(base_program, nat_delta())
    device = DeviceRuntime("sw1", drmt_switch("sw1"))
    device.install(program)
    return device, NatManager(P4RuntimeClient(device))


class TestNat:
    def test_egress_rewrite(self, natted):
        device, nat = natted
        nat.bind(PRIVATE, PUBLIC)
        packet = make_packet(PRIVATE, 0x08080808)
        device.process(packet, 0.0)
        assert packet.get_field("ipv4", "src") == PUBLIC

    def test_ingress_rewrite(self, natted):
        device, nat = natted
        nat.bind(PRIVATE, PUBLIC)
        packet = make_packet(0x08080808, PUBLIC)
        device.process(packet, 0.0)
        assert packet.get_field("ipv4", "dst") == PRIVATE

    def test_unbound_traffic_untouched(self, natted):
        device, _ = natted
        packet = make_packet(0x0B000001, 0x08080808)
        device.process(packet, 0.0)
        assert packet.get_field("ipv4", "src") == 0x0B000001

    def test_bindings_recorded(self, natted):
        _, nat = natted
        nat.bind(PRIVATE, PUBLIC)
        assert nat.bindings == {PRIVATE: PUBLIC}
