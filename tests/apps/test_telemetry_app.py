"""INT-probe utility tests: inject, observe, retire."""

from repro.apps.telemetry_app import int_probe_delta, remove_probe_delta
from repro.lang.delta import apply_delta
from repro.simulator.packet import make_packet
from repro.simulator.pipeline_exec import ProgramInstance


class TestProbeLifecycle:
    def test_probe_emits_digest(self, base_program):
        program, _ = apply_delta(base_program, int_probe_delta())
        instance = ProgramInstance(program)
        packet = make_packet(1, 2)
        packet.meta["queue_depth"] = 12
        instance.process(packet)
        assert packet.digests
        dst, ttl, depth = packet.digests[0][1]
        assert dst == 2 and depth == 12

    def test_sampling_shift(self, base_program):
        program, _ = apply_delta(base_program, int_probe_delta(sample_shift=2))
        instance = ProgramInstance(program)
        digests = 0
        for port in range(16):
            packet = make_packet(1, 2)
            packet.meta["ingress_port"] = port
            instance.process(packet)
            digests += len(packet.digests)
        assert digests == 4  # every 4th ingress port value

    def test_probe_removed_cleanly(self, base_program):
        program, _ = apply_delta(base_program, int_probe_delta())
        trimmed, changes = apply_delta(program, remove_probe_delta())
        assert changes.removed == frozenset({"int_probe"})
        instance = ProgramInstance(trimmed)
        packet = make_packet(1, 2)
        instance.process(packet)
        assert packet.digests == []

    def test_no_persistent_footprint(self, base_program):
        """§3.4: utility functions have no persistent footprint."""
        program, _ = apply_delta(base_program, int_probe_delta())
        trimmed, _ = apply_delta(program, remove_probe_delta())
        assert set(trimmed.element_names) == set(base_program.element_names)
