"""Elastic DDoS defense tests (E3 foundations)."""


from repro.apps.base import base_infrastructure
from repro.apps.ddos import (
    DEFENSE_URI,
    DdosDefender,
    DefenderConfig,
    syn_defense_delta,
    syn_monitor_delta,
)
from repro.core.flexnet import FlexNet
from repro.lang.delta import apply_delta
from repro.simulator.flowgen import constant_rate, merge_streams, syn_flood
from repro.simulator.packet import Verdict, make_packet
from repro.simulator.pipeline_exec import ProgramInstance

VICTIM = 0x0A0000FE


class TestMonitorDelta:
    def test_syn_digested(self, base_program):
        program, _ = apply_delta(base_program, syn_monitor_delta())
        instance = ProgramInstance(program)
        syn = make_packet(1, VICTIM, tcp_flags=0x02)
        instance.process(syn)
        assert syn.digests == [(program.name, (VICTIM, 1))]

    def test_non_syn_not_digested(self, base_program):
        program, _ = apply_delta(base_program, syn_monitor_delta())
        instance = ProgramInstance(program)
        ack = make_packet(1, VICTIM, tcp_flags=0x10)
        instance.process(ack)
        assert ack.digests == []


class TestDefenseDelta:
    def test_drops_over_threshold(self, base_program):
        program, _ = apply_delta(base_program, syn_defense_delta(threshold=5))
        instance = ProgramInstance(program)
        verdicts = []
        for _ in range(10):
            syn = make_packet(1, VICTIM, tcp_flags=0x02)
            instance.process(syn)
            verdicts.append(syn.verdict)
        assert verdicts[:5].count(Verdict.DROP) == 0
        assert Verdict.DROP in verdicts[6:]

    def test_benign_traffic_untouched(self, base_program):
        program, _ = apply_delta(base_program, syn_defense_delta(threshold=5))
        instance = ProgramInstance(program)
        for _ in range(20):
            ack = make_packet(1, VICTIM, tcp_flags=0x10)
            instance.process(ack)
            assert ack.verdict is Verdict.FORWARD


class TestClosedLoop:
    def run_attack_scenario(self, config=None):
        net = FlexNet.standard()
        net.install(base_infrastructure())
        net.update(syn_monitor_delta())
        net.loop.run_until(net.loop.now + 2.0)

        defender = DdosDefender(net.controller, config or DefenderConfig(
            attack_threshold_pps=300.0,
            quiet_threshold_pps=50.0,
            check_interval_s=0.2,
            quiet_intervals_to_retire=3,
        ))
        defender.start()

        start = net.loop.now
        benign = constant_rate(50, 14.0, start_s=start, dst_ip=0x0A000002)
        attack = syn_flood(
            2000, ramp_s=2.0, hold_s=4.0, decay_s=2.0, victim_ip=VICTIM,
            start_s=start + 1.0, seed=11,
        )
        report = net.run_traffic(
            packets=merge_streams(benign, attack), extra_time_s=6.0
        )
        defender.stop()
        return net, defender, report

    def test_defense_summoned_and_retired(self):
        net, defender, _ = self.run_attack_scenario()
        assert defender.log.detections >= 1
        assert defender.log.deployed_at is not None
        assert defender.log.retired_at is not None
        assert defender.log.retired_at > defender.log.deployed_at
        assert not defender.deployed  # retired after quiet period
        assert DEFENSE_URI not in net.controller.app_uris

    def test_attack_traffic_dropped_by_program(self):
        _, _, report = self.run_attack_scenario()
        assert report.metrics.dropped_by_program > 0
        assert report.metrics.lost_by_infrastructure == 0

    def test_reaction_time_subsecond_after_threshold(self):
        net, defender, _ = self.run_attack_scenario()
        # attack starts ramping at t~3; detection threshold of 300pps is
        # crossed within the ramp; deployment happens within ~2 checks.
        assert defender.log.deployed_at < 3.0 + 2.0 + 1.0
