"""Dynamic query manager tests (the DynamiQ contrast, live)."""

import pytest

from repro.apps.base import base_infrastructure
from repro.apps.monitoring import QueryManager, QuerySpec
from repro.core.flexnet import FlexNet
from repro.errors import ControlPlaneError
from repro.simulator.flowgen import constant_rate, merge_streams


@pytest.fixture
def monitored():
    net = FlexNet.standard()
    net.install(base_infrastructure())
    return net, QueryManager(net.controller)


class TestQuerySalt:
    def test_salt_is_process_stable(self):
        """Pinned values: the per-row sketch salt must not depend on
        PYTHONHASHSEED (it used to mix builtin hash(name), so the same
        query sketched into different buckets across runs)."""
        spec = QuerySpec(name="heavy_hitters", key_field="ipv4.dst")
        assert spec.salt(0) == 132478201
        assert spec.salt(1) == 848025750

    def test_salt_varies_by_name_and_row(self):
        first = QuerySpec(name="a", key_field="ipv4.dst")
        second = QuerySpec(name="b", key_field="ipv4.dst")
        assert first.salt(0) != first.salt(1)
        assert first.salt(0) != second.salt(0)


class TestQueryLifecycle:
    def test_add_deploys_at_runtime(self, monitored):
        net, manager = monitored
        manager.add(QuerySpec(name="dst", key_field="ipv4.dst"))
        assert manager.active == ["dst"]
        assert net.program.has_function("q_dst")
        assert net.program.has_map("q_dst_r0")

    def test_duplicate_rejected(self, monitored):
        _, manager = monitored
        manager.add(QuerySpec(name="dst", key_field="ipv4.dst"))
        with pytest.raises(ControlPlaneError, match="already active"):
            manager.add(QuerySpec(name="dst", key_field="ipv4.dst"))

    def test_remove_releases_everything(self, monitored):
        net, manager = monitored
        manager.add(QuerySpec(name="dst", key_field="ipv4.dst"))
        net.loop.run_until(net.loop.now + 2.0)
        manager.remove("dst")
        assert manager.active == []
        assert not net.program.has_function("q_dst")
        assert not net.program.has_map("q_dst_r0")

    def test_remove_unknown_rejected(self, monitored):
        _, manager = monitored
        with pytest.raises(ControlPlaneError, match="no active query"):
            manager.remove("ghost")


class TestQueryResults:
    def test_estimates_track_traffic(self, monitored):
        net, manager = monitored
        manager.add(QuerySpec(name="dst", key_field="ipv4.dst"))
        net.loop.run_until(net.loop.now + 2.0)
        start = net.loop.now
        heavy = constant_rate(200, 1.0, start_s=start, dst_ip=777)
        light = constant_rate(20, 1.0, start_s=start, dst_ip=888, src_ip=5)
        net.run_traffic(packets=merge_streams(heavy, light), extra_time_s=2.0)

        assert manager.estimate("dst", 777) >= 200
        assert manager.estimate("dst", 888) >= 20
        assert manager.estimate("dst", 777) > manager.estimate("dst", 888)
        assert manager.heavy_hitters("dst", [777, 888, 999], threshold=100) == [777]

    def test_two_concurrent_queries_different_keys(self, monitored):
        net, manager = monitored
        manager.add(QuerySpec(name="dst", key_field="ipv4.dst"))
        net.loop.run_until(net.loop.now + 2.0)
        manager.add(QuerySpec(name="port", key_field="tcp.dport"))
        net.loop.run_until(net.loop.now + 2.0)
        start = net.loop.now
        net.run_traffic(
            packets=list(constant_rate(100, 1.0, start_s=start, dst_ip=42, dst_port=443)),
            extra_time_s=2.0,
        )
        assert manager.estimate("dst", 42) >= 100
        assert manager.estimate("port", 443) >= 100

    def test_no_preallocation_needed(self, monitored):
        """Unlike DynamiQ, queries beyond any anticipated pool simply
        deploy: five distinct queries arrive at runtime."""
        net, manager = monitored
        fields = ["ipv4.dst", "ipv4.src", "tcp.dport", "tcp.sport", "ipv4.proto"]
        for index, key_field in enumerate(fields):
            manager.add(QuerySpec(name=f"q{index}", key_field=key_field, width=512))
            net.loop.run_until(net.loop.now + 1.5)
        assert len(manager.active) == 5
