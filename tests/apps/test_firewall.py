"""Stateful firewall app tests."""

import pytest

from repro.apps.firewall import FirewallManager, firewall_delta
from repro.control.p4runtime import P4RuntimeClient
from repro.lang.delta import apply_delta
from repro.runtime.device import DeviceRuntime
from repro.simulator.packet import Verdict, make_packet
from repro.simulator.pipeline_exec import ProgramInstance
from repro.targets import drmt_switch

PROTECTED = 0x0A000000  # 10.0.0.0/8
INSIDE = 0x0A000005
OUTSIDE = 0x0B000007


@pytest.fixture
def firewalled(base_program):
    program, changes = apply_delta(base_program, firewall_delta())
    return program, changes


class TestDelta:
    def test_elements_added(self, firewalled):
        program, changes = firewalled
        assert changes.added == {"fw_block", "fw_conns", "fw_track"}
        assert program.has_table("fw_block")

    def test_block_table_before_acl(self, firewalled):
        from repro.lang import ir

        program, _ = firewalled
        names = [s.table for s in program.apply if isinstance(s, ir.ApplyTable)]
        assert names.index("fw_block") < names.index("acl")


class TestConnectionTracking:
    def test_outbound_registers_return_path(self, firewalled):
        program, _ = firewalled
        instance = ProgramInstance(program)
        outbound = make_packet(INSIDE, OUTSIDE)
        instance.process(outbound)
        assert outbound.verdict is Verdict.FORWARD
        inbound = make_packet(OUTSIDE, INSIDE)
        instance.process(inbound)
        assert inbound.verdict is Verdict.FORWARD

    def test_unsolicited_inbound_dropped(self, firewalled):
        program, _ = firewalled
        instance = ProgramInstance(program)
        inbound = make_packet(OUTSIDE, INSIDE)
        instance.process(inbound)
        assert inbound.verdict is Verdict.DROP

    def test_outside_to_outside_unaffected(self, firewalled):
        program, _ = firewalled
        instance = ProgramInstance(program)
        packet = make_packet(0x0B000001, 0x0C000001)
        instance.process(packet)
        assert packet.verdict is Verdict.FORWARD


class TestManager:
    @pytest.fixture
    def manager(self, firewalled):
        program, _ = firewalled
        device = DeviceRuntime("sw1", drmt_switch("sw1"))
        device.install(program)
        return device, FirewallManager(P4RuntimeClient(device))

    def test_block_source(self, manager):
        device, firewall = manager
        firewall.block_source(0x0B000007)
        packet = make_packet(0x0B000007, 0x0C000001)
        device.process(packet, 0.0)
        assert packet.verdict is Verdict.DROP
        assert firewall.blocked_count() == 1

    def test_unblock(self, manager):
        device, firewall = manager
        entry = firewall.block_source(0x0B000007)
        assert firewall.unblock(entry)
        packet = make_packet(0x0B000007, 0x0C000001)
        device.process(packet, 0.0)
        assert packet.verdict is Verdict.FORWARD

    def test_block_pair_is_directional(self, manager):
        device, firewall = manager
        firewall.block_pair(0x0B000007, 0x0C000001)
        blocked = make_packet(0x0B000007, 0x0C000001)
        device.process(blocked, 0.0)
        assert blocked.verdict is Verdict.DROP
        reverse = make_packet(0x0C000001, 0x0B000007)
        device.process(reverse, 0.0)
        assert reverse.verdict is Verdict.FORWARD

    def test_tracked_connections_counter(self, manager):
        device, firewall = manager
        device.process(make_packet(INSIDE, OUTSIDE), 0.0)
        assert firewall.tracked_connections() == 1
