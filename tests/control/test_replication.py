"""State replication tests."""

import pytest

from repro.control.replication import ReplicationManager
from repro.errors import ControlPlaneError
from repro.lang import builder as b
from repro.lang.ir import MapDef
from repro.lang.maps import MapState
from repro.lang.types import BitsType
from repro.simulator.engine import EventLoop


def make_state():
    return MapState(
        MapDef(
            name="important",
            key_fields=(b.field("ipv4.dst"),),
            value_type=BitsType(64),
            max_entries=1024,
        )
    )


@pytest.fixture
def manager():
    loop = EventLoop()
    return loop, ReplicationManager(loop)


class TestPeriodic:
    def test_replicas_catch_up_each_interval(self, manager):
        loop, replication = manager
        primary = make_state()
        replica = make_state()
        group = replication.replicate(
            "important", "sw1", primary, {"sw2": replica}, mode="periodic",
            interval_s=0.1,
        )
        replication.write("important", (1,), 11)
        assert replica.get((1,)) == 0  # not yet synced
        loop.run_until(0.15)
        assert replica.get((1,)) == 11
        assert group.syncs >= 1

    def test_staleness_bounded_by_interval(self, manager):
        loop, replication = manager
        primary = make_state()
        replica = make_state()
        group = replication.replicate(
            "important", "sw1", primary, {"sw2": replica}, interval_s=0.1
        )
        loop.run_until(0.15)
        for i in range(5):
            replication.write("important", (i,), i)
        staleness = group.staleness()["sw2"]
        assert staleness == 5
        loop.run_until(0.25)
        assert group.staleness()["sw2"] == 0


class TestWriteThrough:
    def test_replicas_always_current(self, manager):
        loop, replication = manager
        primary = make_state()
        replica = make_state()
        group = replication.replicate(
            "important", "sw1", primary, {"sw2": replica}, mode="write_through"
        )
        replication.write("important", (9,), 99)
        assert replica.get((9,)) == 99
        assert group.staleness()["sw2"] == 0

    def test_unknown_mode_rejected(self, manager):
        _, replication = manager
        with pytest.raises(ControlPlaneError, match="unknown replication mode"):
            replication.replicate("m", "sw1", make_state(), {}, mode="psychic")

    def test_duplicate_group_rejected(self, manager):
        _, replication = manager
        replication.replicate("m", "sw1", make_state(), {})
        with pytest.raises(ControlPlaneError, match="already replicated"):
            replication.replicate("m", "sw1", make_state(), {})


class TestFailover:
    def test_promotes_freshest_replica(self, manager):
        loop, replication = manager
        primary = make_state()
        fresh, stale = make_state(), make_state()
        group = replication.replicate(
            "important", "sw1", primary, {"fresh": fresh, "stale": stale},
            interval_s=0.1,
        )
        replication.write("important", (1,), 1)
        loop.run_until(0.15)  # both synced
        # manually advance 'fresh' sync bookkeeping by syncing again later
        replication.write("important", (2,), 2)
        group.status["fresh"].synced_mutation_count = primary.mutation_count
        fresh.restore(primary.snapshot())

        device, state, lost = replication.fail_over("important")
        assert device == "fresh"
        assert state.get((2,)) == 2
        assert lost == 0

    def test_loss_counted(self, manager):
        loop, replication = manager
        primary = make_state()
        replica = make_state()
        replication.replicate("important", "sw1", primary, {"r": replica}, interval_s=10.0)
        for i in range(7):
            replication.write("important", (i,), i)
        _, _, lost = replication.fail_over("important")
        assert lost == 7

    def test_no_replicas_rejected(self, manager):
        _, replication = manager
        replication.replicate("m", "sw1", make_state(), {})
        with pytest.raises(ControlPlaneError, match="no replicas"):
            replication.fail_over("m")

    def test_unknown_group_rejected(self, manager):
        _, replication = manager
        with pytest.raises(ControlPlaneError, match="no replication group"):
            replication.fail_over("ghost")

    def test_loss_clamped_at_zero_when_replica_ahead(self, manager):
        # A replica's sync bookkeeping can run ahead of the primary's
        # mutation count (e.g. a sync raced the failure); the reported
        # loss must clamp at 0, never go negative.
        _, replication = manager
        primary = make_state()
        replica = make_state()
        group = replication.replicate("important", "sw1", primary, {"r": replica})
        replication.write("important", (1,), 1)
        group.status["r"].synced_mutation_count = primary.mutation_count + 3
        _, _, lost = replication.fail_over("important")
        assert lost == 0

    @pytest.mark.parametrize("order", [("rep_a", "rep_b"), ("rep_b", "rep_a")])
    def test_tie_break_between_equally_fresh_replicas(self, order):
        # Equally fresh replicas promote deterministically (smallest
        # device name) regardless of replica-dict insertion order.
        loop = EventLoop()
        replication = ReplicationManager(loop)
        primary = make_state()
        replicas = {name: make_state() for name in order}
        group = replication.replicate("important", "sw1", primary, replicas)
        replication.write("important", (1,), 1)
        for status in group.status.values():
            status.synced_mutation_count = primary.mutation_count
        device, _, lost = replication.fail_over("important")
        assert device == "rep_a"
        assert lost == 0
