"""FlexHA consensus foundations: stable seeding and Raft snapshots."""

from repro.control.consensus import (
    ControllerCluster,
    RaftNode,
    Role,
    node_seed,
)
from repro.simulator.engine import EventLoop


def make_cluster(n=3, seed=0, snapshot_threshold=None):
    loop = EventLoop()
    cluster = ControllerCluster(
        loop, node_count=n, seed=seed, snapshot_threshold=snapshot_threshold
    )
    return loop, cluster


def run_until_leader(loop, cluster, deadline=5.0, step=0.05):
    time = loop.now
    while time < deadline:
        time += step
        loop.run_until(time)
        if cluster.leader() is not None:
            return cluster.leader()
    return cluster.leader()


class TestStableSeed:
    def test_node_seed_is_cross_process_stable(self):
        # Regression: the per-node RNG used to be seeded with
        # hash((node_id, seed)), which Python salts per process
        # (PYTHONHASHSEED) — same-seed elections diverged across
        # processes. These constants pin the stable digest.
        assert node_seed("ctl0", 0) == 1798576998
        assert node_seed("ctl1", 0) == 3053186492
        assert node_seed("ctl0", 42) == 3807767308

    def test_distinct_nodes_get_distinct_seeds(self):
        seeds = {node_seed(f"ctl{i}", 7) for i in range(5)}
        assert len(seeds) == 5

    def test_same_seed_elections_are_identical(self):
        outcomes = []
        for _ in range(2):
            loop, cluster = make_cluster(seed=3)
            leader = run_until_leader(loop, cluster)
            outcomes.append((leader.node_id, leader.current_term, round(loop.now, 6)))
        assert outcomes[0] == outcomes[1]


class TestSnapshots:
    def test_leader_compacts_applied_log(self):
        loop, cluster = make_cluster(snapshot_threshold=4)
        leader = run_until_leader(loop, cluster)
        for index in range(10):
            cluster.submit(index)
            loop.run_until(loop.now + 0.2)
        leader = cluster.leader()
        assert leader.snapshots_taken >= 1
        assert leader.log_offset > 0
        assert len(leader.log) < 10
        # The folded state machine is intact and ordered.
        assert leader.applied_commands == list(range(10))
        assert leader.snapshot.last_index == leader.log_offset
        assert list(leader.snapshot.commands) == leader.applied_commands[
            : leader.snapshot.last_index
        ]

    def test_commit_survives_compaction(self):
        loop, cluster = make_cluster(snapshot_threshold=3)
        run_until_leader(loop, cluster)
        for index in range(8):
            cluster.submit(index)
            loop.run_until(loop.now + 0.2)
        # Every node applied everything, in order, despite truncation.
        for node in cluster.nodes.values():
            assert node.applied_commands == list(range(8))

    def test_lagging_follower_catches_up_from_snapshot(self):
        loop, cluster = make_cluster(snapshot_threshold=3)
        leader = run_until_leader(loop, cluster)
        victim = next(
            n for n in cluster.nodes.values() if n.node_id != leader.node_id
        )
        cluster.bus.crash(victim.node_id)
        for index in range(10):
            cluster.submit(index)
            loop.run_until(loop.now + 0.2)
        # The entries the victim needs are compacted away on the leader.
        assert cluster.leader().log_offset > 0
        cluster.bus.recover(victim.node_id)
        loop.run_until(loop.now + 3.0)
        assert victim.snapshots_installed >= 1
        assert victim.applied_commands == list(range(10))

    def test_snapshot_does_not_block_new_appends(self):
        loop, cluster = make_cluster(snapshot_threshold=2)
        run_until_leader(loop, cluster)
        for index in range(6):
            cluster.submit(index)
            loop.run_until(loop.now + 0.2)
        # New proposals still commit after several compactions.
        cluster.submit("after-compaction")
        loop.run_until(loop.now + 1.0)
        assert "after-compaction" in cluster.committed_commands()

    def test_snapshot_disabled_by_default(self):
        loop = EventLoop()
        cluster = ControllerCluster(loop, node_count=3, seed=0)
        run_until_leader(loop, cluster)
        for index in range(12):
            cluster.submit(index)
            loop.run_until(loop.now + 0.15)
        for node in cluster.nodes.values():
            assert node.snapshots_taken == 0
            assert node.log_offset == 0


class TestSnapshotFailover:
    def test_leader_with_snapshot_can_fail_over(self):
        loop, cluster = make_cluster(snapshot_threshold=3)
        leader = run_until_leader(loop, cluster)
        for index in range(8):
            cluster.submit(index)
            loop.run_until(loop.now + 0.2)
        cluster.bus.crash(leader.node_id)
        successor = run_until_leader(loop, cluster, deadline=loop.now + 5.0)
        assert successor is not None
        assert successor.node_id != leader.node_id
        # The successor holds the full applied history.
        assert successor.applied_commands == list(range(8))
        cluster.submit("post-failover")
        loop.run_until(loop.now + 1.0)
        assert "post-failover" in successor.applied_commands
