"""Telemetry collector tests."""

import pytest

from repro.control.telemetry import DigestRecord, TelemetryCollector
from repro.simulator.packet import make_packet


class TestDigestWindow:
    def test_rate_by_key(self):
        collector = TelemetryCollector(window_s=1.0)
        for i in range(10):
            collector.ingest(DigestRecord(time=i * 0.05, program="p", values=(7,)))
        rates = collector.rate_by_key(now=0.5)
        assert rates[7] == pytest.approx(10.0)

    def test_window_eviction(self):
        collector = TelemetryCollector(window_s=0.5)
        collector.ingest(DigestRecord(time=0.0, program="p", values=(7,)))
        collector.ingest(DigestRecord(time=0.9, program="p", values=(7,)))
        rates = collector.rate_by_key(now=1.0)
        assert rates[7] == pytest.approx(2.0)  # 1 digest / 0.5 s

    def test_hottest_key(self):
        collector = TelemetryCollector(window_s=1.0)
        for _ in range(5):
            collector.ingest(DigestRecord(time=0.1, program="p", values=(1,)))
        collector.ingest(DigestRecord(time=0.1, program="p", values=(2,)))
        key, rate = collector.hottest_key(now=0.2)
        assert key == 1
        assert rate == pytest.approx(5.0)

    def test_hottest_key_empty(self):
        assert TelemetryCollector().hottest_key(now=0.0) is None

    def test_total_rate(self):
        collector = TelemetryCollector(window_s=2.0)
        for i in range(4):
            collector.ingest(DigestRecord(time=0.1 * i, program="p", values=(i,)))
        assert collector.total_rate(now=0.5) == pytest.approx(2.0)

    def test_ingest_packet_pulls_digests(self):
        collector = TelemetryCollector()
        packet = make_packet(1, 2)
        packet.digests.append(("prog", (42, 1)))
        packet.digests.append(("prog", (42, 2)))
        collector.ingest_packet(packet, now=0.0)
        assert collector.total_digests == 2
        assert collector.rate_by_key(0.0)[42] > 0

    def test_valueless_digest_ignored_in_rates(self):
        collector = TelemetryCollector()
        collector.ingest(DigestRecord(time=0.0, program="p", values=()))
        assert collector.rate_by_key(0.0) == {}
        assert collector.total_rate(0.0) > 0


class TestBoundedMemory:
    def test_eviction_happens_on_ingest(self):
        """A collector that is never queried must not grow without
        bound: stale records are evicted as new ones arrive."""
        collector = TelemetryCollector(window_s=0.5)
        for i in range(10_000):
            collector.ingest(DigestRecord(time=i * 0.01, program="p", values=(7,)))
        # Only the last window's worth (0.5 s / 0.01 s = ~50) survives.
        assert len(collector._digests) <= 51
        assert collector.total_digests == 10_000

    def test_max_records_caps_bursts(self):
        """A burst faster than the window can evict is hard-capped."""
        collector = TelemetryCollector(window_s=10.0, max_records=100)
        for _ in range(500):
            collector.ingest(DigestRecord(time=1.0, program="p", values=(7,)))
        assert len(collector._digests) == 100
        assert collector.total_digests == 500

    def test_rates_survive_capping(self):
        collector = TelemetryCollector(window_s=1.0, max_records=10)
        for _ in range(50):
            collector.ingest(DigestRecord(time=0.5, program="p", values=(3,)))
        assert collector.rate_by_key(now=0.5)[3] == pytest.approx(10.0)

    def test_event_feed_bounded_and_counted(self):
        collector = TelemetryCollector()
        for i in range(5000):
            collector.ingest_event("crash", "sw1", now=float(i))
        assert collector.total_events == 5000
        assert len(collector.events) == 4096
        assert collector.events[-1].kind == "crash"
        assert collector.events[-1].device == "sw1"
