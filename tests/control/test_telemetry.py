"""Telemetry collector tests."""

import pytest

from repro.control.telemetry import DigestRecord, TelemetryCollector
from repro.simulator.packet import make_packet


class TestDigestWindow:
    def test_rate_by_key(self):
        collector = TelemetryCollector(window_s=1.0)
        for i in range(10):
            collector.ingest(DigestRecord(time=i * 0.05, program="p", values=(7,)))
        rates = collector.rate_by_key(now=0.5)
        assert rates[7] == pytest.approx(10.0)

    def test_window_eviction(self):
        collector = TelemetryCollector(window_s=0.5)
        collector.ingest(DigestRecord(time=0.0, program="p", values=(7,)))
        collector.ingest(DigestRecord(time=0.9, program="p", values=(7,)))
        rates = collector.rate_by_key(now=1.0)
        assert rates[7] == pytest.approx(2.0)  # 1 digest / 0.5 s

    def test_hottest_key(self):
        collector = TelemetryCollector(window_s=1.0)
        for _ in range(5):
            collector.ingest(DigestRecord(time=0.1, program="p", values=(1,)))
        collector.ingest(DigestRecord(time=0.1, program="p", values=(2,)))
        key, rate = collector.hottest_key(now=0.2)
        assert key == 1
        assert rate == pytest.approx(5.0)

    def test_hottest_key_empty(self):
        assert TelemetryCollector().hottest_key(now=0.0) is None

    def test_total_rate(self):
        collector = TelemetryCollector(window_s=2.0)
        for i in range(4):
            collector.ingest(DigestRecord(time=0.1 * i, program="p", values=(i,)))
        assert collector.total_rate(now=0.5) == pytest.approx(2.0)

    def test_ingest_packet_pulls_digests(self):
        collector = TelemetryCollector()
        packet = make_packet(1, 2)
        packet.digests.append(("prog", (42, 1)))
        packet.digests.append(("prog", (42, 2)))
        collector.ingest_packet(packet, now=0.0)
        assert collector.total_digests == 2
        assert collector.rate_by_key(0.0)[42] > 0

    def test_valueless_digest_ignored_in_rates(self):
        collector = TelemetryCollector()
        collector.ingest(DigestRecord(time=0.0, program="p", values=()))
        assert collector.rate_by_key(0.0) == {}
        assert collector.total_rate(0.0) > 0
