"""FlexHA: replicated controller, fencing epochs, resync sweeps."""

from repro.apps import base_infrastructure, firewall_delta
from repro.control.ha import FlexHA
from repro.core.flexnet import FlexNet
from repro.faults import FaultInjector, FaultPlan
from repro.runtime.consistency import ConsistencyLevel
from repro.simulator.packet import reset_packet_ids


def make_ha_net(seed=42, fencing=True, node_count=3):
    reset_packet_ids()
    net = FlexNet.standard("drmt")
    net.install(base_infrastructure())
    ha = FlexHA(net.controller, node_count=node_count, seed=seed, fencing=fencing)
    return net, net.controller, ha


def settle(controller):
    for device in controller.devices.values():
        device.settle(controller.loop.now)


class TestReplicatedUpdates:
    def test_update_commits_then_executes(self):
        net, controller, ha = make_ha_net()
        controller.loop.run_until(1.0)
        leader = ha.cluster.leader()
        assert leader is not None
        delta_id = ha.submit_update(
            firewall_delta(), consistency=ConsistencyLevel.PER_PACKET_PATH
        )
        assert delta_id == 1
        controller.loop.run_until(3.0)
        settle(controller)
        assert ha.executed_updates == 1
        assert not ha.update_errors
        assert controller.program.version == 2
        assert controller.devices["sw1"].active_program.version == 2
        # The command is in the replicated log on every node.
        for node in ha.cluster.nodes.values():
            assert any(
                getattr(command, "delta_id", None) == delta_id
                for command in node.applied_commands
            )

    def test_epoch_stamped_on_devices(self):
        net, controller, ha = make_ha_net()
        controller.loop.run_until(1.0)
        term = ha.cluster.leader().current_term
        assert ha.epoch == term
        assert controller.hub.epoch == term
        for device in controller.devices.values():
            assert device.fencing_epoch == term

    def test_submit_without_leader_returns_none(self):
        net, controller, ha = make_ha_net()
        controller.loop.run_until(1.0)
        for node_id in ha.cluster.nodes:
            ha.cluster.bus.crash(node_id)
        assert ha.submit_update(firewall_delta()) is None

    def test_duplicate_delta_id_not_reexecuted(self):
        net, controller, ha = make_ha_net()
        controller.loop.run_until(1.0)
        leader = ha.cluster.leader()
        from repro.control.ha import HACommand

        command = HACommand(delta_id=99, delta=firewall_delta())
        leader.propose(command)
        leader.propose(command)  # replayed by a re-driving successor
        controller.loop.run_until(3.0)
        settle(controller)
        assert ha.executed_updates == 1
        assert controller.program.version == 2


class TestFailover:
    def run_leader_crash(self, fencing=True, crash_at=5.02):
        net, controller, ha = make_ha_net(fencing=fencing)
        controller.loop.run_until(1.0)
        first_leader = ha.leader_id

        def submit():
            if ha.submit_update(
                firewall_delta(), consistency=ConsistencyLevel.PER_PACKET_PATH
            ) is None:
                controller.loop.schedule(0.05, submit)

        controller.loop.schedule_at(5.0, submit)
        controller.loop.schedule_at(
            crash_at, lambda: ha.cluster.bus.crash(ha.leader_id or first_leader)
        )
        controller.loop.run_until(12.0)
        settle(controller)
        return controller, ha

    def test_leader_crash_mid_transition_converges(self):
        controller, ha = self.run_leader_crash()
        assert ha.executed_updates == 1
        assert not ha.update_errors
        assert controller.devices["sw1"].active_program.version == 2
        assert not controller.devices["sw1"].in_transition
        assert len(ha.failovers) == 1
        downtimes = ha.handoff_downtimes_s()
        assert len(downtimes) == 1
        assert 0.0 < downtimes[0] < 2.0

    def test_new_leader_runs_resync_sweep(self):
        controller, ha = self.run_leader_crash()
        # One sweep from the bootstrap election, one from the fail-over.
        assert ha.resyncs == 2
        assert ha.resync_reads > 0

    def test_failover_status_is_deterministic(self):
        _, ha_first = self.run_leader_crash()
        _, ha_second = self.run_leader_crash()
        assert ha_first.status() == ha_second.status()

    def test_new_leader_epoch_supersedes(self):
        controller, ha = self.run_leader_crash()
        new_term = ha.cluster.leader().current_term
        assert ha.max_term == new_term
        for device in controller.devices.values():
            assert device.fencing_epoch == new_term


class TestFencing:
    def run_partition(self, fencing=True):
        net, controller, ha = make_ha_net(fencing=fencing)
        controller.loop.run_until(1.0)
        first_leader = ha.leader_id

        def split():
            leader_id = ha.leader_id or first_leader
            others = {n for n in ha.cluster.nodes if n != leader_id}
            ha.cluster.bus.partition({leader_id}, others)

        controller.loop.schedule_at(
            5.0,
            lambda: ha.submit_update(
                firewall_delta(), consistency=ConsistencyLevel.PER_PACKET_PATH
            ),
        )
        controller.loop.schedule_at(5.02, split)
        controller.loop.schedule_at(8.0, ha.cluster.bus.heal)
        controller.loop.run_until(12.0)
        settle(controller)
        return controller, ha

    def test_deposed_leader_writes_are_fenced(self):
        controller, ha = self.run_partition(fencing=True)
        # The old leader keeps renewing its lease from the minority side;
        # every renewal bounces off the device watermarks.
        assert ha.epoch_rejections > 0
        assert ha.stale_writes_applied == 0
        assert sum(d.stats.stale_rejections for d in controller.devices.values()) > 0

    def test_unfenced_baseline_applies_stale_writes(self):
        controller, ha = self.run_partition(fencing=False)
        assert ha.stale_writes_applied > 0
        assert ha.epoch_rejections == 0


class TestHealthResync:
    def test_quarantined_then_recovered_device_resynced(self):
        net, controller, ha = make_ha_net()
        injector = FaultInjector(FaultPlan(seed=1))
        controller.attach_faults(injector, recovery=True, monitor=True)
        controller.loop.run_until(1.0)
        # Crash sw1 long enough for the monitor (0.1s probes, threshold 3)
        # to quarantine it, then bring it back.
        controller.loop.schedule_at(2.0, lambda: controller.devices["sw1"].crash(2.0))
        controller.loop.schedule_at(
            3.0, lambda: controller.devices["sw1"].restart(3.0)
        )
        controller.loop.run_until(5.0)
        assert "sw1" not in controller.health.quarantined
        # The release callback reached FlexHA: the device got a targeted
        # resync sweep from the current leader.
        assert ha.health_resyncs >= 1

    def test_release_without_ha_is_harmless(self):
        reset_packet_ids()
        net = FlexNet.standard("drmt")
        net.install(base_infrastructure())
        controller = net.controller
        injector = FaultInjector(FaultPlan(seed=1))
        controller.attach_faults(injector, recovery=True, monitor=True)
        controller.loop.schedule_at(1.0, lambda: controller.devices["sw1"].crash(1.0))
        controller.loop.schedule_at(
            2.0, lambda: controller.devices["sw1"].restart(2.0)
        )
        controller.loop.run_until(4.0)  # must not raise
        assert controller.ha is None
