"""Topology view tests."""

import pytest

from repro.control.topology import TopologyView
from repro.errors import UnknownDeviceError
from repro.targets import drmt_switch, host, rmt_switch, smartnic
from repro.targets.resources import ResourceVector


def linear_topology():
    view = TopologyView()
    view.add_device("h1", host("h1"))
    view.add_device("nic1", smartnic("nic1"))
    view.add_device("sw1", drmt_switch("sw1"))
    view.add_device("legacy1", None)
    view.add_device("sw2", rmt_switch("sw2", runtime_capable=False))
    view.add_device("h2", host("h2"))
    for a, b, lat in [
        ("h1", "nic1", 1e-6),
        ("nic1", "sw1", 2e-6),
        ("sw1", "legacy1", 2e-6),
        ("legacy1", "sw2", 2e-6),
        ("sw2", "h2", 1e-6),
    ]:
        view.add_link(a, b, lat)
    return view


class TestConstruction:
    def test_duplicate_device_rejected(self):
        view = TopologyView()
        view.add_device("a", None)
        with pytest.raises(UnknownDeviceError):
            view.add_device("a", None)

    def test_unknown_device_rejected(self):
        with pytest.raises(UnknownDeviceError):
            TopologyView().device("ghost")

    def test_link_requires_devices(self):
        view = TopologyView()
        view.add_device("a", None)
        with pytest.raises(UnknownDeviceError):
            view.add_link("a", "ghost")

    def test_remove_device(self):
        view = linear_topology()
        view.remove_device("legacy1")
        with pytest.raises(UnknownDeviceError):
            view.device("legacy1")


class TestClassification:
    def test_runtime_programmable_set(self):
        view = linear_topology()
        assert "sw1" in view.runtime_programmable_devices
        assert "sw2" not in view.runtime_programmable_devices  # compile-time only
        assert "legacy1" not in view.runtime_programmable_devices

    def test_legacy_set_includes_nonprogrammable_and_compiletime(self):
        view = linear_topology()
        assert set(view.legacy_devices) == {"legacy1", "sw2"}

    def test_programmable_flag(self):
        view = linear_topology()
        assert not view.device("legacy1").programmable
        assert view.device("sw2").programmable


class TestPaths:
    def test_shortest_path(self):
        view = linear_topology()
        path = view.shortest_path("h1", "h2")
        assert path[0] == "h1" and path[-1] == "h2"
        assert "sw1" in path

    def test_no_path_raises(self):
        view = linear_topology()
        view.add_device("island", None)
        with pytest.raises(UnknownDeviceError):
            view.shortest_path("h1", "island")

    def test_programmable_path_detours(self):
        view = TopologyView()
        view.add_device("a", host("a"))
        view.add_device("legacy", None)
        view.add_device("sw", drmt_switch("sw"))
        view.add_device("b", host("b"))
        view.add_link("a", "legacy", 1e-6)
        view.add_link("legacy", "b", 1e-6)
        view.add_link("a", "sw", 5e-6)
        view.add_link("sw", "b", 5e-6)
        assert view.shortest_path("a", "b") == ["a", "legacy", "b"]
        assert view.programmable_path("a", "b") == ["a", "sw", "b"]


class TestSlices:
    def test_slice_skips_nonprogrammable(self):
        view = linear_topology()
        path, network_slice = view.slice_between("h1", "h2")
        assert "legacy1" in path
        assert "legacy1" not in network_slice.names
        assert network_slice.names == ["h1", "nic1", "sw1", "sw2", "h2"]

    def test_slice_ingress_latency_from_links(self):
        view = linear_topology()
        _, network_slice = view.slice_between("h1", "h2")
        nic = network_slice.device("nic1")
        assert nic.ingress_link_ns == pytest.approx(1e-6 * 1e9)

    def test_slice_reflects_used_resources(self):
        view = linear_topology()
        view.commit("sw1", ResourceVector(sram_kb=100))
        _, network_slice = view.slice_between("h1", "h2")
        assert network_slice.device("sw1").used["sram_kb"] == 100


class TestLedger:
    def test_commit_release_cycle(self):
        view = linear_topology()
        view.commit("sw1", ResourceVector(sram_kb=50))
        assert view.utilization("sw1") > 0
        view.release("sw1", ResourceVector(sram_kb=50))
        assert view.utilization("sw1") == 0

    def test_nonprogrammable_utilization_zero(self):
        assert linear_topology().utilization("legacy1") == 0.0
