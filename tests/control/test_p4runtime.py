"""Element-level (P4Runtime) binding tests."""

import pytest

from repro.control.p4runtime import P4RuntimeClient, P4RuntimeHub, TableEntry
from repro.errors import ControlPlaneError
from repro.runtime.device import DeviceRuntime
from repro.simulator.packet import make_packet
from repro.simulator.tables import exact, ternary
from repro.targets import drmt_switch


@pytest.fixture
def bound(base_program):
    device = DeviceRuntime("sw1", drmt_switch("sw1"))
    device.install(base_program)
    return device, P4RuntimeClient(device)


class TestTableEntries:
    def test_insert_and_hit(self, bound):
        device, client = bound
        client.insert_entry(
            TableEntry(
                table="acl",
                matches=(ternary(5, 0xFFFFFFFF), ternary(0, 0)),
                action="drop",
                priority=1,
            )
        )
        packet = make_packet(5, 6)
        device.process(packet, 0.0)
        assert packet.dropped
        hits, misses = client.read_counters("acl")
        assert sum(hits) == 1

    def test_delete_entry(self, bound):
        _, client = bound
        entry = TableEntry(
            table="acl",
            matches=(ternary(5, 0xFFFFFFFF), ternary(0, 0)),
            action="drop",
        )
        client.insert_entry(entry)
        assert client.table_size("acl") == 1
        assert client.delete_entry(entry)
        assert client.table_size("acl") == 0

    def test_unknown_table_rejected(self, bound):
        _, client = bound
        with pytest.raises(ControlPlaneError, match="no table"):
            client.insert_entry(
                TableEntry(table="ghost", matches=(exact(1),), action="drop")
            )

    def test_control_time_accumulates(self, bound):
        _, client = bound
        client.table_size("acl")
        client.read_counters("acl")
        assert client.stats.reads == 2
        assert client.stats.control_time_s > 0


class TestMapAccess:
    def test_read_map_after_traffic(self, bound):
        device, client = bound
        device.process(make_packet(9, 10), 0.0)
        contents = client.read_map("flow_counts")
        assert contents[(9, 10)] == 1

    def test_read_single_entry(self, bound):
        device, client = bound
        device.process(make_packet(9, 10), 0.0)
        assert client.read_map_entry("flow_counts", (9, 10)) == 1
        assert client.read_map_entry("flow_counts", (1, 1)) == 0

    def test_write_map_entry(self, bound):
        device, client = bound
        client.write_map_entry("flow_counts", (7, 7), 55)
        assert device.active_instance.maps.state("flow_counts").get((7, 7)) == 55

    def test_unknown_map_rejected(self, bound):
        _, client = bound
        with pytest.raises(ControlPlaneError, match="no map"):
            client.read_map("ghost")

    def test_no_program_rejected(self):
        device = DeviceRuntime("sw1", drmt_switch("sw1"))
        client = P4RuntimeClient(device)
        with pytest.raises(ControlPlaneError, match="no program"):
            client.read_map("flow_counts")


class TestHub:
    def test_bind_is_idempotent(self, base_program):
        device = DeviceRuntime("sw1", drmt_switch("sw1"))
        device.install(base_program)
        hub = P4RuntimeHub()
        first = hub.bind(device)
        second = hub.bind(device)
        assert first is second

    def test_unknown_client_rejected(self):
        with pytest.raises(ControlPlaneError):
            P4RuntimeHub().client("ghost")

    def test_total_control_time(self, base_program):
        device = DeviceRuntime("sw1", drmt_switch("sw1"))
        device.install(base_program)
        hub = P4RuntimeHub()
        hub.bind(device).table_size("acl")
        assert hub.total_control_time_s > 0
