"""FlexNet controller tests: the app-level API end to end."""

import pytest

from repro.control.apps_api import AppSla
from repro.control.controller import FlexNetController
from repro.errors import ControlPlaneError, UnknownAppError
from repro.lang.composition import Permission, TenantSpec
from repro.lang.delta import parse_delta
from repro.lang.builder import ProgramBuilder
from repro.lang import builder as b
from repro.apps.base import STANDARD_HEADERS, base_infrastructure
from repro.targets import drmt_switch, host, smartnic

MONITOR_DELTA = """
delta monitor {
  add map hh { key: ipv4.src; value: u32; max_entries: 1024; }
  add func hh_count() {
    let v: u32 = map_get(hh, ipv4.src);
    map_put(hh, ipv4.src, v + 1);
  }
  insert hh_count after count_flow;
}
"""


def make_controller():
    controller = FlexNetController()
    controller.add_device("h1", host("h1"))
    controller.add_device("nic1", smartnic("nic1"))
    controller.add_device("sw1", drmt_switch("sw1"))
    controller.add_device("nic2", smartnic("nic2"))
    controller.add_device("h2", host("h2"))
    for a, bb in [("h1", "nic1"), ("nic1", "sw1"), ("sw1", "nic2"), ("nic2", "h2")]:
        controller.add_link(a, bb, 2e-6)
    controller.set_datapath_endpoints("h1", "h2")
    return controller


@pytest.fixture
def controller():
    c = make_controller()
    c.install_infrastructure(base_infrastructure())
    return c


def tenant_extension():
    program = ProgramBuilder("ext", owner="tenant")
    for header, fields in STANDARD_HEADERS.items():
        program.header(header, **fields)
    program.map("hits", keys=["ipv4.src"], value_type="u32", max_entries=64)
    program.function(
        "watch",
        [
            b.let("n", "u32", b.map_get("hits", "ipv4.src")),
            b.map_put("hits", "ipv4.src", b.binop("+", "n", 1)),
        ],
    )
    program.apply("watch")
    return program.build()


class TestProvisioning:
    def test_install_registers_base_app(self, controller):
        assert "flexnet://infrastructure/base" in controller.app_uris
        record = controller.app("flexnet://infrastructure/base")
        assert record.footprint  # placed somewhere

    def test_program_and_plan_accessible(self, controller):
        assert controller.program.name == "infra"
        assert controller.plan.placement

    def test_endpoints_required_before_install(self):
        bare = FlexNetController()
        with pytest.raises(ControlPlaneError):
            bare.install_infrastructure(base_infrastructure())


class TestAppLifecycle:
    def test_deploy_creates_record(self, controller):
        outcome = controller.deploy_app(
            "flexnet://infrastructure/monitor", parse_delta(MONITOR_DELTA)
        )
        record = controller.app("flexnet://infrastructure/monitor")
        assert record.elements == {"hh", "hh_count"}
        assert outcome.result.reconfig.added_elements == 2

    def test_double_deploy_rejected(self, controller):
        controller.deploy_app("flexnet://infrastructure/monitor", parse_delta(MONITOR_DELTA))
        with pytest.raises(ControlPlaneError, match="already deployed"):
            controller.deploy_app(
                "flexnet://infrastructure/monitor", parse_delta(MONITOR_DELTA)
            )

    def test_remove_app_releases_elements(self, controller):
        controller.deploy_app("flexnet://infrastructure/monitor", parse_delta(MONITOR_DELTA))
        controller.loop.run_until(controller.loop.now + 2.0)
        outcome = controller.remove_app("flexnet://infrastructure/monitor")
        assert outcome.result.changes.removed == frozenset({"hh", "hh_count"})
        with pytest.raises(UnknownAppError):
            controller.app("flexnet://infrastructure/monitor")
        assert not controller.program.has_map("hh")

    def test_scale_app_resizes_maps(self, controller):
        controller.deploy_app("flexnet://infrastructure/monitor", parse_delta(MONITOR_DELTA))
        controller.loop.run_until(controller.loop.now + 2.0)
        controller.scale_app("flexnet://infrastructure/monitor", 4.0)
        assert controller.program.map("hh").max_entries == 4096

    def test_migrate_app_moves_elements(self, controller):
        controller.deploy_app("flexnet://infrastructure/monitor", parse_delta(MONITOR_DELTA))
        controller.loop.run_until(controller.loop.now + 2.0)
        outcome = controller.migrate_app("flexnet://infrastructure/monitor", "nic2")
        record = controller.app("flexnet://infrastructure/monitor")
        assert record.devices == ["nic2"]
        assert outcome.result.reconfig.moved_elements == 2

    def test_migrate_to_unknown_device_rejected(self, controller):
        controller.deploy_app("flexnet://infrastructure/monitor", parse_delta(MONITOR_DELTA))
        controller.loop.run_until(controller.loop.now + 2.0)
        with pytest.raises(ControlPlaneError, match="unknown device"):
            controller.migrate_app("flexnet://infrastructure/monitor", "ghost")

    def test_unknown_app_operations_rejected(self, controller):
        with pytest.raises(UnknownAppError):
            controller.remove_app("flexnet://x/y")
        with pytest.raises(UnknownAppError):
            controller.scale_app("flexnet://x/y", 2.0)


class TestTenantLifecycle:
    def spec(self, name="t1", vlan=100):
        return TenantSpec(name=name, vlan_id=vlan, permission=Permission())

    def test_admit_creates_namespaced_app(self, controller):
        controller.admit_tenant(self.spec(), tenant_extension())
        assert "t1" in controller.tenant_names
        record = controller.app("flexnet://t1/extension")
        assert "t1__hits" in record.elements
        assert controller.program.has_map("t1__hits")

    def test_evict_trims_program(self, controller):
        controller.admit_tenant(self.spec(), tenant_extension())
        controller.loop.run_until(controller.loop.now + 2.0)
        outcome = controller.evict_tenant("t1")
        assert "t1" not in controller.tenant_names
        assert not controller.program.has_map("t1__hits")
        assert "t1__hits" in outcome.result.changes.removed

    def test_two_tenants_coexist(self, controller):
        controller.admit_tenant(self.spec("t1", 100), tenant_extension())
        controller.loop.run_until(controller.loop.now + 2.0)
        controller.admit_tenant(self.spec("t2", 200), tenant_extension())
        assert controller.tenant_names == ["t1", "t2"]

    def test_evict_unknown_rejected(self, controller):
        with pytest.raises(ControlPlaneError):
            controller.evict_tenant("ghost")


class TestGcLoop:
    def test_removable_app_evicted_under_pressure(self):
        controller = make_controller()
        # shrink the switch so pressure is realistic
        controller.topology.device("sw1").target = drmt_switch(
            "sw1", sram_mb=1.2, tcam_mb=0.2, processors=6, alus=12
        )
        controller.devices["sw1"].target = controller.topology.device("sw1").target
        controller.install_infrastructure(
            base_infrastructure(acl_size=256, l2_size=512, l3_size=512, flow_entries=2048)
        )
        # deploy a big removable app that eats the switch
        big = parse_delta(
            """
            delta big {
              add map cache { key: ipv4.src, ipv4.dst; value: u64; max_entries: 60000; }
              add func cache_touch() {
                let v: u64 = map_get(cache, ipv4.src, ipv4.dst);
                map_put(cache, ipv4.src, ipv4.dst, v + 1);
              }
              insert cache_touch after count_flow;
            }
            """
        )
        controller.deploy_app(
            "flexnet://infrastructure/cache", big, sla=AppSla(removable=True)
        )
        controller.loop.run_until(controller.loop.now + 2.0)
        # now a second app needs room; GC should evict the cache app
        needy = parse_delta(
            """
            delta needy {
              add map need { key: ipv4.src, ipv4.dst; value: u64; max_entries: 60000; }
              add func need_touch() {
                let v: u64 = map_get(need, ipv4.src, ipv4.dst);
                map_put(need, ipv4.src, ipv4.dst, v + 1);
              }
              insert need_touch after count_flow;
            }
            """
        )
        outcome = controller.deploy_app("flexnet://infrastructure/needy", needy)
        assert outcome.compile_iterations >= 1
        # Either it fit outright on another tier, or GC evicted the cache.
        if outcome.gc_evicted:
            assert "flexnet://infrastructure/cache" in outcome.gc_evicted
            assert not controller.program.has_map("cache")


class TestReporting:
    def test_device_utilization_nonzero_on_host_device(self, controller):
        utilization = controller.device_utilization()
        assert utilization["sw1"] > 0
        assert utilization["h1"] == 0
