"""Raft edge cases: log conflicts, stale leaders, term safety."""


from repro.control.consensus import ControllerCluster, Role
from repro.simulator.engine import EventLoop


def make_cluster(n=5, seed=7):
    loop = EventLoop()
    return loop, ControllerCluster(loop, node_count=n, seed=seed)


def wait_for_leader(loop, cluster, deadline_s=8.0):
    deadline = loop.now + deadline_s
    while loop.now < deadline:
        loop.run_until(loop.now + 0.05)
        leader = cluster.leader()
        if leader is not None:
            return leader
    raise AssertionError("no leader elected")


class TestLogConflicts:
    def test_uncommitted_minority_entries_overwritten(self):
        """A leader partitioned into the minority keeps proposing; after
        heal, its uncommitted entries are replaced by the majority log
        (Raft's log-matching property)."""
        loop, cluster = make_cluster(5)
        old_leader = wait_for_leader(loop, cluster)
        node_ids = sorted(cluster.nodes)
        minority = {old_leader.node_id, next(i for i in node_ids if i != old_leader.node_id)}
        majority = set(node_ids) - minority
        cluster.bus.partition(minority, majority)

        # Old leader appends entries it can never commit.
        old_leader.propose("doomed-1")
        old_leader.propose("doomed-2")
        loop.run_until(loop.now + 1.0)
        assert old_leader.commit_index < old_leader.last_log_index

        # Majority elects a new leader and commits real work.
        new_leader = None
        deadline = loop.now + 8.0
        while loop.now < deadline:
            loop.run_until(loop.now + 0.05)
            candidates = [
                cluster.nodes[i] for i in majority
                if cluster.nodes[i].role is Role.LEADER
            ]
            if candidates:
                new_leader = max(candidates, key=lambda n: n.current_term)
                break
        assert new_leader is not None
        new_leader.propose("committed-1")
        loop.run_until(loop.now + 1.0)

        cluster.bus.heal()
        loop.run_until(loop.now + 3.0)

        # The doomed entries are gone from the healed old leader's
        # committed state; the majority's entry is everywhere.
        assert "doomed-1" not in old_leader.applied_commands
        assert "committed-1" in old_leader.applied_commands

    def test_terms_monotone_per_node(self):
        loop, cluster = make_cluster(3)
        leader = wait_for_leader(loop, cluster)
        terms_before = {i: n.current_term for i, n in cluster.nodes.items()}
        cluster.bus.crash(leader.node_id)
        wait_for_leader(loop, cluster)
        cluster.bus.recover(leader.node_id)
        loop.run_until(loop.now + 2.0)
        for node_id, node in cluster.nodes.items():
            assert node.current_term >= terms_before[node_id]


class TestSafetyUnderChaos:
    def test_applied_prefixes_consistent(self):
        """State-machine safety: any two nodes' applied command lists are
        prefixes of one another, across crashes and partitions."""
        loop, cluster = make_cluster(5, seed=11)
        wait_for_leader(loop, cluster)
        node_ids = sorted(cluster.nodes)

        sequence = 0
        for round_index in range(4):
            for _ in range(3):
                cluster.submit(sequence)
                sequence += 1
                loop.run_until(loop.now + 0.1)
            if round_index == 1:
                cluster.bus.partition(set(node_ids[:2]), set(node_ids[2:]))
                loop.run_until(loop.now + 1.5)
            if round_index == 2:
                cluster.bus.heal()
                loop.run_until(loop.now + 1.5)
        loop.run_until(loop.now + 3.0)

        applied_lists = [node.applied_commands for node in cluster.nodes.values()]
        applied_lists.sort(key=len)
        for shorter, longer in zip(applied_lists, applied_lists[1:]):
            assert longer[: len(shorter)] == shorter

    def test_no_committed_entry_lost_across_leader_changes(self):
        loop, cluster = make_cluster(3, seed=5)
        for round_index in range(3):
            leader = wait_for_leader(loop, cluster)
            cluster.submit(f"cmd-{round_index}")
            loop.run_until(loop.now + 1.0)
            committed = set(map(str, cluster.committed_commands()))
            assert f"cmd-{round_index}" in committed
            cluster.bus.crash(leader.node_id)
            wait_for_leader(loop, cluster)
            cluster.bus.recover(leader.node_id)
            loop.run_until(loop.now + 1.0)
        final = list(map(str, cluster.committed_commands()))
        for round_index in range(3):
            assert f"cmd-{round_index}" in final
