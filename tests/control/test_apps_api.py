"""App-level abstraction tests (URIs, records, SLAs)."""

import pytest

from repro.control.apps_api import AppRecord, AppSla, AppUri
from repro.errors import UnknownAppError


class TestAppUri:
    def test_parse_roundtrip(self):
        uri = AppUri.parse("flexnet://tenant1/ddos-defense")
        assert uri.owner == "tenant1"
        assert uri.name == "ddos-defense"
        assert str(uri) == "flexnet://tenant1/ddos-defense"

    def test_missing_scheme_rejected(self):
        with pytest.raises(UnknownAppError):
            AppUri.parse("http://a/b")

    def test_missing_name_rejected(self):
        with pytest.raises(UnknownAppError):
            AppUri.parse("flexnet://owner-only")

    def test_empty_owner_rejected(self):
        with pytest.raises(UnknownAppError):
            AppUri.parse("flexnet:///name")


class TestAppRecord:
    def test_footprint_refresh(self):
        record = AppRecord(
            uri=AppUri(owner="o", name="n"),
            elements={"t1", "f1", "m1"},
        )
        record.refresh_footprint({"t1": "sw1", "f1": "nic1", "m1": "nic1", "other": "h1"})
        assert record.footprint == {"sw1": ["t1"], "nic1": ["f1", "m1"]}
        assert record.devices == ["nic1", "sw1"]

    def test_unplaced_elements_excluded(self):
        record = AppRecord(uri=AppUri(owner="o", name="n"), elements={"ghost"})
        record.refresh_footprint({})
        assert record.footprint == {}

    def test_sla_defaults(self):
        sla = AppSla()
        assert not sla.removable
        assert sla.max_latency_ns is None
