"""Raft consensus tests (E11 foundations)."""

import pytest

from repro.control.consensus import ControllerCluster, Role
from repro.errors import ConsensusError
from repro.simulator.engine import EventLoop


def make_cluster(n=3, seed=0):
    loop = EventLoop()
    cluster = ControllerCluster(loop, node_count=n, seed=seed)
    return loop, cluster


def run_until_leader(loop, cluster, deadline=5.0, step=0.05):
    time = loop.now
    while time < deadline:
        time += step
        loop.run_until(time)
        if cluster.leader() is not None:
            return cluster.leader()
    return cluster.leader()


class TestElection:
    def test_leader_elected(self):
        loop, cluster = make_cluster()
        leader = run_until_leader(loop, cluster)
        assert leader is not None
        assert leader.role is Role.LEADER

    def test_exactly_one_leader_per_term(self):
        loop, cluster = make_cluster(5)
        run_until_leader(loop, cluster)
        loop.run_until(loop.now + 1.0)
        leaders = [n for n in cluster.nodes.values() if n.role is Role.LEADER]
        terms = {n.current_term for n in leaders}
        assert len(leaders) >= 1
        by_term = {}
        for node in leaders:
            by_term.setdefault(node.current_term, []).append(node.node_id)
        for term, ids in by_term.items():
            assert len(ids) == 1

    def test_leader_reelected_after_crash(self):
        loop, cluster = make_cluster()
        first = run_until_leader(loop, cluster)
        cluster.bus.crash(first.node_id)
        second = run_until_leader(loop, cluster, deadline=loop.now + 5.0)
        assert second is not None
        assert second.node_id != first.node_id
        assert second.current_term > first.current_term

    def test_minority_partition_cannot_elect(self):
        loop, cluster = make_cluster(5)
        run_until_leader(loop, cluster)
        node_ids = sorted(cluster.nodes)
        minority = set(node_ids[:2])
        majority = set(node_ids[2:])
        cluster.bus.partition(minority, majority)
        loop.run_until(loop.now + 3.0)
        for node_id in minority:
            node = cluster.nodes[node_id]
            # a minority node may become candidate but never leader with
            # a term that wins: it cannot gather 3 votes.
            if node.role is Role.LEADER:
                # stale leadership from before the partition is possible
                # only if it was the old leader; it cannot commit though.
                assert node_id in minority


class TestReplication:
    def test_command_committed_on_all_nodes(self):
        loop, cluster = make_cluster()
        run_until_leader(loop, cluster)
        assert cluster.submit({"op": "deploy", "app": "fw"})
        loop.run_until(loop.now + 1.0)
        for node in cluster.nodes.values():
            assert {"op": "deploy", "app": "fw"} in node.applied_commands

    def test_commands_applied_in_order(self):
        loop, cluster = make_cluster()
        run_until_leader(loop, cluster)
        for index in range(5):
            assert cluster.submit(index)
        loop.run_until(loop.now + 1.0)
        assert cluster.committed_commands() == [0, 1, 2, 3, 4]

    def test_non_leader_propose_rejected(self):
        loop, cluster = make_cluster()
        leader = run_until_leader(loop, cluster)
        follower = next(
            n for n in cluster.nodes.values() if n.node_id != leader.node_id
        )
        with pytest.raises(ConsensusError):
            follower.propose("nope")

    def test_submit_without_leader_returns_false(self):
        loop, cluster = make_cluster()
        # crash everyone -> no leader reachable
        for node_id in cluster.nodes:
            cluster.bus.crash(node_id)
        assert not cluster.submit("x")

    def test_progress_with_one_node_down(self):
        loop, cluster = make_cluster(3)
        leader = run_until_leader(loop, cluster)
        victim = next(
            n for n in cluster.nodes.values() if n.node_id != leader.node_id
        )
        cluster.bus.crash(victim.node_id)
        assert cluster.submit("survives")
        loop.run_until(loop.now + 1.0)
        assert "survives" in cluster.committed_commands()

    def test_recovered_node_catches_up(self):
        loop, cluster = make_cluster(3)
        leader = run_until_leader(loop, cluster)
        victim = next(
            n for n in cluster.nodes.values() if n.node_id != leader.node_id
        )
        cluster.bus.crash(victim.node_id)
        cluster.submit("while-down")
        loop.run_until(loop.now + 1.0)
        cluster.bus.recover(victim.node_id)
        loop.run_until(loop.now + 2.0)
        assert "while-down" in victim.applied_commands


class TestPartitions:
    def test_majority_side_keeps_committing(self):
        loop, cluster = make_cluster(5)
        run_until_leader(loop, cluster)
        node_ids = sorted(cluster.nodes)
        cluster.bus.partition(set(node_ids[:2]), set(node_ids[2:]))
        loop.run_until(loop.now + 3.0)
        majority_nodes = [cluster.nodes[i] for i in node_ids[2:]]
        majority_leader = [n for n in majority_nodes if n.role is Role.LEADER]
        assert majority_leader
        majority_leader[0].propose("partitioned-commit")
        loop.run_until(loop.now + 1.0)
        assert "partitioned-commit" in majority_leader[0].applied_commands

    def test_heal_reconverges(self):
        loop, cluster = make_cluster(5)
        run_until_leader(loop, cluster)
        node_ids = sorted(cluster.nodes)
        cluster.bus.partition(set(node_ids[:2]), set(node_ids[2:]))
        loop.run_until(loop.now + 2.0)
        cluster.bus.heal()
        loop.run_until(loop.now + 3.0)
        leader = cluster.leader()
        assert leader is not None
        cluster.submit("after-heal")
        loop.run_until(loop.now + 1.0)
        applied = [
            "after-heal" in node.applied_commands for node in cluster.nodes.values()
        ]
        assert sum(applied) >= 3  # majority has it
