"""Routing/placement co-design tests (§3.3 detours)."""

import pytest

from repro.apps.base import base_infrastructure
from repro.control.controller import FlexNetController
from repro.control.topology import TopologyView
from repro.errors import PlacementError, UnknownDeviceError
from repro.lang.delta import parse_delta
from repro.targets import drmt_switch, host

BIG_APP = """
delta big {
  add map big_state { key: ipv4.src, ipv4.dst; value: u64; max_entries: 150000; }
  add func big_touch() {
    let v: u64 = map_get(big_state, ipv4.src, ipv4.dst);
    map_put(big_state, ipv4.src, ipv4.dst, v + 1);
  }
  insert big_touch after count_flow;
}
"""


def diamond_controller() -> FlexNetController:
    """h1 - swA - h2 with an off-path swB reachable from both sides.

    swA is small; swB is roomy. Hosts are tiny, so a big app only fits
    via the detour through swB.
    """
    controller = FlexNetController()
    controller.add_device("h1", host("h1", cores=1, memory_mb=1.0, kernel_maps=2))
    controller.add_device(
        "swA", drmt_switch("swA", sram_mb=2.0, tcam_mb=0.3, processors=8, alus=16)
    )
    controller.add_device("swB", drmt_switch("swB"))
    controller.add_device("h2", host("h2", cores=1, memory_mb=1.0, kernel_maps=2))
    controller.add_link("h1", "swA", 1e-6)
    controller.add_link("swA", "h2", 1e-6)
    controller.add_link("h1", "swB", 5e-6)
    controller.add_link("swB", "h2", 5e-6)
    controller.set_datapath_endpoints("h1", "h2")
    controller.install_infrastructure(
        base_infrastructure(acl_size=128, l2_size=256, l3_size=256, flow_entries=2048)
    )
    return controller


class TestDetourPath:
    def test_forced_via(self):
        view = TopologyView()
        for name in ("a", "b", "c", "d"):
            view.add_device(name, None)
        view.add_link("a", "b")
        view.add_link("b", "d")
        view.add_link("a", "c")
        view.add_link("c", "d")
        assert view.detour_path("a", "d", "c") == ["a", "c", "d"]

    def test_loop_rejected(self):
        view = TopologyView()
        for name in ("a", "b", "c"):
            view.add_device(name, None)
        view.add_link("a", "b")
        view.add_link("b", "c")
        # via 'c' from a to b: a-b-c then c-b revisits b
        with pytest.raises(UnknownDeviceError, match="revisits"):
            view.detour_path("a", "b", "c")


class TestControllerDetour:
    def test_default_path_avoids_detour(self):
        controller = diamond_controller()
        assert controller.datapath_path == ["h1", "swA", "h2"]

    def test_big_app_fails_without_detour(self):
        controller = diamond_controller()
        with pytest.raises(PlacementError):
            controller.deploy_app(
                "flexnet://infrastructure/big", parse_delta(BIG_APP)
            )

    def test_detour_reroutes_and_places(self):
        controller = diamond_controller()
        outcome = controller.deploy_app(
            "flexnet://infrastructure/big", parse_delta(BIG_APP), allow_detour=True
        )
        assert controller.datapath_path == ["h1", "swB", "h2"]
        record = controller.app("flexnet://infrastructure/big")
        assert record.devices == ["swB"]
        # the network path now runs through swB
        assert controller.network.path("datapath") == ["h1", "swB", "h2"]

    def test_traffic_flows_after_detour(self):
        from repro.simulator.flowgen import constant_rate
        from repro.simulator.metrics import RunMetrics

        controller = diamond_controller()
        controller.deploy_app(
            "flexnet://infrastructure/big", parse_delta(BIG_APP), allow_detour=True
        )
        controller.loop.run_until(controller.loop.now + 2.0)
        metrics = RunMetrics()
        start = controller.loop.now
        for timed in constant_rate(200, 1.0, start_s=start):
            controller.network.inject(timed.packet, "datapath", timed.time, metrics)
        controller.loop.run_until(start + 3.0)
        assert metrics.delivered == 200
        assert metrics.lost_by_infrastructure == 0
        # the big app actually processed traffic on swB
        swb = controller.devices["swB"].active_instance
        assert len(swb.maps.state("big_state")) > 0
