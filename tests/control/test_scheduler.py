"""Consistent-update scheduler tests."""

import pytest

from repro.control.scheduler import plan_schedule
from repro.runtime.consistency import ConsistencyLevel


class TestPerDevice:
    def test_all_start_together(self):
        schedule = plan_schedule(
            ConsistencyLevel.PER_PACKET_PER_DEVICE,
            ["a", "b", "c"],
            {"a": 0.3, "b": 0.2, "c": 0.1},
        )
        assert schedule.stagger == {"a": 0.0, "b": 0.0, "c": 0.0}
        assert schedule.window_s == {"a": 0.3, "b": 0.2, "c": 0.1}

    def test_makespan(self):
        schedule = plan_schedule(
            ConsistencyLevel.PER_PACKET_PER_DEVICE, ["a", "b"], {"a": 0.3, "b": 0.5}
        )
        assert schedule.makespan_s == pytest.approx(0.5)


class TestPerPacketPath:
    def test_windows_stretched_downstream(self):
        schedule = plan_schedule(
            ConsistencyLevel.PER_PACKET_PATH,
            ["a", "b", "c"],
            {"a": 0.4, "b": 0.1, "c": 0.1},
            guard_s=0.01,
        )
        # all start together
        assert set(schedule.stagger.values()) == {0.0}
        # downstream windows outlast the decision window
        assert schedule.window_s["b"] >= 0.4 + 0.01
        assert schedule.window_s["c"] >= 0.4 + 0.02

    def test_own_cost_respected_when_larger(self):
        schedule = plan_schedule(
            ConsistencyLevel.PER_PACKET_PATH,
            ["a", "b"],
            {"a": 0.1, "b": 5.0},
        )
        assert schedule.window_s["b"] == pytest.approx(5.0)

    def test_empty_path(self):
        schedule = plan_schedule(ConsistencyLevel.PER_PACKET_PATH, [], {})
        assert schedule.stagger == {}
        assert schedule.makespan_s == 0.0


class TestPerFlow:
    def test_same_shape_as_path(self):
        flow = plan_schedule(
            ConsistencyLevel.PER_FLOW, ["a", "b"], {"a": 0.2, "b": 0.2}
        )
        path = plan_schedule(
            ConsistencyLevel.PER_PACKET_PATH, ["a", "b"], {"a": 0.2, "b": 0.2}
        )
        assert flow.stagger == path.stagger
        assert flow.window_s == path.window_s
