"""FlexScale runner tests: differential identity, merge, failure modes.

The load-bearing property is *bit-identity*: a same-seed sharded run
must produce byte-for-byte the traffic report of the single-process
engine. Each arm gets a fresh net and a fresh (same-seed) workload
because runs mutate device state and packet objects.
"""

from __future__ import annotations

import json

import pytest

from repro.apps import base_infrastructure
from repro.errors import SimulationError
from repro.scale import plan_shards, reference_run, run_sharded
from repro.scale.runner import build_engines
from repro.scale.shard import run_inline
from repro.scale.workload import e20_workload, pod_fabric
from repro.simulator.packet import reset_packet_ids

DRAIN_S = 0.05


def _arm(pods: int = 2):
    """One experiment arm: fresh fabric + program + same-seed workload."""
    reset_packet_ids()
    net = pod_fabric(pods)
    net.install(base_infrastructure())
    workload = e20_workload(250, rate_pps=20_000.0, seed=5)
    return net, workload


def _canon(data: dict) -> str:
    return json.dumps(data, sort_keys=True)


def _reference_json(pods: int = 2) -> str:
    net, workload = _arm(pods)
    return _canon(reference_run(net, workload, drain_s=DRAIN_S).to_dict())


class TestDifferentialIdentity:
    def test_inline_two_shards_byte_identical(self):
        expected = _reference_json()
        net, workload = _arm()
        report = run_sharded(
            net, workload, 2, backend="inline", seed=11, drain_s=DRAIN_S
        )
        assert _canon(report.traffic_dict()) == expected
        assert report.handoffs > 0  # the boundary was actually exercised

    def test_process_two_shards_byte_identical(self):
        expected = _reference_json()
        net, workload = _arm()
        report = run_sharded(
            net, workload, 2, backend="process", seed=11, drain_s=DRAIN_S
        )
        assert _canon(report.traffic_dict()) == expected
        assert report.backend == "process"

    def test_single_shard_byte_identical(self):
        expected = _reference_json()
        net, workload = _arm()
        report = run_sharded(
            net, workload, 1, backend="inline", seed=11, drain_s=DRAIN_S
        )
        assert _canon(report.traffic_dict()) == expected
        assert report.handoffs == 0

    def test_three_pods_three_shards_byte_identical(self):
        expected = _reference_json(pods=3)
        net, workload = _arm(pods=3)
        report = run_sharded(
            net, workload, 3, backend="inline", seed=11, drain_s=DRAIN_S
        )
        assert _canon(report.traffic_dict()) == expected


class TestBatchedSharding:
    """FlexBatch under FlexScale: batching amortizes within a protocol
    window, never across one, so a batched sharded run stays
    byte-identical to a batched unsharded reference."""

    def test_batched_two_shards_byte_identical(self):
        net, workload = _arm()
        net.engine(batch=True)
        expected = _canon(reference_run(net, workload, drain_s=DRAIN_S).to_dict())
        net, workload = _arm()
        net.engine(batch=True)
        report = run_sharded(
            net, workload, 2, backend="inline", seed=11, drain_s=DRAIN_S
        )
        assert _canon(report.traffic_dict()) == expected
        assert report.handoffs > 0

    def test_batched_matches_unbatched_traffic(self):
        expected = _reference_json()
        net, workload = _arm()
        net.engine(batch=True)
        report = run_sharded(
            net, workload, 2, backend="inline", seed=11, drain_s=DRAIN_S
        )
        assert _canon(report.traffic_dict()) == expected

    def test_batch_metrics_exported_when_batching(self):
        net, workload = _arm()
        net.engine(batch=True)
        report = run_sharded(
            net, workload, 2, backend="inline", seed=11, drain_s=DRAIN_S
        )
        text = report.registry.to_prometheus()
        assert "flexnet_batch_packets_total" in text
        assert "flexnet_batch_batches_total" in text


class TestDeterminism:
    def test_same_seed_sharded_runs_identical(self):
        reports = []
        for _ in range(2):
            net, workload = _arm()
            reports.append(
                run_sharded(
                    net, workload, 2, backend="inline", seed=11, drain_s=DRAIN_S
                )
            )
        assert _canon(reports[0].to_dict()) == _canon(reports[1].to_dict())
        assert (
            reports[0].registry.to_prometheus()
            == reports[1].registry.to_prometheus()
        )

    def test_inline_and_process_agree_entirely(self):
        net, workload = _arm()
        inline = run_sharded(
            net, workload, 2, backend="inline", seed=11, drain_s=DRAIN_S
        )
        net, workload = _arm()
        process = run_sharded(
            net, workload, 2, backend="process", seed=11, drain_s=DRAIN_S
        )
        assert _canon(inline.traffic_dict()) == _canon(process.traffic_dict())

        # Window/handoff cadence is a protocol diagnostic and may differ
        # between backends, and the FlexMend supervision families exist
        # only under the process backend; every *traffic* metric family
        # must still agree exactly.
        def invariant(registry) -> str:
            return "\n".join(
                line
                for line in registry.to_prometheus().splitlines()
                if "flexnet_scale_" not in line and "flexnet_mend_" not in line
            )

        assert invariant(inline.registry) == invariant(process.registry)


class TestMergedObservability:
    def test_registry_carries_device_and_scale_families(self):
        net, workload = _arm()
        report = run_sharded(
            net, workload, 2, backend="inline", seed=11, drain_s=DRAIN_S
        )
        text = report.registry.to_prometheus()
        assert "flexnet_device_packets_total" in text
        assert "flexnet_scale_windows_total" in text
        assert "flexnet_scale_handoffs_total" in text

    def test_report_sections(self):
        net, workload = _arm()
        report = run_sharded(
            net, workload, 2, backend="inline", seed=11, drain_s=DRAIN_S
        )
        data = report.to_dict()
        assert data["traffic"]["metrics"]["sent"] == 250
        assert data["sharding"]["backend"] == "inline"
        assert len(data["sharding"]["per_shard"]) == 2
        assert data["sharding"]["plan"]["assignment"]
        assert "byte" not in report.summary()  # summary renders without error

    def test_process_backend_reports_cpu_seconds(self):
        net, workload = _arm()
        report = run_sharded(
            net, workload, 2, backend="process", seed=11, drain_s=DRAIN_S
        )
        assert report.max_shard_cpu_s is not None
        assert report.max_shard_cpu_s >= 0.0
        # Measurement-only: the deterministic export must not carry it.
        assert "cpu" not in _canon(report.to_dict())


class TestFlexNetFacade:
    def test_scale_generates_workload_and_runs(self):
        reset_packet_ids()
        net = pod_fabric(2)
        net.install(base_infrastructure())
        report = net.scale(
            shards=2, backend="inline", rate_pps=5000.0, duration_s=0.02
        )
        assert report.metrics.sent > 0
        assert report.metrics.delivered == report.metrics.sent
        assert len(report.plan.populated_shards) == 2


class TestFailureModes:
    def test_drain_too_small_fails_loudly(self):
        net, workload = _arm()
        with pytest.raises(SimulationError):
            run_sharded(
                net, workload, 2, backend="inline", seed=11, drain_s=1e-6
            )

    def test_unknown_backend_rejected(self):
        net, workload = _arm()
        with pytest.raises(SimulationError):
            run_sharded(net, workload, 2, backend="threads", drain_s=DRAIN_S)

    def test_inline_engines_expose_protocol_state(self):
        net, workload = _arm()
        plan = plan_shards(net.controller, 2, seed=11)
        engines = build_engines(net, plan, workload, drain_s=DRAIN_S)
        run_inline(engines)
        assert all(engine.finished() for engine in engines.values())
        total_out = sum(engine.handoffs_out for engine in engines.values())
        total_in = sum(engine.handoffs_in for engine in engines.values())
        assert total_out == total_in > 0
