"""FlexMend tests: sequenced transport, shard checkpoints, supervised
restart, and failure-path propagation.

The load-bearing property mirrors E23: a process-backend run with
injected worker faults must produce a ``traffic`` section byte-identical
to the fault-free run and to the single-process reference. The unit
layers below it (transport framing, checkpoint/restore) are tested
in-process so a protocol regression points at the guilty mechanism, not
just at a diverged end-to-end hash.
"""

from __future__ import annotations

import dataclasses
import json
import queue
import time

import pytest

from repro import limits
from repro.apps import base_infrastructure
from repro.errors import SimulationError
from repro.faults import (
    FaultPlan,
    HandoffDrop,
    HandoffDup,
    WorkerCrash,
    WorkerStall,
)
from repro.scale import plan_shards, reference_run, run_sharded
from repro.scale.mend import (
    MendTransport,
    WorkerFaultInjector,
    checkpoint_engine,
    restore_engine,
    run_scale_chaos,
)
from repro.scale.shard import ShardEngine, run_inline
from repro.scale.workload import e20_workload, pod_fabric
from repro.simulator.packet import reset_packet_ids

DRAIN_S = 0.05


def _arm(pods: int = 2, packets: int = 150):
    reset_packet_ids()
    net = pod_fabric(pods)
    net.install(base_infrastructure())
    workload = e20_workload(packets, rate_pps=20_000.0, seed=5)
    return net, workload


def _canon(data: dict) -> str:
    return json.dumps(data, sort_keys=True)


def _reference_json(pods: int = 2, packets: int = 150) -> str:
    net, workload = _arm(pods, packets)
    return _canon(reference_run(net, workload, drain_s=DRAIN_S).to_dict())


# -- fault plan categories ---------------------------------------------------


class TestWorkerFaultCategories:
    def test_describe_lines(self):
        plan = FaultPlan(
            seed=11,
            worker_crashes=(WorkerCrash(shard=0, window=4),),
            worker_stalls=(WorkerStall(shard=1, window=2, stall_s=0.5),),
            handoff_drops=(HandoffDrop(shard=0, probability=0.2),),
            handoff_dups=(HandoffDup(shard=1, probability=0.1),),
        )
        lines = plan.describe()
        assert "worker crash shard 0 at window 4" in lines
        assert "worker stall shard 1 at window 2 (+0.5s wall)" in lines
        assert "handoff drop shard 0: p=0.2" in lines
        assert "handoff dup shard 1: p=0.1" in lines

    def test_crash_fires_exactly_once(self):
        plan = FaultPlan(seed=11, worker_crashes=(WorkerCrash(shard=0, window=4),))
        injector = WorkerFaultInjector(plan, 0)
        assert injector.crash_at(4) == 0
        assert injector.crash_at(4) is None  # consumed

    def test_fired_set_survives_incarnations(self):
        # The supervisor passes the fired set to the respawned worker so
        # the same crash spec can never kill the restored incarnation.
        plan = FaultPlan(seed=11, worker_crashes=(WorkerCrash(shard=0, window=4),))
        respawned = WorkerFaultInjector(plan, 0, fired=frozenset({("crash", 0)}))
        assert respawned.crash_at(4) is None

    def test_specs_target_their_shard_only(self):
        plan = FaultPlan(seed=11, worker_crashes=(WorkerCrash(shard=0, window=4),))
        assert WorkerFaultInjector(plan, 1).crash_at(4) is None

    def test_probabilistic_streams_are_per_seed_deterministic(self):
        plan = FaultPlan(seed=11, handoff_drops=(HandoffDrop(shard=0, probability=0.5),))

        def draw_sequence() -> list[bool]:
            injector = WorkerFaultInjector(plan, 0)
            return [injector.drop_batch() for _ in range(32)]

        draws = [draw_sequence(), draw_sequence()]
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])


# -- sequenced transport -----------------------------------------------------


def _transports():
    """A sender (shard 0) / receiver (shard 1) pair over plain queues."""
    inboxes = {0: queue.Queue(), 1: queue.Queue()}
    sender = MendTransport(0, inboxes)
    receiver = MendTransport(1, inboxes, in_neighbors=(0,))
    return inboxes, sender, receiver


class TestMendTransport:
    def test_send_assigns_sequences_and_retains(self):
        inboxes, sender, _ = _transports()
        sender.send(1, ["a"])
        sender.send(1, ["b"])
        assert sender.sent_seq[1] == 2
        assert sender.retained[1] == {1: ("a",), 2: ("b",)}
        assert inboxes[1].get_nowait() == ("batch", 0, 1, ("a",))

    def test_release_is_round_gated_and_in_order(self):
        _, sender, receiver = _transports()
        receiver.ingest(("batch", 0, 1, ("a",)))
        receiver.ingest(("batch", 0, 2, ("b",)))
        assert receiver.ready(1, (0,))
        delivered: list = []
        receiver.release(1, delivered.append)
        assert delivered == ["a"]  # round 1 releases seq 1 only
        receiver.release(2, delivered.append)
        assert delivered == ["a", "b"]
        assert receiver.delivered[0] == 2

    def test_gap_triggers_immediate_nack(self):
        inboxes, _, receiver = _transports()
        receiver.ingest(("batch", 0, 2, ("b",)))
        assert inboxes[0].get_nowait() == ("nack", 1, 1)
        assert not receiver.ready(1, (0,))  # the gap blocks the round
        receiver.ingest(("batch", 0, 1, ("a",)))
        assert receiver.ready(2, (0,))
        assert receiver.stats.nacks_sent == 1

    def test_duplicates_dropped_by_sequence(self):
        _, _, receiver = _transports()
        receiver.ingest(("batch", 0, 1, ("a",)))
        receiver.ingest(("batch", 0, 1, ("a",)))  # still buffered
        receiver.release(1, lambda _message: None)
        receiver.ingest(("batch", 0, 1, ("a",)))  # already delivered
        assert receiver.stats.duplicates_dropped == 2
        assert receiver.stats.batches_delivered == 1

    def test_nack_served_from_retention(self):
        inboxes, sender, _ = _transports()
        sender.send(1, ["a"])
        inboxes[1].get_nowait()  # the original, lost in this scenario
        sender.ingest(("nack", 1, 1))
        assert inboxes[1].get_nowait() == ("batch", 0, 1, ("a",))
        assert sender.stats.retransmits_served == 1

    def test_replay_resends_everything_past_watermark(self):
        inboxes, sender, _ = _transports()
        for payload in (["a"], ["b"], ["c"]):
            sender.send(1, payload)
            inboxes[1].get_nowait()
        sender.ingest(("replay", 1, 1))
        assert inboxes[1].get_nowait() == ("batch", 0, 2, ("b",))
        assert inboxes[1].get_nowait() == ("batch", 0, 3, ("c",))
        assert sender.stats.replays_served == 2

    def test_trim_drops_retention_up_to_watermark(self):
        inboxes, sender, _ = _transports()
        for payload in (["a"], ["b"]):
            sender.send(1, payload)
            inboxes[1].get_nowait()
        sender.ingest(("trim", 1, 1))
        assert sender.retained[1] == {2: ("b",)}

    def test_checkpoint_restore_preserves_watermarks(self):
        inboxes, _, receiver = _transports()
        receiver.ingest(("batch", 0, 1, ("a",)))
        receiver.ingest(("batch", 0, 2, ("b",)))
        receiver.release(2, lambda _message: None)
        ckpt = receiver.checkpoint()
        assert ckpt.expected == {0: 3}
        restored = MendTransport(1, inboxes, in_neighbors=(0,))
        restored.restore(ckpt)
        assert restored.delivered == {0: 2}
        restored.ingest(("batch", 0, 2, ("b",)))  # replayed history
        assert restored.stats.duplicates_dropped == 1

    def test_unknown_frame_kind_rejected(self):
        _, _, receiver = _transports()
        with pytest.raises(SimulationError):
            receiver.ingest(("gossip", 0, 1, ()))


# -- shard checkpoints -------------------------------------------------------


def _single_shard_engine(inject: bool = True) -> ShardEngine:
    """A 1-shard engine over a fresh 2-pod fabric (tracked in-flight
    arrivals, as the process workers run when checkpointing is armed)."""
    net, workload = _arm(packets=80)
    plan = plan_shards(net.controller, 1, seed=11)
    end_time = max(timed.time for timed in workload) + DRAIN_S
    engine = ShardEngine(
        0,
        plan,
        net.controller.devices,
        end_time,
        topology=net.controller.network,
        track_inflight=True,
    )
    if inject:
        hops = net.controller.network.path("datapath")
        for timed in workload:
            engine.inject(timed.packet, hops, timed.time)
    return engine


class TestEngineCheckpoint:
    def test_genesis_roundtrip_is_bit_identical(self):
        # Arm A: run straight through.
        baseline = _single_shard_engine()
        run_inline({0: baseline})
        expected = _canon(baseline.result().metrics.to_dict())

        # Arm B: checkpoint post-inject, restore into a *fresh* engine
        # (fresh fabric, fresh event loop), run the restored copy.
        source = _single_shard_engine()
        ckpt = checkpoint_engine(source)
        restored = _single_shard_engine(inject=False)
        restore_engine(restored, ckpt)
        run_inline({0: restored})
        assert _canon(restored.result().metrics.to_dict()) == expected

    def test_checkpoint_serializes_injected_arrivals(self):
        engine = _single_shard_engine()
        ckpt = checkpoint_engine(engine)
        assert len(ckpt.inflight) == 80
        times = [item[0] for item in ckpt.inflight]
        assert times == sorted(times)

    def test_restore_refuses_wrong_shard(self):
        ckpt = checkpoint_engine(_single_shard_engine())
        fresh = _single_shard_engine(inject=False)
        with pytest.raises(SimulationError, match="shard"):
            restore_engine(fresh, dataclasses.replace(ckpt, shard_id=5))

    def test_restore_refuses_used_engine(self):
        ckpt = checkpoint_engine(_single_shard_engine())
        used = _single_shard_engine()  # has pending loop events
        with pytest.raises(SimulationError, match="fresh"):
            restore_engine(used, ckpt)


# -- supervised recovery (process backend, end-to-end) -----------------------


class TestSupervisedRecovery:
    def test_crash_recovery_is_byte_identical(self):
        expected = _reference_json()
        chaos = FaultPlan(seed=11, worker_crashes=(WorkerCrash(shard=0, window=3),))
        net, workload = _arm()
        report = run_sharded(
            net,
            workload,
            2,
            backend="process",
            seed=11,
            drain_s=DRAIN_S,
            chaos=chaos,
        )
        assert _canon(report.traffic_dict()) == expected
        assert report.mend is not None
        assert report.mend.restarts == 1
        assert report.mend.crashes == [{"shard": 0, "window": 3}]
        assert report.mend.checkpoints_committed > 0

    def test_handoff_loss_and_dup_recovery(self, monkeypatch):
        # Fast impatience so a dropped final frame re-NACKs quickly; the
        # forked workers inherit the patched value.
        monkeypatch.setattr(limits, "MEND_NACK_IMPATIENCE_S", 0.2)
        expected = _reference_json()
        chaos = FaultPlan(
            seed=11,
            handoff_drops=tuple(
                HandoffDrop(shard=shard, probability=0.3) for shard in range(2)
            ),
            handoff_dups=tuple(
                HandoffDup(shard=shard, probability=0.2) for shard in range(2)
            ),
        )
        net, workload = _arm()
        report = run_sharded(
            net,
            workload,
            2,
            backend="process",
            seed=11,
            drain_s=DRAIN_S,
            chaos=chaos,
        )
        assert _canon(report.traffic_dict()) == expected
        drops = sum(
            counters["fault_drops"]
            for counters in report.mend.per_shard.values()
        )
        assert drops > 0  # the faults actually fired

    def test_stall_detection_kills_and_restores(self, monkeypatch):
        # Staleness horizon shrunk for test speed; impatience shrunk
        # below it so workers *waiting* on the stalled shard keep
        # heartbeating and only the sleeping worker reads as stale.
        monkeypatch.setattr(limits, "MEND_HEARTBEAT_TIMEOUT_S", 2.0)
        monkeypatch.setattr(limits, "MEND_NACK_IMPATIENCE_S", 0.5)
        expected = _reference_json()
        chaos = FaultPlan(
            seed=11,
            worker_stalls=(WorkerStall(shard=0, window=3, stall_s=30.0),),
        )
        net, workload = _arm()
        report = run_sharded(
            net,
            workload,
            2,
            backend="process",
            seed=11,
            drain_s=DRAIN_S,
            chaos=chaos,
        )
        assert _canon(report.traffic_dict()) == expected
        assert report.mend.stall_kills == 1
        assert report.mend.stalls_injected == 1
        assert report.mend.restarts == 1

    def test_same_seed_chaos_reports_identical(self):
        chaos = FaultPlan(seed=11, worker_crashes=(WorkerCrash(shard=0, window=3),))
        reports = []
        for _ in range(2):
            net, workload = _arm()
            reports.append(
                run_sharded(
                    net,
                    workload,
                    2,
                    backend="process",
                    seed=11,
                    drain_s=DRAIN_S,
                    chaos=chaos,
                )
            )
        # The full deterministic export — including the mend section —
        # is byte-repeatable; wall-clock latencies live outside it.
        assert _canon(reports[0].to_dict()) == _canon(reports[1].to_dict())

    def test_chaos_requires_process_backend(self):
        net, workload = _arm()
        chaos = FaultPlan(seed=11, worker_crashes=(WorkerCrash(shard=0, window=3),))
        with pytest.raises(SimulationError, match="process backend"):
            run_sharded(
                net, workload, 2, backend="inline", drain_s=DRAIN_S, chaos=chaos
            )


class TestFailurePropagation:
    """Satellite: failure paths must fail *fast and loud* — shard id and
    traceback in the error, poison-pill teardown well under the old
    full-timeout hang."""

    def test_death_without_checkpoint_is_fatal_and_fast(self):
        chaos = FaultPlan(seed=11, worker_crashes=(WorkerCrash(shard=0, window=3),))
        net, workload = _arm()
        start = time.monotonic()
        with pytest.raises(SimulationError, match="no checkpoint to restore"):
            run_sharded(
                net,
                workload,
                2,
                backend="process",
                seed=11,
                drain_s=DRAIN_S,
                chaos=chaos,
                checkpoint_every=0,  # explicit opt-out
            )
        assert time.monotonic() - start < 20.0

    def test_restart_budget_exhaustion_is_fatal(self, monkeypatch):
        monkeypatch.setattr(limits, "MEND_MAX_RESTARTS", 0)
        chaos = FaultPlan(seed=11, worker_crashes=(WorkerCrash(shard=0, window=3),))
        net, workload = _arm()
        with pytest.raises(SimulationError, match="restart budget"):
            run_sharded(
                net,
                workload,
                2,
                backend="process",
                seed=11,
                drain_s=DRAIN_S,
                chaos=chaos,
            )

    def test_worker_error_carries_shard_and_traceback(self):
        # drain_s too small leaves events past the horizon; the worker's
        # result() raises and the supervisor relays shard + traceback.
        net, workload = _arm()
        start = time.monotonic()
        with pytest.raises(SimulationError) as excinfo:
            run_sharded(
                net, workload, 2, backend="process", seed=11, drain_s=1e-6
            )
        message = str(excinfo.value)
        assert "shard" in message and "failed" in message
        assert "Traceback" in message  # the worker's own stack, relayed
        assert time.monotonic() - start < 20.0

    def test_result_timeout_poisons_the_fleet(self, monkeypatch):
        # A zero result budget declares the wedge immediately; the
        # poison-pill broadcast must tear the fleet down in seconds, not
        # the join timeout per worker.
        monkeypatch.setattr(limits, "SCALE_RESULT_TIMEOUT_S", 0.0)
        net, workload = _arm()
        start = time.monotonic()
        with pytest.raises(SimulationError, match="timed out"):
            run_sharded(
                net, workload, 2, backend="process", seed=11, drain_s=DRAIN_S
            )
        assert time.monotonic() - start < 15.0


# -- harness + facade --------------------------------------------------------


class TestChaosHarness:
    def test_run_scale_chaos_three_arms_agree(self):
        chaos = FaultPlan(seed=11, worker_crashes=(WorkerCrash(shard=1, window=4),))

        def make_net():
            net = pod_fabric(2)
            net.install(base_infrastructure())
            return net

        def make_workload():
            return e20_workload(150, rate_pps=20_000.0, seed=5)

        outcome = run_scale_chaos(
            make_net, make_workload, 2, chaos, seed=11, drain_s=DRAIN_S
        )
        assert outcome.divergences == ()
        assert outcome.fault_lines == ("worker crash shard 1 at window 4",)
        assert outcome.chaos.mend.restarts == 1
        data = outcome.to_dict()
        assert data["divergences"] == []
        assert data["chaos"]["mend"]["crashes"] == [{"shard": 1, "window": 4}]
        assert "byte-identical" in outcome.summary()

    def test_facade_passes_chaos_through(self):
        reset_packet_ids()
        net = pod_fabric(2)
        net.install(base_infrastructure())
        chaos = FaultPlan(seed=11, worker_crashes=(WorkerCrash(shard=0, window=2),))
        report = net.scale(
            shards=2,
            backend="process",
            rate_pps=5000.0,
            duration_s=0.02,
            drain_s=DRAIN_S,
            chaos=chaos,
        )
        assert report.metrics.delivered == report.metrics.sent > 0
        assert report.mend is not None
        assert report.mend.restarts == 1
