"""FlexScale placement tests: fusion rules, balance, determinism."""

from __future__ import annotations

import pytest

from repro.analysis.corpus import bundled_programs
from repro.errors import SimulationError
from repro.scale.plan import plan_shards
from repro.scale.workload import (
    INTER_POD_LATENCY_S,
    pod_fabric,
)


class TestPodFabricPlan:
    def test_intra_pod_devices_fused(self):
        net = pod_fabric(4)
        plan = plan_shards(net.controller, 4, seed=11)
        for pod in range(4):
            shard = plan.shard_of(f"s{pod}")
            assert plan.shard_of(f"n{pod}a") == shard
            assert plan.shard_of(f"n{pod}b") == shard

    def test_four_pods_fill_four_shards(self):
        net = pod_fabric(4)
        plan = plan_shards(net.controller, 4, seed=11)
        assert plan.populated_shards == (0, 1, 2, 3)

    def test_lookahead_is_inter_pod_latency(self):
        net = pod_fabric(4)
        plan = plan_shards(net.controller, 4, seed=11)
        assert plan.lookahead_s
        assert all(
            latency == INTER_POD_LATENCY_S for latency in plan.lookahead_s.values()
        )
        # Neighbor links are symmetric on this fabric.
        for (src, dst) in plan.lookahead_s:
            assert (dst, src) in plan.lookahead_s

    def test_plan_is_deterministic(self):
        net = pod_fabric(3)
        first = plan_shards(net.controller, 3, seed=11)
        second = plan_shards(net.controller, 3, seed=11)
        assert first.to_dict() == second.to_dict()

    def test_every_device_assigned_exactly_once(self):
        net = pod_fabric(2)
        plan = plan_shards(net.controller, 2, seed=11)
        assert sorted(plan.assignment) == sorted(net.controller.devices)
        spanned = [name for unit in plan.units for name in unit]
        assert sorted(spanned) == sorted(plan.assignment)

    def test_single_shard_has_no_boundaries(self):
        net = pod_fabric(2)
        plan = plan_shards(net.controller, 1, seed=11)
        assert plan.populated_shards == (0,)
        assert plan.lookahead_s == {}

    def test_zero_shards_rejected(self):
        net = pod_fabric(1)
        with pytest.raises(SimulationError):
            plan_shards(net.controller, 0)


class TestSeedsAndFlows:
    def test_shard_rng_streams_are_independent(self):
        net = pod_fabric(2)
        plan = plan_shards(net.controller, 4, seed=11)
        seeds = [plan.shard_seed(shard) for shard in range(4)]
        assert len(set(seeds)) == 4
        assert seeds == [plan.shard_seed(shard) for shard in range(4)]

    def test_shard_for_flow_stable_and_in_range(self):
        net = pod_fabric(2)
        plan = plan_shards(net.controller, 4, seed=11)
        picks = [plan.shard_for_flow(10, 20), plan.shard_for_flow(10, 20)]
        assert picks[0] == picks[1]
        assert all(0 <= plan.shard_for_flow(ip, 7) < 4 for ip in range(64))


class _Link:
    def __init__(self, latency_s: float):
        self.latency_s = latency_s


class _StubNetwork:
    def __init__(self, links: dict):
        self._links = links


class _StubCompilePlan:
    def __init__(self, placement: dict):
        self.placement = placement


class _StubController:
    """The minimal surface plan_shards reads: devices, topology links,
    the live program, and the compiler's element placement."""

    def __init__(self, devices, links, program, placement):
        self.devices = {name: object() for name in devices}
        both_ways = {}
        for (a, b), latency in links.items():
            both_ways[(a, b)] = _Link(latency)
            both_ways[(b, a)] = _Link(latency)
        self.network = _StubNetwork(both_ways)
        self.program = program
        self.plan = _StubCompilePlan(placement)


class TestVetConstraints:
    def test_cross_flow_program_fuses_stateful_devices(self):
        # The bundled firewall program has cross-flow state (fw_conns);
        # put its two stateful elements on different devices and the
        # planner must refuse to split them.
        program = dict(bundled_programs())["firewall"]
        controller = _StubController(
            devices=["a", "b", "c", "d"],
            links={("a", "b"): 1e-3, ("b", "c"): 1e-3, ("c", "d"): 1e-3},
            program=program,
            placement={"count_flow": "a", "fw_track": "c"},
        )
        plan = plan_shards(controller, 4, seed=11, colocate_below_s=0.0)
        assert plan.shard_of("a") == plan.shard_of("c")
        assert any("cross-flow" in constraint for constraint in plan.constraints)

    def test_per_flow_program_admits_splitting(self):
        # ratelimit has only per-flow state: the same two-device
        # placement must NOT be fused (this is the vet admission gate
        # actually deciding something).
        program = dict(bundled_programs())["ratelimit"]
        controller = _StubController(
            devices=["a", "b", "c", "d"],
            links={("a", "b"): 1e-3, ("b", "c"): 1e-3, ("c", "d"): 1e-3},
            program=program,
            placement={"count_flow": "a"},
        )
        plan = plan_shards(controller, 4, seed=11, colocate_below_s=0.0)
        assert len(plan.populated_shards) == 4

    def test_no_program_means_no_constraints(self):
        net = pod_fabric(2)  # no install
        plan = plan_shards(net.controller, 2, seed=11)
        assert plan.constraints == ()
        assert plan.flow_key == ()


class _NoProgramController:
    """Raises like a real controller with nothing installed."""

    def __init__(self, exc_type):
        self.devices = {"a": object(), "b": object()}
        link = _Link(1e-3)
        self.network = _StubNetwork({("a", "b"): link, ("b", "a"): link})
        self._exc_type = exc_type

    @property
    def program(self):
        raise self._exc_type("no program installed yet")

    @property
    def plan(self):
        raise self._exc_type("no plan compiled yet")


class TestErrorPropagation:
    def test_control_plane_error_means_unconstrained_plan(self):
        from repro.errors import ControlPlaneError

        controller = _NoProgramController(ControlPlaneError)
        plan = plan_shards(controller, 2, seed=11, colocate_below_s=0.0)
        assert plan.constraints == ()
        assert plan.flow_key == ()

    def test_unexpected_errors_propagate(self):
        # The planner's except clauses are deliberately narrow: only the
        # "no program installed" signal is swallowed; a broken controller
        # must fail loudly, not silently plan without constraints.
        controller = _NoProgramController(RuntimeError)
        with pytest.raises(RuntimeError):
            plan_shards(controller, 2, seed=11, colocate_below_s=0.0)
