"""Error hierarchy and shared-utility tests."""

import pytest

from repro import errors
from repro.util import stable_digest, stable_hash


class TestErrorHierarchy:
    def test_all_errors_derive_from_flexnet_error(self):
        error_types = [
            value
            for value in vars(errors).values()
            if isinstance(value, type) and issubclass(value, Exception)
        ]
        for error_type in error_types:
            assert issubclass(error_type, errors.FlexNetError)

    def test_placement_is_compilation_error(self):
        assert issubclass(errors.PlacementError, errors.CompilationError)

    def test_access_control_is_isolation_error(self):
        assert issubclass(errors.AccessControlError, errors.IsolationError)

    def test_parse_error_location_formatting(self):
        error = errors.ParseError("bad token", line=3, column=7)
        assert "line 3" in str(error) and "col 7" in str(error)
        assert error.line == 3 and error.column == 7

    def test_parse_error_without_location(self):
        error = errors.ParseError("bad token")
        assert str(error) == "bad token"

    def test_catching_base_class_at_boundaries(self):
        with pytest.raises(errors.FlexNetError):
            raise errors.ReconfigError("x")


class TestStableHash:
    def test_64_bit_range(self):
        for key in [(0,), (1, 2, 3), (2**64 - 1,), (2**127,)]:
            value = stable_hash(key)
            assert 0 <= value < 2**64

    def test_empty_tuple(self):
        assert stable_hash(()) == stable_hash(())

    def test_distinct_inputs_distinct_outputs(self):
        values = {stable_hash((i,)) for i in range(1000)}
        assert len(values) == 1000  # no collisions at this scale

    def test_arity_sensitivity(self):
        assert stable_hash((1,)) != stable_hash((1, 0))

    def test_pinned_values_unchanged_by_refactor(self):
        """stable_hash seeded PR 5's consensus constants; the shared
        FNV/avalanche refactor must keep it byte-identical forever."""
        assert stable_hash(()) == 17280346270528514342
        assert stable_hash((1, 2, 3)) == 6591469933116945010


class TestStableDigest:
    def test_pinned_values(self):
        assert stable_digest(1) == 15695820435484873492
        assert stable_digest("flexnet") == 14486085476925158928
        assert stable_digest(("a", 1, 2.5, None, True)) == 10179520702734513025

    def test_type_tags_prevent_cross_type_collisions(self):
        assert stable_digest(1) != stable_digest(1.0)
        assert stable_digest(1) != stable_digest(True)
        assert stable_digest("1") != stable_digest(1)
        assert stable_digest(b"x") != stable_digest("x")
        assert stable_digest(None) != stable_digest(0)

    def test_length_prefix_prevents_concatenation_collisions(self):
        assert stable_digest(("ab", "c")) != stable_digest(("a", "bc"))
        assert stable_digest((1,), (2,)) != stable_digest((1, 2))

    def test_nested_structures_and_negatives(self):
        assert stable_digest([1, [2, 3]]) == stable_digest((1, (2, 3)))
        assert stable_digest(-1) != stable_digest(1)
        assert 0 <= stable_digest(-(2**70)) < 2**64

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="cannot encode"):
            stable_digest(object())
