"""State migration tests: the control-plane vs data-plane contrast (§3.4)."""

import pytest

from repro.errors import MigrationError
from repro.lang import builder as b
from repro.lang.ir import MapDef
from repro.lang.maps import MapState
from repro.lang.types import BitsType
from repro.runtime.migration import (
    control_plane_migration,
    data_plane_migration,
    minimum_copy_rate_for_convergence,
    rounds_to_converge,
)
from repro.targets.base import StateEncoding


def make_state(entries=100, capacity=100_000):
    state = MapState(
        MapDef(
            name="sketch",
            key_fields=(b.field("ipv4.src"),),
            value_type=BitsType(64),
            max_entries=capacity,
        )
    )
    for i in range(entries):
        state.put((i,), i)
    return state


class TestControlPlane:
    def test_converges_at_low_update_rate(self):
        report = control_plane_migration(
            make_state(1000), make_state(0), update_rate_per_s=100.0,
            copy_rate_entries_per_s=10_000.0,
        )
        assert report.converged
        assert report.updates_lost == 0
        assert report.rounds >= 1

    def test_fails_at_high_update_rate(self):
        """Per-packet mutation outpaces the copy loop — the paper's
        'copying state via control plane software is impossible'."""
        report = control_plane_migration(
            make_state(1000), make_state(0), update_rate_per_s=1_000_000.0,
            copy_rate_entries_per_s=10_000.0,
        )
        assert not report.converged
        assert report.updates_lost > 0
        assert report.rounds == 12  # gave up at max_rounds

    def test_duration_grows_with_update_rate(self):
        slow = control_plane_migration(
            make_state(1000), make_state(0), update_rate_per_s=10.0
        )
        fast = control_plane_migration(
            make_state(1000), make_state(0), update_rate_per_s=7_000.0
        )
        assert fast.duration_s > slow.duration_s

    def test_entries_copied(self):
        destination = make_state(0)
        control_plane_migration(make_state(50), destination, update_rate_per_s=1.0)
        assert len(destination) == 50


class TestDataPlane:
    def test_always_converges_in_one_round(self):
        report = data_plane_migration(make_state(10_000), make_state(0))
        assert report.converged
        assert report.rounds == 1
        assert report.updates_lost == 0

    def test_duration_is_line_rate(self):
        report = data_plane_migration(
            make_state(5000), make_state(0), line_rate_entries_per_s=1_000_000.0
        )
        assert report.duration_s == pytest.approx(0.005)

    def test_entries_arrive(self):
        destination = make_state(0)
        data_plane_migration(make_state(64), destination)
        assert len(destination) == 64
        assert destination.get((63,)) == 63

    def test_cross_encoding_conversion_counted(self):
        report = data_plane_migration(
            make_state(3000),
            make_state(0),
            source_encoding=StateEncoding.STATEFUL_TABLE,
            destination_encoding=StateEncoding.REGISTER,
            register_slots=4096,
        )
        assert report.conversion_loss > 0  # hash collisions into 4096 slots

    def test_cross_encoding_overflow_rejected(self):
        with pytest.raises(MigrationError):
            data_plane_migration(
                make_state(5000),
                make_state(0),
                source_encoding=StateEncoding.STATEFUL_TABLE,
                destination_encoding=StateEncoding.REGISTER,
                register_slots=4096,
            )

    def test_invalid_line_rate_rejected(self):
        with pytest.raises(MigrationError):
            data_plane_migration(make_state(1), make_state(0), line_rate_entries_per_s=0)

    def test_beats_control_plane_under_per_packet_updates(self):
        """The headline E9 shape in miniature."""
        update_rate = 500_000.0
        control = control_plane_migration(
            make_state(10_000), make_state(0), update_rate_per_s=update_rate,
            copy_rate_entries_per_s=10_000.0,
        )
        data = data_plane_migration(make_state(10_000), make_state(0))
        assert not control.converged
        assert data.converged
        assert data.duration_s < control.duration_s


class TestClosedForms:
    def test_minimum_copy_rate(self):
        assert minimum_copy_rate_for_convergence(1000.0) == pytest.approx(1250.0)

    def test_rounds_none_when_divergent(self):
        assert rounds_to_converge(1000, 20_000.0, 10_000.0) is None

    def test_rounds_positive_when_convergent(self):
        rounds = rounds_to_converge(100_000, 1_000.0, 50_000.0)
        assert rounds is not None and rounds >= 1

    def test_rounds_match_simulation_roughly(self):
        estimate = rounds_to_converge(1000, 100.0, 10_000.0)
        report = control_plane_migration(
            make_state(1000), make_state(0), update_rate_per_s=100.0,
            copy_rate_entries_per_s=10_000.0,
        )
        assert abs(report.rounds - estimate) <= 2
