"""Consistency checker tests."""

from repro.runtime.consistency import (
    ConsistencyChecker,
    ConsistencyLevel,
    version_split,
)
from repro.simulator.packet import make_packet


def packet_with_versions(versions, src=1, dst=2, sport=100):
    packet = make_packet(src, dst, src_port=sport)
    packet.versions_seen = dict(versions)
    return packet


class TestPerPacketPath:
    def test_uniform_versions_pass(self):
        checker = ConsistencyChecker(ConsistencyLevel.PER_PACKET_PATH)
        checker.observe(packet_with_versions({"a": 1, "b": 1}))
        checker.observe(packet_with_versions({"a": 2, "b": 2}))
        report = checker.report()
        assert report.holds
        assert report.packets_checked == 2

    def test_mixed_versions_flagged(self):
        checker = ConsistencyChecker(ConsistencyLevel.PER_PACKET_PATH)
        checker.observe(packet_with_versions({"a": 1, "b": 2}))
        report = checker.report()
        assert not report.holds
        assert report.violations == 1
        assert report.examples

    def test_scope_restriction(self):
        checker = ConsistencyChecker(
            ConsistencyLevel.PER_PACKET_PATH, devices_in_update={"a"}
        )
        # b disagrees but b is out of scope (not being updated)
        checker.observe(packet_with_versions({"a": 1, "b": 99}))
        assert checker.report().holds

    def test_empty_versions_ignored(self):
        checker = ConsistencyChecker(ConsistencyLevel.PER_PACKET_PATH)
        checker.observe(packet_with_versions({}))
        assert checker.report().holds


class TestPerFlow:
    def test_flapping_flow_flagged(self):
        """old -> new -> old within one flow is an inconsistent cut-over."""
        checker = ConsistencyChecker(ConsistencyLevel.PER_FLOW)
        checker.observe(packet_with_versions({"a": 1}, sport=5))
        checker.observe(packet_with_versions({"a": 2}, sport=5))
        checker.observe(packet_with_versions({"a": 1}, sport=5))  # flap back
        report = checker.report()
        assert report.violations == 1

    def test_monotone_cutover_allowed(self):
        """A flow may cross the update once: old* then new*."""
        checker = ConsistencyChecker(ConsistencyLevel.PER_FLOW)
        checker.observe(packet_with_versions({"a": 1}, sport=5))
        checker.observe(packet_with_versions({"a": 2}, sport=5))
        checker.observe(packet_with_versions({"a": 2}, sport=5))
        assert checker.report().holds

    def test_mixed_versions_in_one_packet_flagged(self):
        checker = ConsistencyChecker(ConsistencyLevel.PER_FLOW)
        checker.observe(packet_with_versions({"a": 1, "b": 2}, sport=5))
        assert not checker.report().holds

    def test_different_flows_may_differ(self):
        checker = ConsistencyChecker(ConsistencyLevel.PER_FLOW)
        checker.observe(packet_with_versions({"a": 1}, sport=5))
        checker.observe(packet_with_versions({"a": 2}, sport=6))
        assert checker.report().holds


class TestPerDevice:
    def test_always_holds_structurally(self):
        checker = ConsistencyChecker(ConsistencyLevel.PER_PACKET_PER_DEVICE)
        checker.observe(packet_with_versions({"a": 1, "b": 2}))
        assert checker.report().holds


class TestVersionSplit:
    def test_split_counts(self):
        packets = [
            packet_with_versions({"sw": 1}),
            packet_with_versions({"sw": 1}),
            packet_with_versions({"sw": 2}),
            packet_with_versions({"other": 9}),
        ]
        assert version_split(packets, "sw") == {1: 2, 2: 1}
