"""Orchestrated transitions over non-hitless (compile-time-only) devices
in mixed deployments (§3.4: 'mixed deployments of runtime programmable,
compile-time programmable, and non-programmable devices')."""


from repro.apps.base import base_infrastructure
from repro.apps.firewall import firewall_delta
from repro.core.flexnet import FlexNet


def mixed_net() -> FlexNet:
    """The program's switch is a *stock* RMT device: the orchestrator
    must fall back to drain+reflash for it."""
    net = FlexNet()
    net.add_host("h1")
    net.add_smartnic("nic1")
    net.add_switch("sw1", arch="rmt_static")
    net.add_smartnic("nic2")
    net.add_host("h2")
    for a, b in [("h1", "nic1"), ("nic1", "sw1"), ("sw1", "nic2"), ("nic2", "h2")]:
        net.connect(a, b, 2e-6)
    net.build_datapath("h1", "h2")
    net.install(base_infrastructure())
    return net


class TestMixedDeployment:
    def test_reflash_path_taken(self):
        net = mixed_net()
        outcome = net.update(firewall_delta())
        assert "sw1" in outcome.report.reflashed_devices
        # the window reflects the full drain+reflash+redeploy cycle
        start, end = outcome.report.device_windows["sw1"]
        assert end - start > 30.0

    def test_traffic_lost_during_reflash_window(self):
        net = mixed_net()
        net.schedule(5.0, lambda: net.update(firewall_delta()))
        report = net.run_traffic(rate_pps=100, duration_s=60.0, extra_time_s=10.0)
        # the drain window loses packets — the orchestrator does not hide
        # a non-hitless device's nature
        assert report.metrics.lost_by_infrastructure > 1000

    def test_new_program_active_after_reflash(self):
        net = mixed_net()
        outcome = net.update(firewall_delta())
        net.loop.run_until(outcome.report.finished_at + 1.0)
        device = net.device("sw1")
        assert device.available(net.loop.now)
        assert device.active_program.has_table("fw_block")

    def test_state_cold_after_reflash(self):
        from repro.simulator.packet import make_packet

        net = mixed_net()
        device = net.device("sw1")
        device.process(make_packet(7, 8), net.loop.now)
        assert device.active_instance.maps.state("flow_counts").get((7, 8)) == 1
        outcome = net.update(firewall_delta())
        net.loop.run_until(outcome.report.finished_at + 1.0)
        assert device.active_instance.maps.state("flow_counts").get((7, 8)) == 0
