"""Device ingress-queue model tests: depth, delay, overflow, ECN feed."""

import pytest

from repro.apps.cc import dctcp_delta
from repro.lang.delta import apply_delta
from repro.runtime.device import DeviceRuntime
from repro.simulator.packet import Verdict, make_packet
from repro.targets import drmt_switch
from repro.targets.base import PerformanceModel, Target


def slow_target(pps: float = 1000.0) -> Target:
    """A deliberately slow device so queues build at test rates."""
    fast = drmt_switch("slow")
    return Target(
        name="slow",
        arch=fast.arch,
        capacity=fast.capacity,
        fungibility=fast.fungibility,
        performance=PerformanceModel(
            base_latency_ns=400.0,
            per_op_ns=1.0,
            per_op_nj=0.5,
            idle_power_w=100.0,
            throughput_mpps=pps / 1e6,
        ),
        reconfig=fast.reconfig,
        encodings=fast.encodings,
        tier="switch",
        max_function_ops=fast.max_function_ops,
    )


class TestQueueModel:
    def test_no_queue_at_low_rate(self, base_program):
        device = DeviceRuntime("d", drmt_switch("d"))
        device.install(base_program)
        for index in range(100):
            packet = make_packet(1, 2)
            device.process(packet, index * 0.001)
            assert packet.meta["queue_depth"] == 0
        assert device.stats.queue_drops == 0

    def test_queue_builds_under_overload(self, base_program):
        device = DeviceRuntime("d", slow_target(pps=1000.0))
        device.install(base_program)
        # burst of 50 packets at the same instant: service 1ms each
        depths = []
        for _ in range(50):
            packet = make_packet(1, 2)
            device.process(packet, 0.0)
            depths.append(packet.meta["queue_depth"])
        assert depths[0] == 0
        assert depths[-1] == 49
        assert device.stats.max_queue_depth == 49

    def test_queueing_delay_in_latency(self, base_program):
        device = DeviceRuntime("d", slow_target(pps=1000.0))
        device.install(base_program)
        first = device.process(make_packet(1, 2), 0.0)
        second = device.process(make_packet(1, 2), 0.0)
        assert second > first  # second waits for the first's service slot
        assert second - first == pytest.approx(0.001, rel=0.01)

    def test_overflow_tail_drops(self, base_program):
        device = DeviceRuntime("d", slow_target(pps=1000.0), queue_capacity_packets=10)
        device.install(base_program)
        verdicts = []
        for _ in range(20):
            packet = make_packet(1, 2)
            device.process(packet, 0.0)
            verdicts.append(packet.verdict)
        assert verdicts[:10].count(Verdict.LOST) == 0
        assert verdicts[10:].count(Verdict.LOST) == 10
        assert device.stats.queue_drops == 10

    def test_queue_drains_over_time(self, base_program):
        device = DeviceRuntime("d", slow_target(pps=1000.0))
        device.install(base_program)
        for _ in range(10):
            device.process(make_packet(1, 2), 0.0)
        late = make_packet(1, 2)
        device.process(late, 1.0)  # queue (10 ms worth) long drained
        assert late.meta["queue_depth"] == 0


class TestEcnIntegration:
    def test_congestion_triggers_ecn_marks(self, base_program):
        """The DCTCP app's queue_depth input is now fed by the real
        queue model: a burst past the threshold gets marked."""
        program, _ = apply_delta(base_program, dctcp_delta(ecn_threshold=20))
        device = DeviceRuntime("d", slow_target(pps=1000.0))
        device.install(program)
        marked = 0
        for _ in range(60):
            packet = make_packet(1, 2)
            device.process(packet, 0.0)
            marked += packet.meta.get("ecn", 0) and 1
        assert marked > 0  # deep-queue packets were marked
        # early packets (shallow queue) were not
        first = make_packet(1, 2)
        device.process(first, 10.0)
        assert first.meta.get("ecn", 0) == 0

    def test_network_counts_queue_drops_as_loss(self, base_program):
        from repro.simulator.engine import EventLoop
        from repro.simulator.metrics import RunMetrics
        from repro.simulator.network import Network

        loop = EventLoop()
        network = Network(loop)
        device = DeviceRuntime("d", slow_target(pps=100.0), queue_capacity_packets=5)
        device.install(base_program)
        network.add_node(device)
        metrics = RunMetrics()
        for _ in range(20):
            network.inject(make_packet(1, 2), ["d"], 0.0, metrics)
        loop.run()
        assert metrics.lost_by_infrastructure == 15
        assert metrics.delivered == 5
