"""Reconfiguration orchestrator tests."""

import pytest

from repro.compiler.incremental import IncrementalCompiler
from repro.compiler.placement import PlacementEngine
from repro.lang.delta import apply_delta, parse_delta
from repro.runtime.device import DeviceRuntime
from repro.runtime.reconfig import ReconfigOrchestrator
from repro.simulator.engine import EventLoop
from repro.simulator.packet import make_packet

from tests.conftest import make_standard_slice

ADD_GUARD = """
delta add_guard {
  add action g_drop() { mark_drop(); }
  add table guard { key: ipv4.src; actions: g_drop; size: 16; default: g_drop; }
  insert guard before acl;
}
"""

MOVE_NOTHING = "delta rm { resize table acl 2048; }"


@pytest.fixture
def deployment(base_program, base_certificate):
    slice_ = make_standard_slice()
    engine = PlacementEngine()
    plan = engine.compile(base_program, base_certificate, slice_)
    loop = EventLoop()
    devices = {spec.name: DeviceRuntime(spec.name, spec.target) for spec in slice_.devices}
    orchestrator = ReconfigOrchestrator(loop, devices)
    orchestrator.install_plan(plan)
    return engine, plan, slice_, loop, devices, orchestrator


class TestApply:
    def test_transition_report_windows(self, base_program, deployment):
        engine, plan, slice_, loop, devices, orchestrator = deployment
        new_program, changes = apply_delta(base_program, parse_delta(ADD_GUARD))
        result = IncrementalCompiler(engine).recompile(plan, new_program, slice_, changes)
        report = orchestrator.apply(result.reconfig, result.new_plan, old_plan=plan)
        assert report.steps_applied == len(result.reconfig.steps)
        assert report.finished_at > report.started_at
        assert "sw1" in report.device_windows

    def test_device_actually_transitions(self, base_program, deployment):
        engine, plan, slice_, loop, devices, orchestrator = deployment
        new_program, changes = apply_delta(base_program, parse_delta(ADD_GUARD))
        result = IncrementalCompiler(engine).recompile(plan, new_program, slice_, changes)
        report = orchestrator.apply(result.reconfig, result.new_plan, old_plan=plan)
        loop.run_until(report.finished_at + 0.1)
        packet = make_packet(1, 2)
        devices["sw1"].process(packet, loop.now)
        assert packet.versions_seen["sw1"] == new_program.version

    def test_sequential_updates_serialized(self, base_program, deployment):
        engine, plan, slice_, loop, devices, orchestrator = deployment
        v2, changes = apply_delta(base_program, parse_delta(ADD_GUARD))
        r1 = IncrementalCompiler(engine).recompile(plan, v2, slice_, changes)
        rep1 = orchestrator.apply(r1.reconfig, r1.new_plan, old_plan=plan)
        v3, changes3 = apply_delta(v2, parse_delta(MOVE_NOTHING))
        r2 = IncrementalCompiler(engine).recompile(r1.new_plan, v3, slice_, changes3)
        rep2 = orchestrator.apply(r2.reconfig, r2.new_plan, old_plan=r1.new_plan)
        w1 = rep1.device_windows["sw1"]
        w2 = rep2.device_windows["sw1"]
        assert w2[0] >= w1[1]  # second window starts after first ends
        loop.run()  # no ReconfigError raised

    def test_stagger_respected(self, base_program, deployment):
        engine, plan, slice_, loop, devices, orchestrator = deployment
        new_program, changes = apply_delta(base_program, parse_delta(ADD_GUARD))
        result = IncrementalCompiler(engine).recompile(plan, new_program, slice_, changes)
        report = orchestrator.apply(
            result.reconfig, result.new_plan, old_plan=plan, stagger={"sw1": 2.0}
        )
        assert report.device_windows["sw1"][0] == pytest.approx(2.0)

    def test_window_override_extends(self, base_program, deployment):
        engine, plan, slice_, loop, devices, orchestrator = deployment
        new_program, changes = apply_delta(base_program, parse_delta(ADD_GUARD))
        result = IncrementalCompiler(engine).recompile(plan, new_program, slice_, changes)
        report = orchestrator.apply(
            result.reconfig,
            result.new_plan,
            old_plan=plan,
            window_override={"sw1": 5.0},
        )
        start, end = report.device_windows["sw1"]
        assert end - start == pytest.approx(5.0)

    def test_unknown_device_rejected(self, deployment):
        *_, orchestrator = deployment
        with pytest.raises(Exception):
            orchestrator.device("ghost")


class TestStateCarryingMoves:
    def test_move_triggers_migration(self, base_program, base_certificate):
        """Force count_flow+flow_counts to move and verify migration."""
        slice_ = make_standard_slice()
        engine = PlacementEngine()
        plan = engine.compile(base_program, base_certificate, slice_)
        loop = EventLoop()
        devices = {s.name: DeviceRuntime(s.name, s.target) for s in slice_.devices}
        orchestrator = ReconfigOrchestrator(loop, devices)
        orchestrator.install_plan(plan)

        # Warm the state on sw1.
        devices["sw1"].process(make_packet(42, 43), 0.0)

        # Compile a new placement that pins the stateful cluster elsewhere.
        pins = dict(plan.placement)
        pins["count_flow"] = "nic2"
        pins["flow_counts"] = "nic2"
        new_program = base_program.bump_version()
        from repro.lang.analyzer import certify

        new_plan = engine.compile(new_program, certify(new_program), slice_, pinned=pins)
        assert new_plan.placement["count_flow"] == "nic2"
        reconfig = IncrementalCompiler(engine).transition(plan, new_plan, slice_)
        moves = [s for s in reconfig.steps if s.kind.value == "move"]
        assert any(s.carries_state for s in moves)

        report = orchestrator.apply(reconfig, new_plan, old_plan=plan)
        loop.run_until(report.finished_at + 0.1)
        assert report.migrations
        nic2 = devices["nic2"].active_instance
        assert nic2.maps.state("flow_counts").get((42, 43)) == 1
