"""dRPC fabric and registry tests."""

import pytest

from repro.errors import RpcError
from repro.lang import builder as b
from repro.lang.ir import MapDef
from repro.lang.maps import MapState
from repro.lang.types import BitsType
from repro.runtime.drpc import (
    CONTROL_RTT_S,
    DrpcFabric,
    RpcRegistry,
    ServiceSpec,
    make_migrate_service,
    make_state_read_service,
    make_state_write_service,
)


def make_state(entries=8):
    state = MapState(
        MapDef(
            name="m",
            key_fields=(b.field("ipv4.src"),),
            value_type=BitsType(64),
            max_entries=64,
        )
    )
    for i in range(entries):
        state.put((i,), i * 10)
    return state


@pytest.fixture
def fabric():
    registry = RpcRegistry(advertisement_interval_s=0.05)
    fabric = DrpcFabric(registry, link_latency_s=1e-6)
    fabric.set_device_speed("sw1", 1.2)
    return registry, fabric


class TestRegistry:
    def test_register_lookup(self, fabric):
        registry, _ = fabric
        registry.register(ServiceSpec("svc", "sw1", 8, lambda a: a), now=0.0)
        assert registry.lookup("svc", now=1.0).device == "sw1"

    def test_duplicate_registration_rejected(self, fabric):
        registry, _ = fabric
        registry.register(ServiceSpec("svc", "sw1", 8, lambda a: a))
        with pytest.raises(RpcError, match="already registered"):
            registry.register(ServiceSpec("svc", "sw2", 8, lambda a: a))

    def test_unknown_service(self, fabric):
        registry, _ = fabric
        with pytest.raises(RpcError, match="no such"):
            registry.lookup("ghost")

    def test_gossip_propagation_delay(self, fabric):
        registry, _ = fabric
        registry.register(ServiceSpec("svc", "sw1", 8, lambda a: a), now=1.0)
        # 3 hops away: visible at 1.0 + 3 * 0.05
        with pytest.raises(RpcError, match="not yet discovered"):
            registry.lookup("svc", now=1.1, hops_from_provider=3)
        assert registry.lookup("svc", now=1.2, hops_from_provider=3)

    def test_unregister(self, fabric):
        registry, _ = fabric
        registry.register(ServiceSpec("svc", "sw1", 8, lambda a: a))
        registry.unregister("svc")
        with pytest.raises(RpcError):
            registry.lookup("svc")


class TestFabric:
    def test_call_returns_result_and_latency(self, fabric):
        registry, drpc = fabric
        registry.register(ServiceSpec("double", "sw1", 8, lambda a: (a[0] * 2,)))
        result, latency = drpc.call("double", (21,), caller_device="nic1", now=1.0)
        assert result == (42,)
        assert latency > 0

    def test_drpc_far_faster_than_controller_path(self, fabric):
        """E10's headline: in-band utility invocation vs software."""
        registry, drpc = fabric
        registry.register(ServiceSpec("svc", "sw1", 8, lambda a: a))
        _, in_band = drpc.call("svc", (1,), caller_device="nic1", now=1.0)
        _, software = drpc.call_via_controller("svc", (1,), now=1.0)
        assert software > in_band * 100
        assert software >= 2 * CONTROL_RTT_S

    def test_handler_failure_wrapped(self, fabric):
        registry, drpc = fabric

        def boom(args):
            raise ValueError("nope")

        registry.register(ServiceSpec("svc", "sw1", 8, boom))
        with pytest.raises(RpcError, match="handler failed"):
            drpc.call("svc", (), caller_device="nic1", now=1.0)
        assert drpc.stats["svc"].failures == 1

    def test_stats_accumulate(self, fabric):
        registry, drpc = fabric
        registry.register(ServiceSpec("svc", "sw1", 8, lambda a: a))
        for _ in range(3):
            drpc.call("svc", (), caller_device="nic1", now=1.0)
        assert drpc.stats["svc"].calls == 3
        assert drpc.stats["svc"].mean_latency_s > 0


class TestFailurePaths:
    def test_missing_service_counts_failure(self, fabric):
        _, drpc = fabric
        with pytest.raises(RpcError, match="no such"):
            drpc.call("ghost", (), caller_device="h1", now=1.0)
        assert drpc.stats["ghost"].failures == 1
        assert drpc.stats["ghost"].calls == 0

    def test_undiscovered_service_counts_failure(self, fabric):
        registry, drpc = fabric
        registry.register(ServiceSpec("svc", "sw1", 8, lambda a: a), now=1.0)
        with pytest.raises(RpcError, match="not yet discovered"):
            drpc.call("svc", (), caller_device="h1", now=1.01, hops=3)
        assert drpc.stats["svc"].failures == 1

    def test_failures_do_not_pollute_latency_stats(self, fabric):
        registry, drpc = fabric

        def boom(args):
            raise ValueError("nope")

        registry.register(ServiceSpec("svc", "sw1", 8, boom))
        for _ in range(2):
            with pytest.raises(RpcError):
                drpc.call("svc", (), caller_device="h1", now=1.0)
        assert drpc.stats["svc"].failures == 2
        assert drpc.stats["svc"].calls == 0
        assert drpc.stats["svc"].mean_latency_s == 0.0

    def test_injected_fault_raises_and_counts(self, fabric):
        from repro.faults import DrpcFault, FaultInjector, FaultPlan

        registry, drpc = fabric
        registry.register(ServiceSpec("svc", "sw1", 8, lambda a: a))
        drpc.injector = FaultInjector(
            FaultPlan(seed=1, drpc=(DrpcFault(service_pattern="svc", fail_probability=1.0),))
        )
        with pytest.raises(RpcError, match="injected fault"):
            drpc.call("svc", (), caller_device="h1", now=1.0)
        assert drpc.stats["svc"].failures == 1
        assert drpc.injector.stats.drpc_failures == 1

    def test_injected_fault_pattern_scoped(self, fabric):
        from repro.faults import DrpcFault, FaultInjector, FaultPlan

        registry, drpc = fabric
        registry.register(ServiceSpec("svc", "sw1", 8, lambda a: a))
        registry.register(ServiceSpec("other", "sw1", 8, lambda a: a))
        drpc.injector = FaultInjector(
            FaultPlan(seed=1, drpc=(DrpcFault(service_pattern="svc", fail_probability=1.0),))
        )
        result, _ = drpc.call("other", (7,), caller_device="h1", now=1.0)
        assert result == (7,)


class TestRetry:
    def test_retry_eventually_succeeds(self, fabric):
        from repro.faults import DrpcFault, FaultInjector, FaultPlan
        from repro.faults.recovery import RetryPolicy

        registry, drpc = fabric
        registry.register(ServiceSpec("svc", "sw1", 8, lambda a: a))
        # With p=0.5 and 5 attempts some seed always gets through; pick
        # one where the first attempt fails so the retry path is real.
        injector = FaultInjector(
            FaultPlan(seed=2, drpc=(DrpcFault(service_pattern="svc", fail_probability=0.5),))
        )
        drpc.injector = injector
        result, latency = drpc.call_with_retry(
            "svc", (3,), caller_device="h1", now=1.0, policy=RetryPolicy()
        )
        assert result == (3,)
        assert drpc.stats["svc"].retries > 0
        assert drpc.stats["svc"].backoff_s > 0
        # the waited backoff is charged to the caller's latency
        assert latency >= drpc.stats["svc"].backoff_s

    def test_retry_budget_exhausted_raises(self, fabric):
        from repro.faults import DrpcFault, FaultInjector, FaultPlan
        from repro.faults.recovery import RetryPolicy

        registry, drpc = fabric
        registry.register(ServiceSpec("svc", "sw1", 8, lambda a: a))
        drpc.injector = FaultInjector(
            FaultPlan(seed=1, drpc=(DrpcFault(service_pattern="svc", fail_probability=1.0),))
        )
        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(RpcError, match="injected fault"):
            drpc.call_with_retry("svc", (), caller_device="h1", now=1.0, policy=policy)
        assert drpc.stats["svc"].failures == 3
        assert drpc.stats["svc"].retries == 2  # final attempt is not a retry

    def test_retry_heals_gossip_visibility(self, fabric):
        """A service registered moments ago becomes visible *during* the
        backoff: the retry call advances virtual time past the gossip
        horizon, so the retried lookup succeeds."""
        from repro.faults.recovery import RetryPolicy

        registry, drpc = fabric
        registry.register(ServiceSpec("svc", "sw1", 8, lambda a: a), now=1.0)
        # 3 hops -> visible at 1.15; first attempt at 1.1 fails.
        policy = RetryPolicy(max_attempts=5, base_backoff_s=0.02)
        result, _ = drpc.call_with_retry(
            "svc", (9,), caller_device="h1", now=1.1, hops=3, policy=policy
        )
        assert result == (9,)
        assert drpc.stats["svc"].retries > 0


class TestStandardServices:
    def test_state_read(self, fabric):
        registry, drpc = fabric
        state = make_state()
        registry.register(make_state_read_service("sw1", state))
        result, _ = drpc.call("state_read", (3,), caller_device="h1", now=1.0)
        assert result == (30,)

    def test_state_write(self, fabric):
        registry, drpc = fabric
        state = make_state(0)
        registry.register(make_state_write_service("sw1", state))
        drpc.call("state_write", (5, 99), caller_device="h1", now=1.0)
        assert state.get((5,)) == 99

    def test_migrate_chunk_pagination(self, fabric):
        registry, drpc = fabric
        state = make_state(8)
        registry.register(make_migrate_service("sw1", state))
        first, _ = drpc.call("migrate_chunk", (0, 4), caller_device="h1", now=1.0)
        second, _ = drpc.call("migrate_chunk", (4, 4), caller_device="h1", now=1.0)
        assert len(first) == 8  # 4 entries x (key + value)
        assert len(second) == 8
        assert set(first) != set(second) or first != second
