"""Device runtime tests: version transitions, state sharing, reflash."""

import pytest

from repro.errors import ReconfigError
from repro.lang.delta import apply_delta, parse_delta
from repro.runtime.device import DeviceRuntime
from repro.simulator.packet import make_packet
from repro.targets import drmt_switch, rmt_switch

ADD_GUARD = """
delta add_guard {
  add action g_drop() { mark_drop(); }
  add table guard { key: ipv4.src; actions: g_drop; size: 16; default: g_drop; }
  insert guard before acl;
}
"""


def make_device(base_program, target=None):
    device = DeviceRuntime("d", target or drmt_switch("d"))
    device.install(base_program)
    return device


class TestInstallAndProcess:
    def test_process_returns_positive_latency(self, base_program):
        device = make_device(base_program)
        latency = device.process(make_packet(1, 2), 0.0)
        assert latency > 0
        assert device.stats.processed == 1

    def test_version_stamped_on_packet(self, base_program):
        device = make_device(base_program)
        packet = make_packet(1, 2)
        device.process(packet, 0.0)
        assert packet.versions_seen["d"] == base_program.version

    def test_energy_accumulates(self, base_program):
        device = make_device(base_program)
        device.process(make_packet(1, 2), 0.0)
        assert device.stats.energy_nj > 0

    def test_program_drop_counted(self, base_program):
        device = make_device(base_program)
        packet = make_packet(1, 2, ttl=0)  # ttl_guard drops
        device.process(packet, 0.0)
        assert device.stats.dropped_by_program == 1


class TestHitlessUpdate:
    def new_version(self, base_program):
        new_program, _ = apply_delta(base_program, parse_delta(ADD_GUARD))
        return new_program

    def test_requires_hitless_target(self, base_program):
        device = DeviceRuntime("d", rmt_switch("d", runtime_capable=False))
        device.install(base_program)
        with pytest.raises(ReconfigError, match="not hitlessly"):
            device.begin_hitless_update(self.new_version(base_program), 0.0, 0.3)

    def test_requires_active_program(self, base_program):
        device = DeviceRuntime("d", drmt_switch("d"))
        with pytest.raises(ReconfigError, match="no active program"):
            device.begin_hitless_update(base_program, 0.0, 0.3)

    def test_no_overlapping_transitions(self, base_program):
        device = make_device(base_program)
        device.begin_hitless_update(self.new_version(base_program), 0.0, 0.3)
        with pytest.raises(ReconfigError, match="in flight"):
            device.begin_hitless_update(self.new_version(base_program), 0.1, 0.3)

    def test_sequential_transitions_allowed(self, base_program):
        device = make_device(base_program)
        v2 = self.new_version(base_program)
        device.begin_hitless_update(v2, 0.0, 0.3)
        v3 = v2.bump_version()
        device.begin_hitless_update(v3, 0.5, 0.3)  # prior window elapsed
        assert device.in_transition

    def test_old_before_window_new_after(self, base_program):
        device = make_device(base_program)
        new_program = self.new_version(base_program)
        device.begin_hitless_update(new_program, 1.0, 0.4)

        before = make_packet(1, 2)
        device.process(before, 0.5)
        # before the window even started? window starts at 1.0 per args,
        # but _choose_instance only compares against end; packets in
        # [start, end) draw. Use a packet clearly after the end:
        after = make_packet(1, 2)
        device.process(after, 2.0)
        assert after.versions_seen["d"] == new_program.version

    def test_window_mixes_versions_consistently(self, base_program):
        device = make_device(base_program)
        new_program = self.new_version(base_program)
        device.begin_hitless_update(new_program, 0.0, 1.0)
        versions = set()
        for index in range(200):
            packet = make_packet(1, 2)
            device.process(packet, index / 200.0)
            versions.add(packet.versions_seen["d"])
        assert versions == {base_program.version, new_program.version}

    def test_epoch_stamp_honoured(self, base_program):
        device = make_device(base_program)
        new_program = self.new_version(base_program)
        device.begin_hitless_update(new_program, 0.0, 1.0)
        packet = make_packet(1, 2)
        packet.meta["_epoch"] = base_program.version
        device.process(packet, 0.99)  # late in window, would draw new
        assert packet.versions_seen["d"] == base_program.version

    def test_map_state_shared_across_versions(self, base_program):
        device = make_device(base_program)
        device.process(make_packet(7, 8), 0.0)
        new_program = self.new_version(base_program)
        device.begin_hitless_update(new_program, 0.5, 0.3)
        packet = make_packet(7, 8)
        device.process(packet, 1.0)  # after window: new version
        instance = device.active_instance
        assert instance.program.version == new_program.version
        assert instance.maps.state("flow_counts").get((7, 8)) == 2

    def test_table_rules_shared_across_versions(self, base_program):
        from repro.lang.ir import ActionCall
        from repro.simulator.tables import Rule, exact

        device = make_device(base_program)
        device.active_instance.rules["l2"].insert(
            Rule(matches=(exact(1),), action=ActionCall("nop"))
        )
        new_program = self.new_version(base_program)
        device.begin_hitless_update(new_program, 0.0, 0.1)
        device.process(make_packet(1, 2), 1.0)
        assert len(device.active_instance.rules["l2"]) == 1

    def test_flow_affine_draws_by_flow(self, base_program):
        device = make_device(base_program)
        new_program = self.new_version(base_program)
        device.begin_hitless_update(new_program, 0.0, 1.0, flow_affine=True)
        seen = set()
        for _ in range(50):
            packet = make_packet(3, 4, src_port=999)  # same flow
            device.process(packet, 0.5)
            seen.add(packet.versions_seen["d"])
        assert len(seen) == 1  # whole flow cuts over together


class TestReflash:
    def test_reflash_causes_downtime(self, base_program):
        device = DeviceRuntime("d", rmt_switch("d", runtime_capable=False))
        device.install(base_program)
        until = device.begin_reflash(base_program.bump_version(), 10.0)
        assert until == pytest.approx(10.0 + 5.0 + 25.0 + 4.0)
        assert not device.available(11.0)
        assert device.available(until)

    def test_reflash_loses_state(self, base_program):
        device = DeviceRuntime("d", rmt_switch("d", runtime_capable=False))
        device.install(base_program)
        device.process(make_packet(5, 6), 0.0)
        assert device.active_instance.maps.state("flow_counts").get((5, 6)) == 1
        device.begin_reflash(base_program.bump_version(), 1.0)
        assert device.active_instance.maps.state("flow_counts").get((5, 6)) == 0

    def test_busy_until(self, base_program):
        device = make_device(base_program)
        assert device.busy_until(3.0) == 3.0
        device.begin_hitless_update(base_program.bump_version(), 3.0, 0.4)
        assert device.busy_until(3.0) == pytest.approx(3.4)
