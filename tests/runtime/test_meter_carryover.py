"""Regression: runtime table artifacts survive hitless reconfiguration.

A rate limiter is pure element-level state: the policing rule, the
table meter, and the per-rule hit counters are all configured through
P4Runtime, not the program text. An *unrelated* structural delta (e.g.
injecting the firewall) must not silently disable it — the bug this
pins down was ``adopt_state``/``adopt_from`` dropping meters and
counters, so a policed customer went unpoliced after any reconfig.
"""


from repro.apps import firewall_delta
from repro.apps.ratelimit import RateLimiter, rate_limit_delta
from repro.control.p4runtime import P4RuntimeClient
from repro.lang.delta import apply_delta
from repro.lang.ir import ActionCall, MatchKind, TableDef, TableKey
from repro.lang import builder as b
from repro.runtime.device import DeviceRuntime
from repro.simulator.meters import Meter, MeterConfig
from repro.simulator.packet import Verdict, make_packet
from repro.simulator.pipeline_exec import ProgramInstance
from repro.simulator.tables import Rule, TableRules, exact
from repro.targets import drmt_switch

POLICED = 0x0A000033


def _burst(device, count: int, now: float) -> list[Verdict]:
    verdicts = []
    for _ in range(count):
        packet = make_packet(POLICED, 1)
        device.process(packet, now)
        verdicts.append(packet.verdict)
    return verdicts


class TestMeterSurvivesReconfig:
    def test_red_marking_continues_across_unrelated_delta(self, base_program):
        program, _ = apply_delta(base_program, rate_limit_delta())
        device = DeviceRuntime("sw1", drmt_switch("sw1"))
        device.install(program)
        limiter = RateLimiter(P4RuntimeClient(device))
        limiter.police(POLICED, rate_pps=10.0, burst_packets=5.0)

        before = _burst(device, 20, now=0.0)
        assert before.count(Verdict.FORWARD) == 5
        assert before.count(Verdict.DROP) == 15

        # An unrelated structural change: inject the firewall.
        patched, _ = apply_delta(program, firewall_delta())
        device.begin_hitless_update(patched, now=1.0, duration_s=0.5)
        device.settle(now=2.0)
        assert device.active_program.version == patched.version

        # The bucket refilled (10 pps since t=0, cap 5): an identical
        # burst must police identically — the meter, the classify rule,
        # and the RED-drop behaviour all survived the reconfig.
        after = _burst(device, 20, now=2.0)
        assert after.count(Verdict.FORWARD) == 5
        assert after.count(Verdict.DROP) == 15

        rules = device.active_instance.rules["rl_classify"]
        assert rules.meter is not None
        # Hit counters are cumulative across versions: 20 + 20 hits.
        assert sum(rules.hit_counts) == 40

    def test_meter_stats_readable_after_reconfig(self, base_program):
        program, _ = apply_delta(base_program, rate_limit_delta())
        device = DeviceRuntime("sw1", drmt_switch("sw1"))
        device.install(program)
        limiter = RateLimiter(P4RuntimeClient(device))
        limiter.police(POLICED, rate_pps=10.0, burst_packets=5.0)
        _burst(device, 20, now=0.0)

        patched, _ = apply_delta(program, firewall_delta())
        device.begin_hitless_update(patched, now=1.0, duration_s=0.5)
        device.settle(now=2.0)

        green, red = limiter.stats()
        assert green == 5
        assert red == 15


def _table_def(actions=("nop", "drop"), size=16) -> TableDef:
    return TableDef(
        name="t",
        keys=(TableKey(field=b.field("ipv4.src"), match_kind=MatchKind.EXACT),),
        actions=tuple(actions),
        size=size,
        default_action=ActionCall(action="nop"),
    )


class TestAdoptFrom:
    def test_counters_miss_count_and_meter_carry(self):
        old = TableRules(_table_def())
        old.insert(Rule(matches=(exact(1),), action=ActionCall("drop")))
        old.lookup((1,))
        old.lookup((1,))
        old.lookup((9,))  # miss
        old.meter = Meter(MeterConfig(rate_pps=10.0, burst_packets=5.0))

        new = TableRules(_table_def())
        new.adopt_from(old)
        assert new.rules == old.rules
        assert new.hit_counts == [2]
        assert new.miss_count == 1
        assert new.meter is old.meter

    def test_incompatible_rules_skipped_but_rest_carry(self):
        old = TableRules(_table_def(actions=("nop", "drop", "extra")))
        old.insert(Rule(matches=(exact(1),), action=ActionCall("extra")))
        old.insert(Rule(matches=(exact(2),), action=ActionCall("drop")))
        old.lookup((2,))

        new = TableRules(_table_def())  # action set shrank: no "extra"
        new.adopt_from(old)
        assert [rule.action.action for rule in new.rules] == ["drop"]
        assert new.hit_counts == [1]

    def test_key_shape_mismatch_adopts_nothing(self):
        old = TableRules(_table_def())
        old.insert(Rule(matches=(exact(1),), action=ActionCall("drop")))
        mismatched = TableDef(
            name="t",
            keys=(TableKey(field=b.field("ipv4.dst"), match_kind=MatchKind.EXACT),),
            actions=("nop", "drop"),
            size=16,
            default_action=ActionCall(action="nop"),
        )
        new = TableRules(mismatched)
        new.adopt_from(old)
        assert len(new) == 0


class TestAdoptState:
    def test_instance_adopt_carries_runtime_artifacts(self, base_program):
        program, _ = apply_delta(base_program, rate_limit_delta())
        old = ProgramInstance(program)
        old.rules["rl_classify"].insert(
            Rule(matches=(exact(POLICED),), action=ActionCall("rl_mark"))
        )
        old.rules["rl_classify"].lookup((POLICED,))
        old.rules["rl_classify"].meter = Meter(
            MeterConfig(rate_pps=10.0, burst_packets=5.0)
        )
        old.maps.state("flow_counts").put((1, 2), 7)

        new = ProgramInstance(program)
        new.adopt_state(old)
        assert new.rules["rl_classify"].hit_counts == [1]
        assert new.rules["rl_classify"].meter is old.rules["rl_classify"].meter
        assert new.maps.state("flow_counts").get((1, 2)) == 7
