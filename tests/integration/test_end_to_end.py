"""End-to-end integration: the Figure-1 pipeline in test form."""


from repro.apps.base import base_infrastructure
from repro.apps.firewall import firewall_delta
from repro.apps.sketch import count_min_delta
from repro.core.flexnet import FlexNet
from repro.runtime.consistency import ConsistencyLevel


class TestFigureOnePipeline:
    """Program + runtime extensions -> compiler splits -> controller
    pilots -> live traffic unaffected."""

    def test_full_pipeline(self):
        net = FlexNet.standard()
        plan = net.install(base_infrastructure())
        assert plan.placement

        updates_done = []

        def inject_firewall():
            outcome = net.update(firewall_delta())
            updates_done.append(outcome)

        def inject_sketch():
            outcome = net.update(count_min_delta(rows=2, width=256))
            updates_done.append(outcome)

        net.schedule(0.5, inject_firewall)
        net.schedule(1.5, inject_sketch)
        report = net.run_traffic(
            rate_pps=1000,
            duration_s=3.0,
            consistency_level=ConsistencyLevel.PER_PACKET_PATH,
            extra_time_s=3.0,
        )

        # zero infrastructure loss across two runtime reconfigurations
        assert report.metrics.lost_by_infrastructure == 0
        assert len(updates_done) == 2
        # consistency held
        assert report.consistency.report().holds
        # final program hosts all three generations of elements
        assert net.program.has_table("fw_block")
        assert net.program.has_function("cms_update")
        assert net.program.version == 3

    def test_versions_progress_across_updates(self):
        net = FlexNet.standard()
        net.install(base_infrastructure())
        net.schedule(0.5, lambda: net.update(firewall_delta()))
        report = net.run_traffic(rate_pps=2000, duration_s=2.0, extra_time_s=2.0)
        versions = report.metrics.versions_on("sw1")
        assert set(versions) == {1, 2}
        assert versions[2] > versions[1]  # most traffic on the new version

    def test_multi_switch_horizontal_distribution(self, base_program):
        net = FlexNet()
        net.add_host("h1")
        net.add_smartnic("nic1")
        net.add_switch("swA", arch="drmt", sram_mb=0.35, tcam_mb=0.2, processors=8, alus=16)
        net.add_switch("swB", arch="drmt")
        net.add_smartnic("nic2")
        net.add_host("h2")
        for a, b in [("h1", "nic1"), ("nic1", "swA"), ("swA", "swB"), ("swB", "nic2"), ("nic2", "h2")]:
            net.connect(a, b, 2e-6)
        net.build_datapath("h1", "h2")
        plan = net.install(base_infrastructure())
        used = set(plan.placement.values())
        # the small first switch cannot hold everything: placement spans
        # both switches (horizontal distribution)
        assert len(used) >= 2
        report = net.run_traffic(rate_pps=500, duration_s=1.0)
        assert report.metrics.delivered == 500
