"""Sustained runtime change (§1: the network 'shapeshifts in response to
real-time change ... if network requirements change in the next minute,
reconfigurations across devices will present the network as a new
infrastructure')."""


from repro.apps.base import base_infrastructure
from repro.core.flexnet import FlexNet
from repro.lang.delta import Delta, RemoveElements, parse_delta


def query_delta_text(index: int) -> str:
    return f"""
    delta q{index} {{
      add map storm{index} {{ key: ipv4.src; value: u32; max_entries: 512; }}
      add func storm{index}_fn() {{
        let v: u32 = map_get(storm{index}, ipv4.src);
        map_put(storm{index}, ipv4.src, v + 1);
      }}
      insert storm{index}_fn after count_flow;
    }}
    """


class TestUpdateStorm:
    def test_one_update_per_second_sustained(self):
        """12 structural changes in 12 seconds — additions and removals
        interleaved — with continuous traffic and zero loss."""
        net = FlexNet.standard()
        net.install(base_infrastructure())

        def add(index):
            return lambda: net.update(parse_delta(query_delta_text(index)))

        def remove(index):
            return lambda: net.update(
                Delta(
                    name=f"rm{index}",
                    ops=(
                        RemoveElements(pattern=f"storm{index}_fn", kind="function"),
                        RemoveElements(pattern=f"storm{index}", kind="map"),
                    ),
                )
            )

        # adds at t=1..8, removals of the early ones at t=9..12
        for index in range(8):
            net.schedule(1.0 + index, add(index))
        for index in range(4):
            net.schedule(9.0 + index, remove(index))

        report = net.run_traffic(rate_pps=800, duration_s=14.0, extra_time_s=6.0)

        assert report.metrics.lost_by_infrastructure == 0
        assert net.program.version == 1 + 12
        # early queries trimmed, late ones still deployed
        assert not net.program.has_map("storm0")
        assert net.program.has_map("storm7")
        # many distinct program versions actually served packets
        versions = report.metrics.versions_on("sw1")
        assert len(versions) >= 10

    def test_serialized_windows_never_overlap(self):
        net = FlexNet.standard()
        net.install(base_infrastructure())
        outcomes = []
        for index in range(4):
            outcomes.append(net.update(parse_delta(query_delta_text(index))))
        windows = [o.report.device_windows["sw1"] for o in outcomes]
        for (start_a, end_a), (start_b, end_b) in zip(windows, windows[1:]):
            assert start_b >= end_a - 1e-9
        net.loop.run()


class TestFpgaInSlice:
    def test_fpga_hosts_and_reconfigures(self):
        """An FPGA NIC on the path hosts the oversized function (partial
        reconfiguration keeps its updates hitless too)."""
        net = FlexNet()
        net.add_host("h1")
        # tiny switch: big things must land on the FPGA behind it
        net.add_switch("sw1", arch="drmt", sram_mb=0.4, tcam_mb=0.2,
                       processors=8, alus=16)
        net.add_fpga("fpga1")
        net.add_host("h2")
        for a, b in [("h1", "sw1"), ("sw1", "fpga1"), ("fpga1", "h2")]:
            net.connect(a, b, 2e-6)
        net.build_datapath("h1", "h2")
        net.install(base_infrastructure(flow_entries=200_000))
        # the 200k-entry flow map exceeds the small switch: FPGA hosts it
        assert net.datapath.plan.placement["flow_counts"] == "fpga1"

        net.schedule(
            0.5,
            lambda: net.update(parse_delta(query_delta_text(99))),
        )
        report = net.run_traffic(rate_pps=500, duration_s=1.5, extra_time_s=2.0)
        assert report.metrics.lost_by_infrastructure == 0
        assert net.device("fpga1").stats.processed > 0
