"""SLA re-certification (§3.3) and per-architecture end-to-end runs."""

import pytest

from repro.apps.base import base_infrastructure
from repro.apps.firewall import firewall_delta
from repro.core.flexnet import FlexNet
from repro.core.slo import Slo
from repro.errors import PlacementError
from repro.lang.delta import parse_delta


class TestSlaRecertification:
    def test_transition_recertifies_latency_sla(self):
        """§3.3: 'FlexNet needs to re-certify SLA objectives as well' —
        a runtime change whose placement would violate the negotiated
        latency ceiling is rejected before touching the network."""
        net = FlexNet.standard()
        # SLA tight enough that the base program fits but a hefty
        # host-forced function would not.
        net.build_datapath("h1", "h2", slo=Slo(max_latency_ns=33_000.0))
        net.install(base_infrastructure())
        baseline_version = net.program.version

        heavy = parse_delta(
            """
            delta heavy {
              add map big { key: ipv4.src; value: u64; max_entries: 1024; }
              add func churn() {
                let v: u64 = map_get(big, ipv4.src);
                repeat 200 { v = v + 3; }
                map_put(big, ipv4.src, v);
              }
              insert churn after count_flow;
            }
            """
        )
        with pytest.raises(PlacementError, match="SLA"):
            net.update(heavy)
        # network untouched by the rejected change
        assert net.program.version == baseline_version
        assert not net.program.has_function("churn")

    def test_sla_respecting_change_admitted(self):
        net = FlexNet.standard()
        net.build_datapath("h1", "h2", slo=Slo(max_latency_ns=33_000.0))
        net.install(base_infrastructure())
        outcome = net.update(parse_delta("delta ok { resize table acl 2048; }"))
        assert outcome.result.new_plan.estimated_latency_ns <= 33_000.0


@pytest.mark.parametrize("arch", ["drmt", "rmt", "tiles"])
class TestEveryRuntimeArchitecture:
    def test_install_update_traffic(self, arch):
        """The full hitless story holds on every runtime programmable
        switch architecture the paper surveys."""
        net = FlexNet.standard(switch_arch=arch)
        net.install(base_infrastructure())
        net.schedule(0.5, lambda: net.update(firewall_delta()))
        report = net.run_traffic(rate_pps=1000, duration_s=1.5, extra_time_s=2.0)
        assert report.metrics.lost_by_infrastructure == 0
        versions = report.metrics.versions_on("sw1")
        assert set(versions) == {1, 2}
