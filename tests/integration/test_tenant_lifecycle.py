"""Tenant churn end to end (E12 foundations)."""

import pytest

from repro.apps.base import STANDARD_HEADERS, base_infrastructure
from repro.core.flexnet import FlexNet
from repro.lang import builder as b
from repro.lang.builder import ProgramBuilder
from repro.lang.composition import Permission, TenantSpec


def tenant_extension(entries=256):
    program = ProgramBuilder("ext", owner="tenant")
    for header, fields in STANDARD_HEADERS.items():
        program.header(header, **fields)
    program.map("hits", keys=["ipv4.src"], value_type="u32", max_entries=entries)
    program.function(
        "watch",
        [
            b.let("n", "u32", b.map_get("hits", "ipv4.src")),
            b.map_put("hits", "ipv4.src", b.binop("+", "n", 1)),
        ],
    )
    program.apply("watch")
    return program.build()


def spec(name, vlan):
    return TenantSpec(name=name, vlan_id=vlan, permission=Permission())


class TestLifecycle:
    def test_arrival_processing_departure(self):
        net = FlexNet.standard()
        net.install(base_infrastructure())

        net.schedule(0.5, lambda: net.admit_tenant(spec("t1", 100), tenant_extension()))
        net.schedule(2.5, lambda: net.evict_tenant("t1"))

        report = net.run_traffic(rate_pps=1000, duration_s=4.0, extra_time_s=3.0)
        assert report.metrics.lost_by_infrastructure == 0
        assert net.controller.tenant_names == []
        assert not any(
            name.startswith("t1__") for name in net.program.element_names
        )

    def test_tenant_isolation_by_vlan(self):
        net = FlexNet.standard()
        net.install(base_infrastructure())
        net.admit_tenant(spec("t1", 100), tenant_extension())
        net.loop.run_until(net.loop.now + 2.0)

        from repro.simulator.flowgen import constant_rate, merge_streams

        start = net.loop.now
        own = constant_rate(100, 1.0, start_s=start, vlan_id=100, src_ip=0x01010101)
        foreign = constant_rate(100, 1.0, start_s=start, vlan_id=200, src_ip=0x02020202)
        net.run_traffic(packets=merge_streams(own, foreign), extra_time_s=2.0)

        hits = net.device("sw1").active_instance.maps.state("t1__hits")
        assert hits.get((0x01010101,)) == 100  # own VLAN traffic counted
        assert hits.get((0x02020202,)) == 0  # foreign VLAN invisible

    def test_departure_releases_resources(self):
        net = FlexNet.standard()
        net.install(base_infrastructure())
        before = net.controller.plan.device_demand.get("sw1")
        net.admit_tenant(spec("t1", 100), tenant_extension(entries=4096))
        net.loop.run_until(net.loop.now + 2.0)
        during = net.controller.plan.device_demand.get("sw1")
        net.evict_tenant("t1")
        net.loop.run_until(net.loop.now + 2.0)
        after = net.controller.plan.device_demand.get("sw1")
        assert during["sram_kb"] > before["sram_kb"]
        assert after["sram_kb"] == pytest.approx(before["sram_kb"])

    def test_many_tenants_sequential(self):
        net = FlexNet.standard()
        net.install(base_infrastructure())
        for index in range(4):
            net.admit_tenant(spec(f"t{index}", 100 + index), tenant_extension())
            net.loop.run_until(net.loop.now + 1.0)
        assert len(net.controller.tenant_names) == 4
        for index in range(4):
            net.evict_tenant(f"t{index}")
            net.loop.run_until(net.loop.now + 1.0)
        assert net.controller.tenant_names == []
