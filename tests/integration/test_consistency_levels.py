"""Consistency levels enforced end to end during live transitions."""

import pytest

from repro.apps.base import base_infrastructure
from repro.apps.firewall import firewall_delta
from repro.core.flexnet import FlexNet
from repro.runtime.consistency import ConsistencyChecker, ConsistencyLevel


def multi_device_net():
    """A network where the program necessarily spans >= 2 devices, so a
    path-consistency violation is actually possible."""
    net = FlexNet()
    net.add_host("h1")
    net.add_smartnic("nic1")
    net.add_switch("swA", arch="drmt", sram_mb=0.35, tcam_mb=0.2, processors=8, alus=16)
    net.add_switch("swB", arch="drmt")
    net.add_smartnic("nic2")
    net.add_host("h2")
    for a, b in [("h1", "nic1"), ("nic1", "swA"), ("swA", "swB"), ("swB", "nic2"), ("nic2", "h2")]:
        net.connect(a, b, 2e-6)
    net.build_datapath("h1", "h2")
    net.install(base_infrastructure())
    return net


@pytest.mark.parametrize(
    "level",
    [
        ConsistencyLevel.PER_PACKET_PER_DEVICE,
        ConsistencyLevel.PER_PACKET_PATH,
        ConsistencyLevel.PER_FLOW,
    ],
)
def test_zero_loss_at_every_level(level):
    net = multi_device_net()
    net.schedule(0.5, lambda: net.update(firewall_delta(), consistency=level))
    report = net.run_traffic(rate_pps=2000, duration_s=2.0, extra_time_s=3.0)
    assert report.metrics.lost_by_infrastructure == 0


def test_path_level_holds_across_devices():
    net = multi_device_net()
    net.schedule(
        0.5,
        lambda: net.update(
            firewall_delta(), consistency=ConsistencyLevel.PER_PACKET_PATH
        ),
    )
    report = net.run_traffic(
        rate_pps=3000,
        duration_s=2.0,
        consistency_level=ConsistencyLevel.PER_PACKET_PATH,
        extra_time_s=3.0,
    )
    assert report.consistency.report().holds


def test_flow_level_keeps_flows_atomic():
    net = multi_device_net()
    net.schedule(
        0.5,
        lambda: net.update(firewall_delta(), consistency=ConsistencyLevel.PER_FLOW),
    )
    checker = ConsistencyChecker(ConsistencyLevel.PER_FLOW)
    report = net.run_traffic(
        rate_pps=3000,
        duration_s=2.0,
        consistency_level=ConsistencyLevel.PER_FLOW,
        extra_time_s=3.0,
    )
    assert report.consistency.report().holds
